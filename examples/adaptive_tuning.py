"""AFF_APPLYP in action: adaptive process trees (paper Sec. V.A).

Runs Query1 with the adaptive operator, prints the add/drop timeline each
non-leaf process decided locally, and compares the result to manual trees
— no fanout vector had to be chosen.
"""

from repro import QUERY1_SQL, AdaptationParams, WSMED


def main() -> None:
    wsmed = WSMED(profile="paper")
    wsmed.import_all()

    adaptive = wsmed.sql(
        QUERY1_SQL,
        mode="adaptive",
        adaptation=AdaptationParams(p=2, threshold=0.25, drop_stage=False),
        name="Query1",
    )
    print("adaptive run:")
    print(adaptive.summary())
    print()

    print("adaptation decisions (cf. paper Figs 18-19):")
    for event in adaptive.trace:
        if event.kind in ("init_stage", "add_stage", "drop_stage", "adapt_stop"):
            details = ", ".join(
                f"{key}={value}" for key, value in sorted(event.data.items())
            )
            print(f"  t={event.time:8.2f}  {event.kind:<11} {details}")
    print()

    print("monitoring cycles of the coordinator (avg time per tuple):")
    for event in adaptive.trace.events("cycle"):
        if event.data["process"] == "q0":
            print(f"  t={event.time:8.2f}  children={event.data['children']}  "
                  f"t_i={event.data['time_per_tuple']:.3f} s/tuple")
    print()

    # How close did adaptation get to hand-tuned trees?
    print("comparison against manual FF_APPLYP trees:")
    for fanouts in ([2, 2], [5, 4], [7, 7]):
        manual = wsmed.sql(QUERY1_SQL, mode="parallel", fanouts=fanouts)
        marker = " <- paper's best" if fanouts == [5, 4] else ""
        print(f"  manual {{{fanouts[0]},{fanouts[1]}}}: {manual.elapsed:7.1f} s{marker}")
    print(f"  adaptive     : {adaptive.elapsed:7.1f} s "
          f"(avg fanouts {[round(f, 1) for f in adaptive.tree.average_fanouts()]})")


if __name__ == "__main__":
    main()
