"""Real concurrent execution under asyncio.

Every other example runs on the simulated kernel (virtual time).  Here the
same operator code executes on :class:`AsyncioKernel`: web-service latency
becomes real (scaled) sleeps and the query processes become concurrently
scheduled asyncio tasks — the faithful Python equivalent of the paper's
parallel processes, since web-service calls are I/O waits where the GIL
does not matter.
"""

import time

from repro import QUERY1_SQL, AsyncioKernel, WSMED

# One model second runs as five wall milliseconds: Query1's ~245 model-
# second central plan takes ~1.5 wall seconds; the parallel plan far less.
SCALE = 0.005


def main() -> None:
    wsmed = WSMED(profile="fast")
    wsmed.import_all()

    runs = {}
    for label, kwargs in (
        ("central", {"mode": "central"}),
        ("parallel {5,4}", {"mode": "parallel", "fanouts": [5, 4]}),
        ("adaptive", {"mode": "adaptive"}),
    ):
        started = time.monotonic()
        result = wsmed.sql(
            QUERY1_SQL, kernel=AsyncioKernel(time_scale=SCALE), name="Query1", **kwargs
        )
        wall = time.monotonic() - started
        runs[label] = (result, wall)
        print(f"{label:<16} rows={len(result):>4}  model={result.elapsed:7.2f} s  "
              f"wall={wall:6.2f} s  calls={result.total_calls}")

    central_rows = runs["central"][0].as_bag()
    assert all(result.as_bag() == central_rows for result, _ in runs.values())
    central_wall = runs["central"][1]
    parallel_wall = runs["parallel {5,4}"][1]
    print()
    print(f"wall-clock speed-up of the parallel plan: "
          f"{central_wall / parallel_wall:.1f}x — real concurrency, not simulation")


if __name__ == "__main__":
    main()
