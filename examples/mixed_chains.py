"""Mixing dependent and independent web service calls (paper Sec. VII).

The paper's future work asks to "generalize the strategy for queries
mixing both dependent and independent web service calls, as well [as]
bushy trees".  This library implements that: independent dependent-call
chains become separate branches of a bushy plan, each parallelized with
its own process tree, evaluated concurrently and combined with a hash
equi-join in the coordinator.

The query below runs two independent chains —

  chain A: GetAllStates -> GetInfoByState   (zip strings per state)
  chain B: GetAllStates -> GetPlacesWithin  (Atlanta neighbourhoods)

— and joins them on the state, so states are annotated with both facts.
"""

from repro import WSMED

MIXED_SQL = """
SELECT gs1.State, gp.ToCity, gi.GetInfoByStateResult
FROM   GetAllStates gs1, GetInfoByState gi,
       GetAllStates gs2, GetPlacesWithin gp
WHERE  gi.USState = gs1.State
  AND  gp.state = gs2.State AND gp.place = 'Atlanta'
  AND  gp.distance = 15.0 AND gp.placeTypeToFind = 'City'
  AND  gs1.State = gs2.State
"""


def main() -> None:
    wsmed = WSMED(profile="fast")
    wsmed.import_all()

    print("=== bushy plan (join of two independent chains) ===")
    explanation = wsmed.explain(MIXED_SQL, mode="adaptive", name="Mixed")
    plan_section = explanation.split("-- plan --")[1].split("-- estimate --")[0]
    print(plan_section)

    central = wsmed.sql(MIXED_SQL, mode="central", name="Mixed")
    # One fanout per parallelizable section, in plan order: chain A ships
    # GetInfoByState's plan function, chain B ships GetPlacesWithin's.
    parallel = wsmed.sql(MIXED_SQL, mode="parallel", fanouts=[3, 3], name="Mixed")
    adaptive = wsmed.sql(MIXED_SQL, mode="adaptive", name="Mixed")

    print(f"rows: {len(central)} (one per Atlanta-area city, annotated with "
          f"the state's zip string)")
    print(f"  central  : {central.elapsed:7.2f} s — but the two chains already "
          "overlap in time (the join evaluates its inputs concurrently)")
    print(f"  parallel : {parallel.elapsed:7.2f} s with process trees in every branch")
    print(f"  adaptive : {adaptive.elapsed:7.2f} s — AFF_APPLYP needs no fanout "
          "vector even for bushy plans")

    assert central.as_bag() == parallel.as_bag() == adaptive.as_bag()

    sample = central.as_dicts()[0]
    zips = sample["GetInfoByStateResult"].split(",")
    print(f"\nexample row: {sample['ToCity']} ({sample['State']}), "
          f"{len(zips)} zip codes in state")


if __name__ == "__main__":
    main()
