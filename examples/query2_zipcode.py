"""The paper's motivating Query2 (Secs. I and II.B).

Finds the zip code and state of 'USAF Academy' by composing GetAllStates,
GetInfoByState, the getzipcode helping function and GetPlacesInside.  The
naive plan makes more than 5000 dependent web-service calls sequentially
(~2400 model seconds); the parallel plan roughly halves that — the ceiling
the paper observed, caused by the USZip/Zipcodes endpoints degrading under
concurrent load.
"""

from repro import QUERY2_SQL, WSMED


def main() -> None:
    wsmed = WSMED(profile="paper")
    wsmed.import_all()

    print("query:")
    print(QUERY2_SQL)

    central = wsmed.sql(QUERY2_SQL, mode="central", name="Query2")
    print(f"answer: {central.as_dicts()}  "
          f"(the US Air Force Academy is in Colorado, zip 80840)")
    print()
    print("central execution:")
    print(central.summary())
    print()

    best = wsmed.sql(QUERY2_SQL, mode="parallel", fanouts=[4, 3], name="Query2")
    print("parallel execution with the paper's best tree {4,3}:")
    print(best.summary())
    print()
    print(f"speed-up: {central.elapsed / best.elapsed:.2f}x "
          f"(paper: 2412.95 s -> 1243.89 s, ~1.94x)")

    # Where did the time go?  Per-operation broker statistics show the
    # bottleneck: GetInfoByState's huge responses and the Zipcodes
    # endpoint's thrashing under parallel load.
    print()
    print("per-operation profile of the parallel run:")
    for operation in ("GetInfoByState", "GetPlacesInside"):
        stats = best.call_stats[operation]
        print(f"  {operation:<16} calls={stats.calls:>5}  "
              f"mean server time={stats.server_time.mean:6.2f} s  "
              f"rows={stats.rows}")

    assert central.rows == best.rows == [("CO", "80840")]


if __name__ == "__main__":
    main()
