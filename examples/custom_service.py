"""Plugging a new data-providing web service into WSMED.

WSMED is not hard-wired to the paper's four services: any provider that
publishes a WSDL can be imported, and its flattened view joins dependent
queries like any other.  This example adds a toy *ClimateService* whose
``GetClimate`` operation returns climate facts for a state, then runs a
dependent join GetAllStates -> GetClimate in parallel.
"""

from repro import WSMED, build_registry
from repro.services.latency import EndpointProfile
from repro.services.registry import ServiceCosts
from repro.util.errors import ServiceFault

CLIMATE_WSDL = """\
<definitions name="ClimateService" targetNamespace="urn:example:climate">
  <types>
    <schema>
      <element name="GetClimate">
        <complexType><sequence>
          <element name="state" type="xsd:string"/>
        </sequence></complexType>
      </element>
      <element name="GetClimateResponse">
        <complexType><sequence>
          <element name="GetClimateResult">
            <complexType><sequence>
              <element name="ClimateFacts" maxOccurs="unbounded">
                <complexType><sequence>
                  <element name="season" type="xsd:string"/>
                  <element name="meanTempC" type="xsd:double"/>
                  <element name="rainyDays" type="xsd:int"/>
                </sequence></complexType>
              </element>
            </sequence></complexType>
          </element>
        </sequence></complexType>
      </element>
    </schema>
  </types>
  <portType name="ClimateSoap">
    <operation name="GetClimate">
      <input element="GetClimate"/>
      <output element="GetClimateResponse"/>
    </operation>
  </portType>
  <service name="ClimateService">
    <port name="ClimateSoap"/>
  </service>
</definitions>
"""

SEASONS = ("winter", "spring", "summer", "autumn")


class ClimateProvider:
    """A toy provider deriving climate facts from each state's latitude."""

    uri = "http://sim.example.com/climate.wsdl"

    def __init__(self, geodata) -> None:
        self.geodata = geodata

    def wsdl_text(self) -> str:
        return CLIMATE_WSDL

    def invoke(self, operation: str, arguments: list) -> dict:
        if operation != "GetClimate":
            raise ServiceFault(f"operation {operation!r} not implemented")
        (state_name,) = arguments
        try:
            state = self.geodata.state_named(state_name)
        except KeyError:
            raise ServiceFault(f"unknown state {state_name!r}") from None
        facts = [
            {
                "season": season,
                "meanTempC": round(28.0 - abs(state.lat) * 0.45 + index * 4.0, 1),
                "rainyDays": 20 + (index * 7 + int(abs(state.lon))) % 40,
            }
            for index, season in enumerate(SEASONS)
        ]
        return {"GetClimateResult": {"ClimateFacts": facts}}


def main() -> None:
    # Register the extra provider beside the standard four, with its own
    # latency/contention profile.
    registry = build_registry(
        "paper",
        extra_providers=(ClimateProvider,),  # factory: called with geodata
        extra_costs={
            "ClimateService": ServiceCosts(
                capacity=40,
                operations={
                    "GetClimate": EndpointProfile(
                        rtt=0.3,
                        setup=0.02,
                        service_time=0.5,
                        jitter=0.05,
                        overload_penalty=0.3,
                        overload_quadratic=0.02,
                        degrade_above=1,
                    )
                },
            )
        },
    )

    wsmed = WSMED(registry)
    generated = wsmed.import_all()
    print("imported OWFs:", ", ".join(generated))
    print()
    print(wsmed.owf_source("GetClimate"))
    print()

    sql = """
        SELECT gs.Name, gc.season, gc.meanTempC
        FROM   GetAllStates gs, GetClimate gc
        WHERE  gc.state = gs.State AND gc.season = 'summer'
          AND  gc.meanTempC > 12.0
    """
    central = wsmed.sql(sql, mode="central")
    parallel = wsmed.sql(sql, mode="parallel", fanouts=[5])
    adaptive = wsmed.sql(sql, mode="adaptive")

    print(f"{len(central)} states with mean summer temperature above 12 C")
    for row in central.as_dicts()[:5]:
        print(" ", row)
    print(f"  ... central {central.elapsed:.1f} s, "
          f"parallel {{5}} {parallel.elapsed:.1f} s, "
          f"adaptive {adaptive.elapsed:.1f} s")

    assert parallel.as_bag() == central.as_bag() == adaptive.as_bag()


if __name__ == "__main__":
    main()
