"""The paper's Query1 scenario end to end (Sec. II.A).

Shows the whole compilation pipeline for the dependent-join query over
GetAllStates -> GetPlacesWithin -> GetPlaceList: the generated OWF source
(like the paper's Fig 2), the Datalog-dialect calculus, the central plan
(Fig 6) and the parallel plan with FF_APPLYP operators (Fig 9), then runs
a small fanout sweep.
"""

from repro import QUERY1_SQL, WSMED
from repro.wsmed import view_columns


def main() -> None:
    wsmed = WSMED(profile="paper")
    wsmed.import_all()

    print("=== generated OWF (cf. paper Fig 2) ===")
    print(wsmed.owf_source("GetAllStates"))
    print()

    print("=== view of GetPlacesWithin ===")
    for name, type_name, role in view_columns(
        wsmed.functions.resolve("GetPlacesWithin")
    ):
        print(f"  {name:<16} {type_name:<12} {role}")
    print()

    print("=== central compilation (cf. Figs 6/7/8) ===")
    print(wsmed.explain(QUERY1_SQL, name="Query1"))
    print()

    print("=== parallel plan (cf. Fig 9) ===")
    print(wsmed.explain(QUERY1_SQL, mode="parallel", fanouts=[5, 4], name="Query1")
          .split("-- plan --")[1].split("-- estimate --")[0])

    print("=== fanout sweep ===")
    central = wsmed.sql(QUERY1_SQL, mode="central", name="Query1")
    print(f"central: {central.elapsed:7.1f} s  ({central.total_calls} calls)")
    for fanouts in ([2, 2], [4, 3], [5, 4], [7, 7]):
        result = wsmed.sql(QUERY1_SQL, mode="parallel", fanouts=fanouts, name="Query1")
        n = fanouts[0] + fanouts[0] * fanouts[1]
        print(f"{{{fanouts[0]},{fanouts[1]}}} (N={n:>2}): {result.elapsed:7.1f} s  "
              f"speed-up {central.elapsed / result.elapsed:4.1f}x")

    print()
    sample = central.as_dicts()[:5]
    print(f"first rows of {len(central)}:", sample)


if __name__ == "__main__":
    main()
