"""Quickstart: import WSDLs, run a query, compare execution modes.

Run with::

    python examples/quickstart.py

Times are model seconds on the simulated kernel — directly comparable to
the paper's wall-clock measurements while finishing instantly.
"""

from repro import QUERY1_SQL, WSMED


def main() -> None:
    # Build the mediator against the calibrated "paper" cost profile and
    # import every published WSDL; this generates one flattened SQL view
    # per web-service operation.
    wsmed = WSMED(profile="paper")
    views = wsmed.import_all()
    print(f"imported {len(views)} operation wrapper functions: {', '.join(views)}")
    print()

    # A first query over a single view.
    result = wsmed.sql(
        "SELECT gs.Name, gs.LatDegrees FROM GetAllStates gs "
        "WHERE gs.State = 'Colorado'"
    )
    print("Colorado:", result.as_dicts()[0])
    print()

    # The paper's Query1 (Fig 1): places within 15 km of each city named
    # 'Atlanta', in three execution modes.
    central = wsmed.sql(QUERY1_SQL, mode="central", name="Query1")
    parallel = wsmed.sql(QUERY1_SQL, mode="parallel", fanouts=[5, 4], name="Query1")
    adaptive = wsmed.sql(QUERY1_SQL, mode="adaptive", name="Query1")

    print(f"Query1 returns {len(central)} rows via {central.total_calls} web service calls")
    print(f"  central plan        : {central.elapsed:8.1f} s")
    print(f"  parallel plan {{5,4}} : {parallel.elapsed:8.1f} s "
          f"(speed-up {central.elapsed / parallel.elapsed:.1f}x)")
    print(f"  adaptive plan       : {adaptive.elapsed:8.1f} s "
          f"(speed-up {central.elapsed / adaptive.elapsed:.1f}x, "
          f"no fanout tuning needed)")

    assert parallel.as_bag() == central.as_bag() == adaptive.as_bag()


if __name__ == "__main__":
    main()
