"""Capacity-aware admission control for the resident query engine.

The paper's adaptive operators tune fanout *inside* one query; nothing in
the seed bounds how many queries the engine admits at once beyond a static
semaphore.  But concurrency past the safe level inflates worst-query p50
latency by 50-85% (the querytorque parallel-capacity sweep in SNIPPETS.md),
so a mediator serving real traffic needs the closed loop this module
provides:

* :class:`CapacityController` — the *online* version of the offline
  capacity sweep: completed queries feed per-concurrency-level latency
  histograms (:class:`repro.obs.metrics.Histogram`), and a feedback
  control law in the shape of Gounaris et al.'s web-service concurrency
  controllers raises the admission limit additively while measured p50
  inflation versus the single-query baseline stays under the threshold,
  and backs off multiplicatively (with hysteresis: a level that tripped
  is not re-probed until several clean control windows have passed) when
  it does not.

* :class:`AdmissionController` — the engine-facing facade: weighted fair
  queueing across tenants (virtual-time tags, so a heavy tenant's backlog
  cannot starve a light one), deadline-based load shedding (queries whose
  ``deadline_ms`` cannot be met at the measured service rate are rejected
  *up front* with :class:`AdmissionRejected`, which the HTTP front end
  maps to ``429`` + ``Retry-After``), and AFF fanout caps derived from
  measured broker queue contention.

Everything here runs on kernel primitives only, so adaptive admission is
bit-for-bit deterministic under :class:`~repro.runtime.simulated.SimKernel`
and works unchanged under the real-time kernels.  The engine's default
(``admission="static"``) never constructs any of this.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.util.errors import ReproError

#: Metric names the controller maintains (all in the engine's registry).
LATENCY_METRIC = "admission.latency"  # histogram, labelled {"level": N}
ADMITTED_METRIC = "admission.admitted"  # counter, labelled {"tenant": name}
SHED_METRIC = "admission.shed"  # counter, labelled {"tenant": name}


class AdmissionRejected(ReproError):
    """A query was shed at admission (deadline unmeetable at current rates).

    ``retry_after`` is the controller's service-rate estimate of when a
    retry could be admitted, in *model seconds*; the HTTP front end turns
    it into a ``Retry-After`` header on a ``429`` response.
    """

    def __init__(self, message: str, *, retry_after: float, tenant: str) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.tenant = tenant


@dataclass(frozen=True)
class AdmissionConfig:
    """Tuning of the adaptive admission controller.

    ``threshold``        p50 inflation versus the single-query baseline
                         that marks a concurrency level unsafe (1.5 =
                         "worst-query p50 may grow 50%").
    ``min_concurrency``  floor of the admission limit (also the starting
                         level, so the controller first gathers its
                         single-query baseline).
    ``max_concurrency``  ceiling of the limit; ``None`` uses the engine's
                         ``max_concurrency``.
    ``baseline_samples`` completed solo queries required before the
                         controller starts raising the limit.
    ``probe_queries``    completions at the current limit per control
                         decision (the online sweep's "rounds").
    ``window``           samples per level the p50 is computed over.
    ``raise_margin``     raise the limit only while inflation is under
                         ``threshold * raise_margin`` (the hysteresis
                         dead band between raising and backing off).
    ``reprobe_windows``  clean control windows required before a level
                         that tripped the threshold may be probed again.
    ``shed``             enable deadline-based load shedding.
    ``default_deadline_ms``  deadline applied to queries that carry none
                         (model milliseconds; ``None`` = no deadline).
    ``ewma_alpha``       smoothing of the per-query service-time estimate
                         that prices queue delay for shedding.
    ``fanout_caps``      enable AFF fanout caps from broker contention.
    ``contention_ratio`` mean queue wait over mean server time above
                         which an endpoint counts as contended.
    ``min_fanout_cap``   never cap adaptive fanout below this.
    ``tenant_weights``   static weighted-fair-queueing weights; tenants
                         not listed get weight 1.0.
    """

    threshold: float = 1.5
    min_concurrency: int = 1
    max_concurrency: int | None = None
    baseline_samples: int = 2
    probe_queries: int = 3
    window: int = 32
    raise_margin: float = 0.9
    reprobe_windows: int = 4
    shed: bool = True
    default_deadline_ms: float | None = None
    ewma_alpha: float = 0.3
    fanout_caps: bool = True
    contention_ratio: float = 0.5
    min_fanout_cap: int = 2
    tenant_weights: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.threshold <= 1.0:
            raise ReproError(
                f"admission threshold must be > 1.0, got {self.threshold}"
            )
        if self.min_concurrency < 1:
            raise ReproError(
                f"min_concurrency must be >= 1, got {self.min_concurrency}"
            )
        if (
            self.max_concurrency is not None
            and self.max_concurrency < self.min_concurrency
        ):
            raise ReproError(
                f"max_concurrency {self.max_concurrency} is below "
                f"min_concurrency {self.min_concurrency}"
            )
        if self.baseline_samples < 1 or self.probe_queries < 1:
            raise ReproError("baseline_samples and probe_queries must be >= 1")
        if not 0.0 < self.raise_margin <= 1.0:
            raise ReproError(
                f"raise_margin must be in (0, 1], got {self.raise_margin}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ReproError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.min_fanout_cap < 1:
            raise ReproError(
                f"min_fanout_cap must be >= 1, got {self.min_fanout_cap}"
            )
        for tenant, weight in self.tenant_weights.items():
            if weight <= 0:
                raise ReproError(
                    f"tenant {tenant!r} weight must be positive, got {weight}"
                )


@dataclass
class AdmissionStats:
    """Point-in-time snapshot of the admission controller."""

    policy: str
    limit: int
    ceiling: int
    baseline_p50: float
    inflation: float
    ewma_service: float
    admitted: int
    shed: int
    queued: int
    raises: int
    backoffs: int
    fanout_cap: int  # 0 = uncapped
    tenants: dict[str, dict[str, float]] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return dict(self.__dict__)


class CapacityController:
    """Online capacity probe: the offline p50-inflation sweep, closed-loop.

    Completed queries are observed at the concurrency *level* they were
    admitted at (how many queries were in flight, including themselves).
    Each level's latencies land in one :class:`Histogram` of ``metrics``,
    so the measured sweep is inspectable exactly like the offline table
    in SNIPPETS.md (:meth:`sweep_table`).  The control law:

    * the baseline is the p50 of level-1 (solo) samples;
    * every ``probe_queries`` completions at the current limit, compare
      the limit's windowed p50 to the baseline;
    * inflation under ``threshold * raise_margin`` raises the limit by 1
      (additive increase) up to the ceiling;
    * inflation over ``threshold`` halves the limit (multiplicative
      decrease) and marks the tripped level unsafe — it is re-probed
      only after ``reprobe_windows`` consecutive clean windows
      (hysteresis, so a borderline level cannot make the limit flap).
    """

    def __init__(
        self, config: AdmissionConfig, ceiling: int, metrics: MetricsRegistry
    ) -> None:
        self.config = config
        self.ceiling = max(ceiling, config.min_concurrency)
        self.metrics = metrics
        self.limit = config.min_concurrency
        self.raises = 0
        self.backoffs = 0
        self.last_inflation = 0.0
        self._at_limit = 0  # completions at the current limit since change
        self._unsafe: int | None = None  # lowest level known to trip
        self._clean_windows = 0

    # -- measurements ------------------------------------------------------------

    def _histogram(self, level: int):
        return self.metrics.histogram(LATENCY_METRIC, {"level": str(level)})

    def observe(self, level: int, latency: float) -> None:
        self._histogram(level).observe(latency)
        if level == self.limit:
            self._at_limit += 1

    def baseline_p50(self) -> float:
        baseline = self._histogram(1)
        if baseline.count < self.config.baseline_samples:
            return 0.0
        return baseline.tail_percentile(0.5, self.config.window)

    def level_p50(self, level: int) -> float:
        histogram = self._histogram(level)
        if not histogram.count:
            return 0.0
        return histogram.tail_percentile(0.5, self.config.window)

    def sweep_table(self) -> list[dict[str, float]]:
        """The measured sweep, one row per probed level (snippet-style)."""
        baseline = self.baseline_p50()
        rows = []
        for level in range(1, self.ceiling + 1):
            histogram = self._histogram(level)
            if not histogram.count:
                continue
            p50 = histogram.tail_percentile(0.5, self.config.window)
            rows.append(
                {
                    "level": level,
                    "samples": histogram.count,
                    "p50": p50,
                    "inflation": p50 / baseline if baseline else 0.0,
                }
            )
        return rows

    # -- the control law ---------------------------------------------------------

    def control_step(self) -> None:
        """One feedback decision; called after every query completion."""
        baseline = self.baseline_p50()
        if not baseline:
            return  # still gathering the solo baseline
        if self._at_limit < self.config.probe_queries:
            return  # not enough evidence at this limit yet
        self._at_limit = 0
        inflation = self.level_p50(self.limit) / baseline
        self.last_inflation = inflation
        if inflation > self.config.threshold:
            self._unsafe = min(self._unsafe or self.limit, self.limit)
            self._clean_windows = 0
            backed_off = max(self.config.min_concurrency, self.limit // 2)
            if backed_off != self.limit:
                self.limit = backed_off
                self.backoffs += 1
            return
        self._clean_windows += 1
        if inflation > self.config.threshold * self.config.raise_margin:
            return  # dead band: safe, but too close to the edge to raise
        if self.limit >= self.ceiling:
            return
        next_level = self.limit + 1
        if self._unsafe is not None and next_level >= self._unsafe:
            if self._clean_windows < self.config.reprobe_windows:
                return  # hysteresis: wait before re-probing a tripped level
            self._unsafe = None  # forgive — service rates may have changed
        self._clean_windows = 0
        self.limit = next_level
        self.raises += 1


class _TenantState:
    __slots__ = ("name", "weight", "finish", "admitted", "rejected", "queued")

    def __init__(self, name: str, weight: float) -> None:
        self.name = name
        self.weight = weight
        self.finish = 0.0  # virtual finish tag of the last request
        self.admitted = 0
        self.rejected = 0
        self.queued = 0


class _Waiter:
    __slots__ = (
        "tenant",
        "tag",
        "seq",
        "event",
        "ticket",
        "deadline_ms",
        "submitted_at",
        "rejection",
    )

    def __init__(self, tenant: _TenantState, tag: float, seq: int, event) -> None:
        self.tenant = tenant
        self.tag = tag
        self.seq = seq
        self.event = event
        self.ticket: Ticket | None = None
        self.deadline_ms: float | None = None
        self.submitted_at = 0.0
        self.rejection: AdmissionRejected | None = None


@dataclass
class Ticket:
    """Proof of admission; hand it back to :meth:`release` when done."""

    tenant: str
    level: int  # queries in flight at admission, including this one


class AdmissionController:
    """Admission facade: capacity limit + tenant WFQ + deadline shedding.

    ``admit`` either returns a :class:`Ticket` (possibly after queueing)
    or raises :class:`AdmissionRejected`.  ``release`` must run exactly
    once per ticket — it feeds the latency sample to the capacity
    controller and hands the freed slot to the fairest waiter.
    """

    def __init__(
        self,
        kernel,
        config: AdmissionConfig,
        *,
        ceiling: int,
        broker=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.kernel = kernel
        self.config = config
        self.broker = broker
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        effective_ceiling = (
            config.max_concurrency if config.max_concurrency is not None else ceiling
        )
        self.capacity = CapacityController(config, effective_ceiling, self.metrics)
        self._tenants: dict[str, _TenantState] = {}
        self._queue: list[_Waiter] = []
        self._active = 0
        self._vtime = 0.0
        self._seq = 0
        self._ewma: float | None = None  # per-query service time estimate
        self.admitted = 0
        self.shed = 0
        # Admission order of the most recent grants, newest last; fairness
        # tests assert interleaving on it.
        self.admission_log: deque[str] = deque(maxlen=256)

    # -- tenants -----------------------------------------------------------------

    def _tenant(self, name: str, weight: float | None) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(
                name, weight or self.config.tenant_weights.get(name, 1.0)
            )
            self._tenants[name] = state
        elif weight is not None:
            state.weight = weight
        return state

    # -- admission ---------------------------------------------------------------

    @property
    def limit(self) -> int:
        return self.capacity.limit

    def estimated_wait(self) -> float:
        """Expected queue delay for a request arriving now (model seconds)."""
        if self._ewma is None:
            return 0.0
        backlog = len(self._queue) + max(0, self._active - self.limit + 1)
        return self._ewma * backlog / max(1, self.limit)

    def _shed_check(self, tenant: _TenantState, deadline: float | None) -> None:
        if not self.config.shed or deadline is None or self._ewma is None:
            return
        est_wait = self.estimated_wait()
        if deadline / 1000.0 < est_wait + self._ewma:
            tenant.rejected += 1
            self.shed += 1
            self.metrics.counter(SHED_METRIC, {"tenant": tenant.name}).inc()
            retry_after = max(est_wait, self._ewma)
            raise AdmissionRejected(
                f"deadline {deadline:g}ms cannot be met: estimated queue wait "
                f"{est_wait * 1000.0:.0f}ms + service {self._ewma * 1000.0:.0f}ms "
                f"at admission limit {self.limit}",
                retry_after=retry_after,
                tenant=tenant.name,
            )

    def _grant(self, tenant: _TenantState, tag: float) -> Ticket:
        self._vtime = max(self._vtime, tag)
        self._active += 1
        tenant.admitted += 1
        self.admitted += 1
        self.admission_log.append(tenant.name)
        self.metrics.counter(ADMITTED_METRIC, {"tenant": tenant.name}).inc()
        return Ticket(tenant=tenant.name, level=self._active)

    async def admit(
        self,
        tenant: str = "default",
        *,
        deadline_ms: float | None = None,
        weight: float | None = None,
    ) -> Ticket:
        state = self._tenant(tenant, weight)
        deadline = (
            self.config.default_deadline_ms if deadline_ms is None else deadline_ms
        )
        self._shed_check(state, deadline)
        tag = max(self._vtime, state.finish) + 1.0 / state.weight
        state.finish = tag
        if self._active < self.limit and not self._queue:
            return self._grant(state, tag)
        self._seq += 1
        waiter = _Waiter(state, tag, self._seq, self.kernel.event())
        waiter.deadline_ms = deadline
        waiter.submitted_at = self.kernel.now()
        self._queue.append(waiter)
        state.queued += 1
        try:
            await waiter.event.wait()
        finally:
            state.queued -= 1
            if (
                waiter.ticket is None
                and waiter.rejection is None
                and waiter in self._queue
            ):
                # Cancelled while queued: withdraw so _pump never grants
                # a slot to a dead waiter.
                self._queue.remove(waiter)
        if waiter.rejection is not None:
            raise waiter.rejection
        assert waiter.ticket is not None
        return waiter.ticket

    def release(self, ticket: Ticket, latency: float) -> None:
        self._active -= 1
        alpha = self.config.ewma_alpha
        self._ewma = (
            latency
            if self._ewma is None
            else alpha * latency + (1.0 - alpha) * self._ewma
        )
        self.capacity.observe(ticket.level, latency)
        self.capacity.control_step()
        self._pump()

    def _pump(self) -> None:
        """Hand freed slots to waiters in weighted-fair (tag, seq) order.

        A waiter whose deadline the queue has already eaten — remaining
        budget below one estimated service time — is shed here instead of
        granted, still strictly *before* execution (the deadline check at
        arrival can only price the queue it can see; the EWMA may not
        even exist yet when a burst arrives on an idle controller).
        """
        while self._active < self.limit and self._queue:
            waiter = min(self._queue, key=lambda entry: (entry.tag, entry.seq))
            self._queue.remove(waiter)
            if (
                self.config.shed
                and waiter.deadline_ms is not None
                and self._ewma is not None
            ):
                waited = self.kernel.now() - waiter.submitted_at
                remaining = waiter.deadline_ms / 1000.0 - waited
                if remaining < self._ewma:
                    waiter.tenant.rejected += 1
                    self.shed += 1
                    self.metrics.counter(
                        SHED_METRIC, {"tenant": waiter.tenant.name}
                    ).inc()
                    waiter.rejection = AdmissionRejected(
                        f"deadline {waiter.deadline_ms:g}ms cannot be met: "
                        f"{waited * 1000.0:.0f}ms spent queued, service "
                        f"needs {self._ewma * 1000.0:.0f}ms",
                        retry_after=self._ewma,
                        tenant=waiter.tenant.name,
                    )
                    waiter.event.set()
                    continue
            waiter.ticket = self._grant(waiter.tenant, waiter.tag)
            waiter.event.set()

    # -- AFF fanout caps ---------------------------------------------------------

    def fanout_cap(self) -> int | None:
        """Fanout ceiling from measured broker queue contention, or None.

        An endpoint whose mean queue wait exceeds ``contention_ratio`` of
        its mean server time is saturated: dispatching a wider AFF fanout
        against it only deepens the broker queue (the ``queue`` spans in
        ``repro.obs`` traces).  The cap allows two in-flight calls per
        server slot of the most contended endpoint — enough to pipeline
        the transport, not enough to stack the queue.
        """
        if not self.config.fanout_caps or self.broker is None:
            return None
        cap: int | None = None
        for info in self.broker.contention().values():
            if info["server_time_mean"] <= 0.0:
                continue
            ratio = info["queue_wait_mean"] / info["server_time_mean"]
            if ratio <= self.config.contention_ratio:
                continue
            endpoint_cap = max(self.config.min_fanout_cap, 2 * info["capacity"])
            cap = endpoint_cap if cap is None else min(cap, endpoint_cap)
        return cap

    # -- introspection -----------------------------------------------------------

    def stats(self) -> AdmissionStats:
        cap = self.fanout_cap()
        return AdmissionStats(
            policy="adaptive",
            limit=self.limit,
            ceiling=self.capacity.ceiling,
            baseline_p50=self.capacity.baseline_p50(),
            inflation=self.capacity.last_inflation,
            ewma_service=self._ewma or 0.0,
            admitted=self.admitted,
            shed=self.shed,
            queued=len(self._queue),
            raises=self.capacity.raises,
            backoffs=self.capacity.backoffs,
            fanout_cap=cap or 0,
            tenants={
                state.name: {
                    "weight": state.weight,
                    "admitted": state.admitted,
                    "rejected": state.rejected,
                    "queued": state.queued,
                }
                for state in self._tenants.values()
            },
        )
