"""Resident query engine: plan cache, warm pools, multi-query admission."""

from repro.engine.engine import EngineStats, QueryEngine
from repro.engine.plan_cache import (
    CompiledPlan,
    PlanCache,
    PlanCacheStats,
    plan_dependencies,
)
from repro.engine.pools import PoolRegistry, PoolRegistryStats, pool_fingerprint

__all__ = [
    "CompiledPlan",
    "EngineStats",
    "PlanCache",
    "PlanCacheStats",
    "PoolRegistry",
    "PoolRegistryStats",
    "QueryEngine",
    "plan_dependencies",
    "pool_fingerprint",
]
