"""Resident query engine: plan cache, warm pools, multi-query admission."""

from repro.engine.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionRejected,
    AdmissionStats,
    CapacityController,
)
from repro.engine.engine import EngineClosed, EngineStats, QueryEngine
from repro.engine.plan_cache import (
    CompiledPlan,
    PlanCache,
    PlanCacheStats,
    plan_dependencies,
)
from repro.engine.pools import PoolRegistry, PoolRegistryStats, pool_fingerprint
from repro.engine.shared import (
    SHARED_HIT,
    SHARED_WAIT,
    ShareConfig,
    SharedCallCache,
    SharedStats,
)

__all__ = [
    "SHARED_HIT",
    "SHARED_WAIT",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionStats",
    "CapacityController",
    "CompiledPlan",
    "EngineClosed",
    "EngineStats",
    "PlanCache",
    "PlanCacheStats",
    "PoolRegistry",
    "PoolRegistryStats",
    "QueryEngine",
    "ShareConfig",
    "SharedCallCache",
    "SharedStats",
    "plan_dependencies",
    "pool_fingerprint",
]
