"""Engine-level sharing of web-service work across concurrent queries.

The resident :class:`~repro.engine.QueryEngine` admits N queries on one
kernel, but each query is blind to the others: every query (and every
child process) keeps its own :class:`~repro.cache.CallCache`, so 16
clients running the same query do 16x the broker work.  The paper
parallelizes *within* one query; multi-query optimization (see *Multi
Query Optimization in GLADE*, PAPERS.md) shares work *between* them.
This module is the first two of the engine's three sharing tiers:

1. **Shared call cache** — one engine-scoped memo of web-service results
   keyed ``(uri, service, operation, args)``, consulted after the
   per-process tier misses.  LRU/TTL bounds are independent of the
   per-process tier, and entries are invalidated when
   ``import_wsdl``/``register_helping_function`` replaces a definition.
2. **Cross-query single-flight** — an identical call already in flight
   for query A is awaited, not re-issued, by query B.  Unlike the
   per-process collapse (where waiters share the leader's fault), a
   failed leader here must *not* poison the waiting query: waiters wake,
   discard the foreign failure and retry, one of them becoming the new
   leader.  Total broker calls therefore scale with the number of
   *distinct* calls, not the number of clients.
3. **Cross-query batching** — misses that survive both tiers within one
   linger window and target the same ``(uri, operation)`` coalesce into
   one :meth:`~repro.services.broker.ServiceBroker.call_many` transport
   round trip.  Results are demultiplexed back to each caller, and each
   sub-call keeps its own :class:`~repro.services.broker.CallRecorder`
   and trace/span attribution, so per-query statistics stay disjoint.

(The third sharing tier — concurrent leases of warm child-process trees —
lives in :mod:`repro.engine.pools`.)

Everything here is off by default; with no :class:`ShareConfig` the
engine's call path is bit-for-bit identical to the seed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.cache import MISS
from repro.runtime.base import Kernel
from repro.services.broker import BatchRequest, CallRecorder, ServiceBroker
from repro.util.errors import ReproError

#: Shared-tier outcomes, in trace/report vocabulary.  ``MISS`` (a real
#: broker round trip) is shared with the per-process tier.
SHARED_HIT = "shared_hit"
SHARED_WAIT = "shared_wait"


@dataclass(frozen=True)
class ShareConfig:
    """Tuning of the engine's multi-query sharing tiers.

    ``enabled``       master switch; the default ``False`` keeps every
                      query's call path bit-for-bit seed-identical.
    ``cache``         the shared result memo *and* cross-query
                      single-flight (dedup rides on the in-flight table).
    ``max_entries``   LRU bound of the shared memo, independent of the
                      per-process tier.
    ``ttl``           shared-entry lifetime in model seconds (``None`` =
                      never expires; replaced definitions still evict).
    ``batching``      coalesce same-endpoint misses from concurrent
                      queries into one ``call_many`` transport trip.
    ``batch_linger``  model seconds a miss waits for company before the
                      coalesced flush (also the added worst-case latency
                      of a lonely call).
    ``batch_max``     flush immediately once this many calls are pending
                      for one ``(uri, operation)``.
    ``pools``         let overlapping queries wait for a busy warm pool
                      (concurrent lease) instead of cold-cloning the tree.
    """

    enabled: bool = False
    cache: bool = True
    max_entries: int = 4096
    ttl: float | None = None
    batching: bool = True
    batch_linger: float = 0.002
    batch_max: int = 16
    pools: bool = True

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ReproError(
                f"share max_entries must be >= 1, got {self.max_entries}"
            )
        if self.ttl is not None and self.ttl <= 0:
            raise ReproError(f"share ttl must be positive (or None), got {self.ttl}")
        if self.batch_linger < 0:
            raise ReproError(
                f"share batch_linger must be >= 0, got {self.batch_linger}"
            )
        if self.batch_max < 1:
            raise ReproError(f"share batch_max must be >= 1, got {self.batch_max}")


@dataclass
class SharedStats:
    """Engine-lifetime counters of the shared tier (all queries).

    ``hits``          calls served from the shared memo.
    ``misses``        broker round trips issued through the tier.
    ``waits``         calls that parked on another query's in-flight
                      identical call and shared its result.
    ``failures``      leader calls that raised; their waiters retried
                      instead of inheriting the fault.
    ``evictions``     entries dropped by the LRU bound.
    ``expirations``   entries dropped because their TTL elapsed.
    ``invalidations`` entries dropped because a definition was replaced.
    ``batches``       coalesced flushes that carried >= 2 calls.
    ``batched_calls`` calls that rode a coalesced flush.
    """

    hits: int = 0
    misses: int = 0
    waits: int = 0
    failures: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    batches: int = 0
    batched_calls: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.waits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without a new round trip."""
        if self.lookups == 0:
            return 0.0
        return (self.hits + self.waits) / self.lookups

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "waits": self.waits,
            "failures": self.failures,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "batches": self.batches,
            "batched_calls": self.batched_calls,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    value: Any
    expires_at: float | None  # model time; None = never


class _Flight:
    """One in-flight shared call: the leader's outcome, read by waiters.

    ``error`` is informational only — waiters never re-raise it (a fault
    belongs to the query that issued the call); they retry instead.
    """

    __slots__ = ("done", "value", "error")

    def __init__(self, kernel: Kernel) -> None:
        self.done = kernel.event()
        self.value: Any = None
        self.error: BaseException | None = None


class _PendingBatch:
    """Calls waiting to coalesce for one ``(uri, operation)``."""

    __slots__ = ("requests", "generation")

    def __init__(self, generation: int) -> None:
        self.requests: list[BatchRequest] = []
        self.generation = generation


class SharedCallCache:
    """The engine-scoped sharing tier above every per-process cache.

    One instance belongs to one :class:`~repro.engine.QueryEngine`; all
    queries (and all their child processes) route broker round trips
    through :meth:`call`.  Per-query attribution is preserved because
    each call carries its own recorder/span and trace events are written
    by the caller, never by the shared tier.
    """

    def __init__(self, kernel: Kernel, config: ShareConfig) -> None:
        self.kernel = kernel
        self.config = config
        self.stats = SharedStats()
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._in_flight: dict[Hashable, _Flight] = {}
        self._pending: dict[tuple[str, str], _PendingBatch] = {}
        self._generation = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup ------------------------------------------------------------------

    async def call(
        self,
        broker: ServiceBroker,
        uri: str,
        service: str,
        operation: str,
        arguments: list[Any],
        *,
        recorder: CallRecorder | None = None,
        obs=None,
        obs_span: int = -1,
    ) -> tuple[Any, str, bool]:
        """Route one web-service call through the sharing tiers.

        Returns ``(value, outcome, coalesced)`` where ``outcome`` is one
        of :data:`SHARED_HIT`, :data:`SHARED_WAIT` or
        :data:`~repro.cache.MISS` (a real round trip) and ``coalesced``
        says whether that round trip rode a cross-query batch.
        """
        key = (uri, service, operation, tuple(arguments))
        try:
            hash(key)
        except TypeError:
            # Unhashable argument: dispatch without memoizing or dedup.
            self.stats.misses += 1
            value, coalesced = await self._dispatch(
                broker, uri, service, operation, arguments,
                recorder=recorder, obs=obs, obs_span=obs_span,
            )
            return value, MISS, coalesced

        if not self.config.cache:
            self.stats.misses += 1
            value, coalesced = await self._dispatch(
                broker, uri, service, operation, arguments,
                recorder=recorder, obs=obs, obs_span=obs_span,
            )
            return value, MISS, coalesced

        waited = False
        while True:
            entry = self._lookup(key)
            if entry is not None:
                if waited:
                    # Parked on a flight whose leader succeeded and
                    # memoized before this waiter re-checked.
                    self.stats.waits += 1
                    return entry.value, SHARED_WAIT, False
                self.stats.hits += 1
                return entry.value, SHARED_HIT, False

            flight = self._in_flight.get(key)
            if flight is None:
                break  # no leader: become one
            waited = True
            await flight.done.wait()
            if flight.error is None:
                self.stats.waits += 1
                return flight.value, SHARED_WAIT, False
            # The leader's call failed.  That fault belongs to the query
            # that issued it — inheriting it here would poison an
            # innocent query — so loop and retry (possibly as the new
            # leader).

        flight = _Flight(self.kernel)
        self._in_flight[key] = flight
        self.stats.misses += 1
        try:
            value, coalesced = await self._dispatch(
                broker, uri, service, operation, arguments,
                recorder=recorder, obs=obs, obs_span=obs_span,
            )
        except BaseException as error:
            self.stats.failures += 1
            flight.error = error
            raise
        else:
            flight.value = value
            self._store(key, value)
            return value, MISS, coalesced
        finally:
            del self._in_flight[key]
            flight.done.set()

    # -- cross-query batching ------------------------------------------------------

    async def _dispatch(
        self,
        broker: ServiceBroker,
        uri: str,
        service: str,
        operation: str,
        arguments: list[Any],
        *,
        recorder: CallRecorder | None,
        obs,
        obs_span: int,
    ) -> tuple[Any, bool]:
        """One real round trip, possibly coalesced with concurrent ones."""
        if not self.config.batching:
            value = await broker.call(
                uri, service, operation, arguments,
                recorder=recorder, obs=obs, obs_span=obs_span,
            )
            return value, False

        request = BatchRequest(
            arguments=arguments, recorder=recorder, obs=obs, obs_span=obs_span,
            done=self.kernel.event(),
        )
        queue_key = (uri, operation)
        pending = self._pending.get(queue_key)
        if pending is None:
            self._generation += 1
            pending = _PendingBatch(self._generation)
            self._pending[queue_key] = pending
            pending.requests.append(request)
            self.kernel.spawn(
                self._linger_flush(broker, uri, service, operation, pending),
            )
        else:
            pending.requests.append(request)
            if len(pending.requests) >= self.config.batch_max:
                del self._pending[queue_key]
                await self._flush(broker, uri, service, operation, pending)
        await request.done.wait()
        if request.error is not None:
            raise request.error
        return request.value, request.coalesced

    async def _linger_flush(
        self,
        broker: ServiceBroker,
        uri: str,
        service: str,
        operation: str,
        pending: _PendingBatch,
    ) -> None:
        await self.kernel.sleep(self.config.batch_linger)
        queue_key = (uri, operation)
        current = self._pending.get(queue_key)
        if current is not pending or current.generation != pending.generation:
            return  # already flushed by the size trigger
        del self._pending[queue_key]
        await self._flush(broker, uri, service, operation, pending)

    async def _flush(
        self,
        broker: ServiceBroker,
        uri: str,
        service: str,
        operation: str,
        pending: _PendingBatch,
    ) -> None:
        requests = pending.requests
        coalesced = len(requests) >= 2
        if coalesced:
            self.stats.batches += 1
            self.stats.batched_calls += len(requests)
        for request in requests:
            request.coalesced = coalesced
        try:
            if coalesced:
                await broker.call_many(uri, service, operation, requests)
            else:
                request = requests[0]
                try:
                    request.value = await broker.call(
                        uri, service, operation, request.arguments,
                        recorder=request.recorder,
                        obs=request.obs, obs_span=request.obs_span,
                    )
                except BaseException as error:
                    request.error = error
        finally:
            for request in requests:
                request.done.set()

    # -- memo internals ------------------------------------------------------------

    def _lookup(self, key: Hashable) -> _Entry | None:
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.expires_at is not None and self.kernel.now() >= entry.expires_at:
            del self._entries[key]
            self.stats.expirations += 1
            return None
        self._entries.move_to_end(key)
        return entry

    def _store(self, key: Hashable, value: Any) -> None:
        expires_at = (
            self.kernel.now() + self.config.ttl
            if self.config.ttl is not None
            else None
        )
        self._entries[key] = _Entry(value, expires_at)
        self._entries.move_to_end(key)
        while len(self._entries) > self.config.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # -- invalidation ------------------------------------------------------------

    def invalidate_operation(self, operation_name: str) -> int:
        """Drop every memoized result of ``operation_name``.

        Wired to ``WSMED.add_replace_listener``: when ``import_wsdl`` or
        ``register_helping_function`` replaces a definition, results the
        old provider produced must not serve later queries.  In-flight
        calls cannot be recalled — they are the same small race window a
        single query already has between issuing a call and a concurrent
        re-import.
        """
        wanted = operation_name.lower()
        stale = [key for key in self._entries if key[2].lower() == wanted]
        for key in stale:
            del self._entries[key]
        self.stats.invalidations += len(stale)
        return len(stale)
