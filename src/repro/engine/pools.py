"""Warm child-pool registry: process trees that outlive their query.

Spawning a child query process costs ``startup + ship_function +
install`` model seconds *per child, serially at the parent* — for a
Query1 tree of 25 processes that dwarfs the web-service calls a warm
cache avoids.  The registry keeps coordinator-level :class:`ChildPool`s
alive after their query completes, keyed by a *pool fingerprint*, and
leases them to later queries: a warm query ships zero plan functions
and spawns zero processes.

The fingerprint covers everything that must match for reuse to be
transparent:

* the serialized plan function (including the stable ``node_id`` of
  every nested operator — so a warm lease only ever happens for the
  *same compiled plan object*, i.e. after a plan-cache hit; a replaced
  definition recompiles, gets fresh node ids, and cold-starts),
* the operator shape (FF fanout / AFF adaptation parameters),
* the process cost model and the cache configuration the tree's child
  caches were built with.

Explicit invalidation complements the fingerprint: when a function
definition is replaced, :meth:`PoolRegistry.condemn` moves every idle
pool that depends on it to a doomed list, closed on the next
:meth:`drain` (shutdown is asynchronous; replacement happens in
synchronous registration code).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass

from repro.algebra.interpreter import ExecutionContext
from repro.algebra.plan import FFApplyNode, PlanNode
from repro.cache import CacheConfig, stable_hash
from repro.engine.plan_cache import plan_dependencies, structural_form
from repro.parallel.costs import ProcessCosts
from repro.parallel.ff_applyp import ChildPool


def pool_fingerprint(
    node: PlanNode,
    costs: ProcessCosts,
    cache_config: CacheConfig | None,
    *,
    structural: bool = False,
) -> int:
    """Stable identity of the child-process tree one operator would build.

    With ``structural=True`` (the sharing engine's common-subplan mode),
    node ids are canonically renumbered first
    (:func:`~repro.engine.plan_cache.structural_form`), so independently
    compiled but structurally identical subplans match; stale trees are
    then caught by explicit :meth:`PoolRegistry.condemn` invalidation
    rather than by fingerprint divergence.
    """
    if isinstance(node, FFApplyNode):
        shape = ("ff", node.fanout)
    else:
        shape = ("aff", tuple(sorted(node.params.to_dict().items())))
    serialized = node.plan_function.to_dict()
    if structural:
        serialized = structural_form(serialized)
    return stable_hash(
        (
            shape,
            json.dumps(serialized, sort_keys=True),
            repr(costs),
            repr(cache_config),
        )
    )


@dataclass
class PoolRegistryStats:
    cold_starts: int = 0  # pools built because no warm one matched
    warm_leases: int = 0  # queries served from a resident tree
    released: int = 0  # pools handed back after a query
    condemned: int = 0  # pools (idle or leased) invalidated by a replaced definition
    trimmed: int = 0  # idle pools dropped by the LRU bound
    closed: int = 0  # pools actually shut down
    lease_waits: int = 0  # queries that parked for a busy warm tree (sharing on)
    shared_leases: int = 0  # warm leases satisfied after such a wait
    discarded: int = 0  # pools forgotten without shutdown (kernel already dead)

    def as_dict(self) -> dict[str, int]:
        return {
            "cold_starts": self.cold_starts,
            "warm_leases": self.warm_leases,
            "released": self.released,
            "condemned": self.condemned,
            "trimmed": self.trimmed,
            "closed": self.closed,
            "lease_waits": self.lease_waits,
            "shared_leases": self.shared_leases,
            "discarded": self.discarded,
        }


class PoolRegistry:
    """Free lists of idle warm pools, with LRU bounds and invalidation.

    A leased pool is exclusively owned by its query until released, so
    concurrent queries with the same fingerprint each get their own tree
    (the second lease finds the free list empty and cold-starts).
    """

    def __init__(self, max_idle: int = 32) -> None:
        self.max_idle = max_idle
        self.stats = PoolRegistryStats()
        # The sharing engine turns this on: overlapping queries may then
        # *wait* for a busy warm tree instead of cold-cloning it, and
        # fingerprints become structural (common-subplan detection).
        self.share_pools = False
        # Bumped by every condemn(); _condemned_at remembers at which
        # epoch each function name was last replaced.  register() uses
        # the pair to catch pools built from a plan that was compiled
        # *before* a replacement but registered *after* the condemn
        # sweep — under structural fingerprints such a stale tree would
        # otherwise be leasable by queries running the new definition.
        self.epoch = 0
        self._condemned_at: dict[str, int] = {}
        # fingerprint -> stack of idle pools; OrderedDict gives LRU order
        # across fingerprints for the trim policy.
        self._free: "OrderedDict[int, list[ChildPool]]" = OrderedDict()
        self._idle = 0
        # fingerprint -> pools currently leased out.  The concurrent-
        # lease reference counts: len(bucket) holders now, plus waiter
        # events parked in _waiters until a release hands the tree over.
        self._leased: dict[int, list[ChildPool]] = {}
        self._waiters: dict[int, list] = {}
        # Pools awaiting asynchronous shutdown (condemned or trimmed).
        self._doomed: list[ChildPool] = []

    # -- executor protocol -------------------------------------------------------

    def _fingerprint(
        self, node: PlanNode, costs: ProcessCosts, cache_config: CacheConfig | None
    ) -> int:
        return pool_fingerprint(
            node, costs, cache_config, structural=self.share_pools
        )

    def _pop_free(self, key: int, ctx: ExecutionContext) -> ChildPool | None:
        bucket = self._free.get(key)
        if not bucket:
            return None
        pool = bucket.pop()
        if not bucket:
            del self._free[key]
        self._idle -= 1
        pool.rebind(ctx)
        self._leased.setdefault(key, []).append(pool)
        self.stats.warm_leases += 1
        return pool

    def lease(
        self, node: PlanNode, costs: ProcessCosts, ctx: ExecutionContext
    ) -> ChildPool | None:
        """A warm pool matching ``node`` under ``ctx``, or None."""
        cache_config = ctx.cache.config if ctx.cache is not None else None
        return self._pop_free(self._fingerprint(node, costs, cache_config), ctx)

    async def lease_or_wait(
        self,
        node: PlanNode,
        costs: ProcessCosts,
        ctx: ExecutionContext,
        held: list[int],
    ) -> tuple[ChildPool | None, int]:
        """A warm pool, waiting for a busy one when sharing allows it.

        Returns ``(pool_or_None, fingerprint)``; ``None`` means the
        caller should cold-start (and register under the fingerprint).
        A query waits only while another query holds a matching tree —
        that holder releases in its executor's ``finally``, so the wait
        terminates.  ``held`` lists the fingerprints this query already
        holds; waiting is allowed only on fingerprints above all of them,
        which totally orders acquisitions across queries and rules out
        circular waits (queries running the same cached plan acquire in
        identical plan order anyway — the common-subplan case this
        serves).
        """
        cache_config = ctx.cache.config if ctx.cache is not None else None
        key = self._fingerprint(node, costs, cache_config)
        waited = False
        while True:
            pool = self._pop_free(key, ctx)
            if pool is not None:
                if waited:
                    self.stats.shared_leases += 1
                return pool, key
            if not self.share_pools:
                return None, key
            if not self._leased.get(key):
                return None, key
            if held and max(held) >= key:
                return None, key
            waited = True
            self.stats.lease_waits += 1
            event = ctx.kernel.event()
            self._waiters.setdefault(key, []).append(event)
            await event.wait()

    def register(
        self,
        node: PlanNode,
        costs: ProcessCosts,
        pool: ChildPool,
        *,
        epoch: int | None = None,
    ) -> None:
        """Stamp a freshly built pool so it can be released later.

        ``epoch`` is the registry epoch captured when the pool's plan was
        compiled (or fetched from the plan cache).  If any dependency was
        condemned since, the plan — and therefore this tree — embeds a
        replaced definition: the pool is flagged immediately so it serves
        only its own query and is doomed at release.
        """
        cache_config = pool.ctx.cache.config if pool.ctx.cache is not None else None
        pool.registry_key = self._fingerprint(node, costs, cache_config)
        pool.registry_deps = plan_dependencies(node.plan_function.body)
        pool.registry_condemned = epoch is not None and any(
            self._condemned_at.get(dep, 0) > epoch for dep in pool.registry_deps
        )
        if pool.registry_condemned:
            self.stats.condemned += 1
        self._leased.setdefault(pool.registry_key, []).append(pool)
        self.stats.cold_starts += 1

    def release(self, pool: ChildPool) -> None:
        """Hand a pool back after its query; it becomes leasable again.

        A pool condemned *mid-lease* (its definition was replaced while a
        query was running on it) goes to the doomed list instead of the
        free list — the finishing query keeps its (already consistent)
        results, but no later query may see the stale tree.  Waiters for
        the fingerprint are woken either way: they re-check and either
        grab the freed tree or cold-start against the new definition.
        """
        pool.harvest_messages()
        key = getattr(pool, "registry_key", None)
        if key is None:
            return
        bucket = self._leased.get(key)
        if bucket is not None and pool in bucket:
            bucket.remove(pool)
            if not bucket:
                del self._leased[key]
        try:
            if pool._closed:
                return
            if getattr(pool, "registry_condemned", False):
                self._doomed.append(pool)
                return
            self.stats.released += 1
            self._free.setdefault(key, []).append(pool)
            self._free.move_to_end(key)
            self._idle += 1
            while self._idle > self.max_idle:
                old_key = next(iter(self._free))
                bucket = self._free[old_key]
                self._doomed.append(bucket.pop(0))
                if not bucket:
                    del self._free[old_key]
                self._idle -= 1
                self.stats.trimmed += 1
        finally:
            self._wake_waiters(key)

    def _wake_waiters(self, key: int) -> None:
        for event in self._waiters.pop(key, []):
            event.set()

    # -- invalidation ------------------------------------------------------------

    def condemn(self, function_name: str) -> int:
        """Doom every pool whose plan function applies ``function_name``.

        Synchronous on purpose — it runs from ``import_wsdl`` /
        ``register_helping_function``, outside the kernel; the doomed
        pools are actually shut down by the next :meth:`drain`.  Idle
        pools are doomed immediately; *leased* pools are flagged and
        doomed at release, so a concurrent query finishes on the tree it
        started with but nobody reuses it.
        """
        wanted = function_name.lower()
        self.epoch += 1
        self._condemned_at[wanted] = self.epoch
        count = 0
        for key in list(self._free):
            bucket = self._free[key]
            kept = []
            for pool in bucket:
                if wanted in getattr(pool, "registry_deps", frozenset()):
                    self._doomed.append(pool)
                    self._idle -= 1
                    self.stats.condemned += 1
                    count += 1
                else:
                    kept.append(pool)
            if kept:
                self._free[key] = kept
            else:
                del self._free[key]
        for bucket in self._leased.values():
            for pool in bucket:
                if wanted in getattr(pool, "registry_deps", frozenset()) and not getattr(
                    pool, "registry_condemned", False
                ):
                    pool.registry_condemned = True
                    self.stats.condemned += 1
                    count += 1
        return count

    # -- shutdown ------------------------------------------------------------------

    async def drain(self) -> None:
        """Shut down doomed pools (called at query start and at close)."""
        while self._doomed:
            pool = self._doomed.pop()
            await pool.close()
            self.stats.closed += 1

    async def close_all(self) -> None:
        """Shut down every idle pool; the registry stays usable but cold."""
        for bucket in self._free.values():
            self._doomed.extend(bucket)
        self._free.clear()
        self._idle = 0
        await self.drain()

    def discard_all(self) -> None:
        """Forget every pool without closing it.

        For kernel-generation changes: ``Kernel.shutdown`` already killed
        the child-process tasks, so the graceful async close of
        :meth:`close_all` has nothing live to talk to — awaiting it would
        park on channels nobody serves.  Waiters (sharing mode) are woken
        so they cold-start on the fresh kernel instead of sleeping on a
        dead tree's release.  Synchronous on purpose: it runs before the
        next query enters the kernel.
        """
        discarded = self._idle + sum(
            len(bucket) for bucket in self._leased.values()
        ) + len(self._doomed)
        self._free.clear()
        self._idle = 0
        self._leased.clear()
        self._doomed.clear()
        self.stats.discarded += discarded
        for waiters in self._waiters.values():
            for event in waiters:
                event.set()
        self._waiters.clear()

    # -- introspection ----------------------------------------------------------------

    def idle_pools(self) -> int:
        return self._idle

    def resident_processes(self) -> int:
        """Live child processes currently parked in idle pools."""
        total = 0
        stack = [pool for bucket in self._free.values() for pool in bucket]
        while stack:
            pool = stack.pop()
            for child in pool.children:
                total += 1
                if child.ctx is not None:
                    stack.extend(child.ctx.pools.values())
        return total
