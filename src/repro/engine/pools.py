"""Warm child-pool registry: process trees that outlive their query.

Spawning a child query process costs ``startup + ship_function +
install`` model seconds *per child, serially at the parent* — for a
Query1 tree of 25 processes that dwarfs the web-service calls a warm
cache avoids.  The registry keeps coordinator-level :class:`ChildPool`s
alive after their query completes, keyed by a *pool fingerprint*, and
leases them to later queries: a warm query ships zero plan functions
and spawns zero processes.

The fingerprint covers everything that must match for reuse to be
transparent:

* the serialized plan function (including the stable ``node_id`` of
  every nested operator — so a warm lease only ever happens for the
  *same compiled plan object*, i.e. after a plan-cache hit; a replaced
  definition recompiles, gets fresh node ids, and cold-starts),
* the operator shape (FF fanout / AFF adaptation parameters),
* the process cost model and the cache configuration the tree's child
  caches were built with.

Explicit invalidation complements the fingerprint: when a function
definition is replaced, :meth:`PoolRegistry.condemn` moves every idle
pool that depends on it to a doomed list, closed on the next
:meth:`drain` (shutdown is asynchronous; replacement happens in
synchronous registration code).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass

from repro.algebra.interpreter import ExecutionContext
from repro.algebra.plan import FFApplyNode, PlanNode
from repro.cache import CacheConfig, stable_hash
from repro.engine.plan_cache import plan_dependencies
from repro.parallel.costs import ProcessCosts
from repro.parallel.ff_applyp import ChildPool


def pool_fingerprint(
    node: PlanNode, costs: ProcessCosts, cache_config: CacheConfig | None
) -> int:
    """Stable identity of the child-process tree one operator would build."""
    if isinstance(node, FFApplyNode):
        shape = ("ff", node.fanout)
    else:
        shape = ("aff", tuple(sorted(node.params.to_dict().items())))
    return stable_hash(
        (
            shape,
            json.dumps(node.plan_function.to_dict(), sort_keys=True),
            repr(costs),
            repr(cache_config),
        )
    )


@dataclass
class PoolRegistryStats:
    cold_starts: int = 0  # pools built because no warm one matched
    warm_leases: int = 0  # queries served from a resident tree
    released: int = 0  # pools handed back after a query
    condemned: int = 0  # idle pools invalidated by a replaced definition
    trimmed: int = 0  # idle pools dropped by the LRU bound
    closed: int = 0  # pools actually shut down

    def as_dict(self) -> dict[str, int]:
        return {
            "cold_starts": self.cold_starts,
            "warm_leases": self.warm_leases,
            "released": self.released,
            "condemned": self.condemned,
            "trimmed": self.trimmed,
            "closed": self.closed,
        }


class PoolRegistry:
    """Free lists of idle warm pools, with LRU bounds and invalidation.

    A leased pool is exclusively owned by its query until released, so
    concurrent queries with the same fingerprint each get their own tree
    (the second lease finds the free list empty and cold-starts).
    """

    def __init__(self, max_idle: int = 32) -> None:
        self.max_idle = max_idle
        self.stats = PoolRegistryStats()
        # fingerprint -> stack of idle pools; OrderedDict gives LRU order
        # across fingerprints for the trim policy.
        self._free: "OrderedDict[int, list[ChildPool]]" = OrderedDict()
        self._idle = 0
        # Pools awaiting asynchronous shutdown (condemned or trimmed).
        self._doomed: list[ChildPool] = []

    # -- executor protocol -------------------------------------------------------

    def lease(
        self, node: PlanNode, costs: ProcessCosts, ctx: ExecutionContext
    ) -> ChildPool | None:
        """A warm pool matching ``node`` under ``ctx``, or None."""
        cache_config = ctx.cache.config if ctx.cache is not None else None
        key = pool_fingerprint(node, costs, cache_config)
        bucket = self._free.get(key)
        if not bucket:
            return None
        pool = bucket.pop()
        if not bucket:
            del self._free[key]
        self._idle -= 1
        pool.rebind(ctx)
        self.stats.warm_leases += 1
        return pool

    def register(self, node: PlanNode, costs: ProcessCosts, pool: ChildPool) -> None:
        """Stamp a freshly built pool so it can be released later."""
        cache_config = pool.ctx.cache.config if pool.ctx.cache is not None else None
        pool.registry_key = pool_fingerprint(node, costs, cache_config)
        pool.registry_deps = plan_dependencies(node.plan_function.body)
        self.stats.cold_starts += 1

    def release(self, pool: ChildPool) -> None:
        """Hand a pool back after its query; it becomes leasable again."""
        pool.harvest_messages()
        key = getattr(pool, "registry_key", None)
        if key is None or pool._closed:
            return
        self.stats.released += 1
        self._free.setdefault(key, []).append(pool)
        self._free.move_to_end(key)
        self._idle += 1
        while self._idle > self.max_idle:
            old_key = next(iter(self._free))
            bucket = self._free[old_key]
            self._doomed.append(bucket.pop(0))
            if not bucket:
                del self._free[old_key]
            self._idle -= 1
            self.stats.trimmed += 1

    # -- invalidation ------------------------------------------------------------

    def condemn(self, function_name: str) -> int:
        """Doom every idle pool whose plan function applies ``function_name``.

        Synchronous on purpose — it runs from ``import_wsdl`` /
        ``register_helping_function``, outside the kernel; the doomed
        pools are actually shut down by the next :meth:`drain`.
        """
        wanted = function_name.lower()
        count = 0
        for key in list(self._free):
            bucket = self._free[key]
            kept = []
            for pool in bucket:
                if wanted in getattr(pool, "registry_deps", frozenset()):
                    self._doomed.append(pool)
                    self._idle -= 1
                    self.stats.condemned += 1
                    count += 1
                else:
                    kept.append(pool)
            if kept:
                self._free[key] = kept
            else:
                del self._free[key]
        return count

    # -- shutdown ------------------------------------------------------------------

    async def drain(self) -> None:
        """Shut down doomed pools (called at query start and at close)."""
        while self._doomed:
            pool = self._doomed.pop()
            await pool.close()
            self.stats.closed += 1

    async def close_all(self) -> None:
        """Shut down every idle pool; the registry stays usable but cold."""
        for bucket in self._free.values():
            self._doomed.extend(bucket)
        self._free.clear()
        self._idle = 0
        await self.drain()

    # -- introspection ----------------------------------------------------------------

    def idle_pools(self) -> int:
        return self._idle

    def resident_processes(self) -> int:
        """Live child processes currently parked in idle pools."""
        total = 0
        stack = [pool for bucket in self._free.values() for pool in bucket]
        while stack:
            pool = stack.pop()
            for child in pool.children:
                total += 1
                if child.ctx is not None:
                    stack.extend(child.ctx.pools.values())
        return total
