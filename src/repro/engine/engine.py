"""The resident query engine: one kernel, many queries.

``WSMED.sql`` is one-shot: every call builds a fresh kernel, binds a
fresh broker, compiles the query from scratch, spawns a new tree of
child query processes, runs, and tears everything down.  That is the
paper's experimental setup, but a mediator serving traffic pays the
compile and cold-start cost on every query.  :class:`QueryEngine` makes
the expensive parts resident:

* **one kernel, one broker** — bound at construction; the simulated or
  real-time world persists across queries, so server-side state
  (endpoint semaphores, the seeded jitter stream) behaves like one
  long-running service substrate;
* **compiled-plan cache** — :class:`~repro.engine.plan_cache.PlanCache`
  keyed by ``(sql, mode, fanouts, adaptation, name)``, invalidated when
  ``import_wsdl``/``register_helping_function`` replaces a definition;
* **warm child-pool reuse** — coordinator-level operator pools are
  leased from / released to a :class:`~repro.engine.pools.PoolRegistry`
  instead of being spawned and shut down per query, so a warm query
  ships zero plan functions and spawns zero processes (and its children
  keep their call caches);
* **concurrent admission** — :meth:`sql_many` multiplexes N queries on
  the one kernel behind a bounded admission semaphore; per-query
  isolation comes from a fresh :class:`~repro.util.trace.TraceLog` and
  :class:`~repro.services.broker.CallRecorder` per query plus per-query
  cache counters, so concurrent :class:`QueryResult`s never share
  statistics.

A cold first query at concurrency 1 replays the seed timeline exactly —
same rows, same trace events, same message counts; the only difference
is that process shutdown happens at :meth:`close` instead of at the end
of the query (so ``elapsed`` excludes teardown).
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import replace as _replace

from repro.algebra.explain import render_plan
from repro.algebra.interpreter import ExecutionContext
from repro.algebra.plan import AdaptationParams
from repro.cache import CacheConfig, CacheStats, CallCache, aggregate_stats
from repro.engine.admission import AdmissionConfig, AdmissionController
from repro.engine.plan_cache import CompiledPlan, PlanCache, plan_dependencies
from repro.engine.pools import PoolRegistry
from repro.engine.shared import ShareConfig, SharedCallCache
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NULL_RECORDER, NullRecorder
from repro.parallel.batching import message_stats_from_trace
from repro.parallel.executor import ParallelExecutor
from repro.parallel.faults import fault_stats_from_trace
from repro.parallel.tree import tree_stats_from_trace
from repro.runtime.base import Kernel
from repro.runtime.simulated import SimKernel
from repro.services.broker import CallRecorder
from repro.util.errors import ReproError
from repro.wsmed.options import ONE_SHOT_ONLY, QueryOptions, resolve_options
from repro.wsmed.results import QueryResult
from repro.wsmed.system import WSMED, ExecutionMode


class EngineClosed(ReproError):
    """The engine was closed; no further queries are admitted.

    A subclass of :class:`ReproError` so existing ``except ReproError``
    handlers keep working; the HTTP front end maps it to 503 (versus 400
    for ordinary query errors)."""


@dataclass
class EngineStats:
    """A point-in-time snapshot of the engine's resident state."""

    queries: int
    active: int
    peak_concurrency: int
    max_concurrency: int
    plan_cache_hits: int
    plan_cache_misses: int
    plan_cache_evictions: int
    plan_cache_invalidations: int
    plan_cache_entries: int
    warm_leases: int
    cold_starts: int
    pools_condemned: int
    pools_trimmed: int
    pools_closed: int
    idle_pools: int
    resident_processes: int
    # Multi-query sharing (all zero unless the engine was built with an
    # enabled ShareConfig; see repro.engine.shared).
    sharing: bool = False
    shared_cache_hits: int = 0
    shared_cache_misses: int = 0
    shared_cache_waits: int = 0
    shared_cache_failures: int = 0
    shared_cache_entries: int = 0
    shared_cache_invalidations: int = 0
    coalesced_batches: int = 0
    batched_calls: int = 0
    pool_lease_waits: int = 0
    shared_pool_leases: int = 0
    # Capacity-aware admission (repro.engine.admission); policy stays
    # "static" unless the engine was built with admission="adaptive".
    admission_policy: str = "static"
    admission_limit: int = 0
    admission_shed: int = 0
    admission_queued: int = 0
    admission_raises: int = 0
    admission_backoffs: int = 0
    admission_baseline_p50: float = 0.0
    admission_inflation: float = 0.0
    admission_fanout_cap: int = 0
    # Cost-based optimizer feedback loop (repro.algebra.optimizer).
    reoptimizations: int = 0
    observed_operations: int = 0

    def as_dict(self) -> dict[str, object]:
        return dict(self.__dict__)

    def report(self) -> str:
        lines = [
            f"queries executed: {self.queries} "
            f"(active {self.active}, peak concurrency {self.peak_concurrency}"
            f"/{self.max_concurrency})",
            f"plan cache: {self.plan_cache_hits} hits, "
            f"{self.plan_cache_misses} misses, "
            f"{self.plan_cache_entries} cached "
            f"({self.plan_cache_evictions} evicted, "
            f"{self.plan_cache_invalidations} invalidated)",
            f"pools: {self.warm_leases} warm leases, "
            f"{self.cold_starts} cold starts, {self.idle_pools} idle "
            f"({self.pools_condemned} condemned, {self.pools_trimmed} trimmed, "
            f"{self.pools_closed} closed)",
            f"resident query processes: {self.resident_processes}",
        ]
        if self.admission_policy != "static":
            cap = (
                f"fanout cap {self.admission_fanout_cap}"
                if self.admission_fanout_cap
                else "no fanout cap"
            )
            lines.append(
                f"admission: {self.admission_policy} limit "
                f"{self.admission_limit}/{self.max_concurrency}, "
                f"{self.admission_shed} shed, {self.admission_queued} queued "
                f"({self.admission_raises} raises, "
                f"{self.admission_backoffs} backoffs, p50 inflation "
                f"{self.admission_inflation:.2f}x, {cap})"
            )
        if self.reoptimizations or self.observed_operations:
            lines.append(
                f"cost optimizer: {self.observed_operations} operations "
                f"observed, {self.reoptimizations} plans re-optimized"
            )
        if self.sharing:
            lines.append(self.share_report())
        return "\n".join(lines)

    def share_report(self) -> str:
        """The multi-query sharing section (CLI ``\\stats share``)."""
        if not self.sharing:
            return "sharing: off (construct the engine with share=ShareConfig(enabled=True))"
        lookups = (
            self.shared_cache_hits
            + self.shared_cache_waits
            + self.shared_cache_misses
        )
        rate = (
            (self.shared_cache_hits + self.shared_cache_waits) / lookups
            if lookups
            else 0.0
        )
        lines = [
            f"shared cache: {self.shared_cache_hits} hits, "
            f"{self.shared_cache_waits} single-flight waits, "
            f"{self.shared_cache_misses} misses ({rate:.0%} hit rate, "
            f"{self.shared_cache_entries} entries, "
            f"{self.shared_cache_failures} failed leaders, "
            f"{self.shared_cache_invalidations} invalidated)",
            f"cross-query batching: {self.coalesced_batches} coalesced "
            f"batches carrying {self.batched_calls} calls",
            f"shared pools: {self.shared_pool_leases} concurrent leases "
            f"({self.pool_lease_waits} waits for a busy tree)",
        ]
        return "\n".join(lines)


class QueryEngine:
    """Resident, multi-query execution service on top of :class:`WSMED`.

    ::

        engine = QueryEngine(wsmed)
        first = engine.sql(QUERY1_SQL, mode="parallel", fanouts=[5, 4])
        warm = engine.sql(QUERY1_SQL, mode="parallel", fanouts=[5, 4])
        batch = engine.sql_many([QUERY1_SQL] * 16, mode="parallel",
                                fanouts=[5, 4])
        engine.close()

    The kernel must be *resident* (``SimKernel(resident=True)``, the
    default, or ``AsyncioKernel(resident=True)``): a one-shot kernel
    closes every parked task when ``run`` returns, which would kill the
    warm child processes between queries.
    """

    def __init__(
        self,
        wsmed: WSMED,
        *,
        kernel: Kernel | None = None,
        max_concurrency: int = 8,
        plan_cache_size: int = 64,
        max_idle_pools: int = 32,
        fault_rate: float = 0.0,
        share: ShareConfig | None = None,
        admission: str | AdmissionConfig = "static",
        drift_threshold: float = 2.0,
    ) -> None:
        if max_concurrency < 1:
            raise ReproError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        self.wsmed = wsmed
        self.kernel = kernel if kernel is not None else SimKernel(resident=True)
        if not getattr(self.kernel, "resident", False):
            raise ReproError(
                "QueryEngine needs a resident kernel "
                "(SimKernel(resident=True) or AsyncioKernel(resident=True)); "
                "a one-shot kernel would kill warm child processes between "
                "queries"
            )
        self.broker = wsmed.registry.bind(
            self.kernel, seed=wsmed.seed, fault_rate=fault_rate
        )
        self._fault_rate = fault_rate
        self.max_concurrency = max_concurrency
        self.plan_cache = PlanCache(plan_cache_size)
        self.pool_registry = PoolRegistry(max_idle_pools)
        # Multi-query sharing tiers (repro.engine.shared): one shared
        # call cache + single-flight + batching object for the engine's
        # lifetime, and (optionally) shared pool leases.  `None` — the
        # default — keeps every query's call path seed-identical.
        self.share = share if share is not None and share.enabled else None
        self.shared = (
            SharedCallCache(self.kernel, self.share)
            if self.share is not None
            else None
        )
        if self.share is not None and self.share.pools:
            self.pool_registry.share_pools = True
        # Admission policy.  "static" (the default) is the seed path: a
        # plain semaphore of max_concurrency permits.  "adaptive" (or an
        # AdmissionConfig) swaps in the capacity-probing controller of
        # repro.engine.admission — weighted fair tenant queues, deadline
        # shedding, AFF fanout caps — with max_concurrency as its ceiling.
        if isinstance(admission, AdmissionConfig):
            admission_config: AdmissionConfig | None = admission
        elif admission == "adaptive":
            admission_config = AdmissionConfig()
        elif admission == "static":
            admission_config = None
        else:
            raise ReproError(
                f'admission must be "static", "adaptive" or an '
                f"AdmissionConfig, got {admission!r}"
            )
        self.admission = (
            AdmissionController(
                self.kernel,
                admission_config,
                ceiling=max_concurrency,
                broker=self.broker,
            )
            if admission_config is not None
            else None
        )
        self._admission = None  # static semaphore, created lazily inside the kernel
        self._admission_key: tuple[int, int] | None = None
        self._kernel_generation = getattr(self.kernel, "generation", 0)
        # One process-name counter for the engine's lifetime: the first
        # query numbers its children q1..qN exactly like the seed, and
        # every later (or concurrent) query continues the sequence, so
        # names are unique across the whole engine.
        self._name_counter = [0]
        # Warm coordinator-side caches, pooled per config: a query leases
        # one for its q0 process and returns it at the end, so repeated
        # queries keep coordinator-level memoized calls too (children
        # keep theirs via pool reuse).
        self._coordinator_caches: dict[CacheConfig, list[CallCache]] = {}
        self._queries = 0
        self._active = 0
        self._peak_active = 0
        self._closed = False
        # Live per-operation statistics for the cost-based optimizer's
        # feedback loop: operation -> [calls, rows, total seconds],
        # aggregated from every query's CallRecorder.  The same numbers
        # are published on `metrics` (MetricsRegistry) for inspection.
        self.drift_threshold = drift_threshold
        self._observed_totals: dict[str, list[float]] = {}
        self._reoptimizations = 0
        self.metrics = MetricsRegistry()
        wsmed.add_replace_listener(self._on_function_replaced)

    # -- invalidation ------------------------------------------------------------

    def _on_function_replaced(self, name: str) -> None:
        """A definition changed: stale plans, pools and shared results go.

        Fires synchronously from ``import_wsdl`` /
        ``register_helping_function`` — possibly *mid-query* under
        concurrent admission: leased pools are flagged and doomed at
        release (the running query finishes on its consistent tree), and
        memoized shared results of the replaced operation are dropped so
        no later call observes the old provider.
        """
        self.plan_cache.invalidate(name)
        self.pool_registry.condemn(name)
        if self.shared is not None:
            self.shared.invalidate_operation(name)
        # A replaced endpoint may have a different performance profile;
        # observations of the old one must not steer the optimizer.
        for operation in list(self._observed_totals):
            if operation.lower() == name:
                del self._observed_totals[operation]

    # -- query execution ------------------------------------------------------------

    #: Options the resident engine rejects: it owns its kernel and broker
    #: (``kernel``/``fault_rate``) and feeds measured statistics into the
    #: cost model itself (``observed``).
    _REJECTED_OPTIONS = frozenset(ONE_SHOT_ONLY | {"observed"})

    def sql(
        self,
        sql_text: str,
        *,
        options: QueryOptions | None = None,
        **legacy,
    ) -> QueryResult:
        """Run one query to completion on the resident kernel.

        Accepts a :class:`~repro.wsmed.options.QueryOptions` covering the
        planning/execution fields of :meth:`WSMED.sql` (``mode``,
        ``fanouts``, ``adaptation``, ``retries``, ``cache``,
        ``process_costs``, ``on_error``, ``faults``, ``name``, ``obs``,
        ``optimize``, ``limit_pushdown``) — but not ``kernel`` /
        ``fault_rate`` / ``observed``, which are engine-level here.  The
        old individual keyword arguments still work but are deprecated.
        Two admission fields ride along: ``tenant`` (fair-queue identity,
        default ``"default"``) and ``deadline_ms`` (model milliseconds;
        under adaptive admission a query whose deadline the measured
        service rate cannot meet raises
        :class:`~repro.engine.admission.AdmissionRejected` up front).
        Both are accepted and ignored under static admission.  With
        ``obs`` a :class:`repro.obs.TraceRecorder`, compile spans appear
        only on plan-cache misses (a warm hit skips compilation
        entirely).
        """
        opts = resolve_options(
            options, legacy, where="QueryEngine.sql",
            rejected=self._REJECTED_OPTIONS,
        )
        return self.kernel.run(self._admitted(sql_text, opts))

    async def sql_async(
        self,
        sql_text: str,
        *,
        options: QueryOptions | None = None,
        **legacy,
    ) -> QueryResult:
        """Coroutine form of :meth:`sql` for callers already running
        *inside* the resident kernel (e.g. the HTTP front end in
        :mod:`repro.serve`, whose accept loop owns ``kernel.run``)."""
        opts = resolve_options(
            options, legacy, where="QueryEngine.sql_async",
            rejected=self._REJECTED_OPTIONS,
        )
        return await self._admitted(sql_text, opts)

    def sql_many(
        self,
        queries,
        *,
        return_exceptions: bool = False,
        options: QueryOptions | None = None,
        **common,
    ) -> list[QueryResult]:
        """Run several queries concurrently on the one kernel.

        ``queries`` is a list of SQL strings, or ``(sql, overrides)``
        pairs where ``overrides`` is a :class:`QueryOptions` replacing
        the batch-wide ``options`` for that query, or a field-override
        dict merged over it.  All queries are admitted through the
        engine's admission policy (the static semaphore by default, the
        adaptive controller when the engine was built with
        ``admission=``) and results come back in input order.  Per-query
        ``tenant`` / ``deadline_ms`` overrides thread through to the
        admission queue.

        With ``return_exceptions=True`` a failed query — most usefully an
        :class:`AdmissionRejected` shed by the deadline policy — comes
        back as the exception object in its slot instead of destroying
        the whole batch.
        """
        base = resolve_options(
            options, common, where="QueryEngine.sql_many",
            rejected=self._REJECTED_OPTIONS,
        )
        coros = []
        for query in queries:
            if isinstance(query, str):
                coros.append(self._admitted(query, base))
            else:
                sql_text, overrides = query
                if isinstance(overrides, QueryOptions):
                    per_query = overrides
                else:
                    per_query = base.replace(**overrides)
                coros.append(self._admitted(sql_text, per_query))
        if return_exceptions:
            coros = [self._shielded(coro) for coro in coros]
        return self.kernel.run(self.kernel.gather(*coros))

    @staticmethod
    async def _shielded(coro):
        try:
            return await coro
        except Exception as exc:  # noqa: BLE001 — handed to the caller
            return exc

    def _check_generation(self) -> None:
        """Drop kernel-bound state after a ``Kernel.shutdown``.

        A shutdown kills every task parked in the kernel — warm child
        trees, broker queues — and invalidates primitives created in the
        old run.  An engine reused on the same (restarted) kernel must
        therefore cold-start: forget warm pools (their processes are
        dead), coordinator caches (their single-flight events are dead),
        and the admission semaphore (awaiting it would raise or hang).
        """
        generation = getattr(self.kernel, "generation", 0)
        if generation == self._kernel_generation:
            return
        self._kernel_generation = generation
        self._admission = None
        self._admission_key = None
        self.pool_registry.discard_all()
        self._coordinator_caches.clear()

    async def _admitted(
        self, sql_text: str, opts: QueryOptions
    ) -> QueryResult:
        if self._closed:
            raise EngineClosed("QueryEngine is closed")
        self._check_generation()
        if self.admission is not None:
            ticket = await self.admission.admit(
                opts.tenant, deadline_ms=opts.deadline_ms
            )
            self._active += 1
            self._peak_active = max(self._peak_active, self._active)
            started = self.kernel.now()
            try:
                return await self._execute(sql_text, opts)
            finally:
                self._active -= 1
                self.admission.release(ticket, self.kernel.now() - started)
        key = (self._kernel_generation, self.max_concurrency)
        if self._admission is None or self._admission_key != key:
            self._admission = self.kernel.semaphore(self.max_concurrency)
            self._admission_key = key
        await self._admission.acquire()
        self._active += 1
        self._peak_active = max(self._peak_active, self._active)
        try:
            return await self._execute(sql_text, opts)
        finally:
            self._active -= 1
            self._admission.release()

    async def _execute(
        self, sql_text: str, opts: QueryOptions
    ) -> QueryResult:
        fanouts = opts.fanouts
        adaptation = opts.adaptation
        name = opts.name
        cache = opts.cache
        obs = opts.obs
        optimize = opts.optimize
        await self.pool_registry.drain()
        mode = ExecutionMode.of(opts.mode)
        if self.admission is not None and mode is ExecutionMode.ADAPTIVE:
            # AFF fanout cap from measured broker queue contention: a
            # saturated endpoint only queues deeper under wider fanout,
            # so clamp the adaptation ceiling.  AdaptationParams is part
            # of the plan-cache fingerprint, so capped and uncapped
            # compilations never share an entry.
            cap = self.admission.fanout_cap()
            if cap is not None:
                params = adaptation if adaptation is not None else AdaptationParams()
                if params.max_fanout > cap:
                    adaptation = _replace(
                        params, max_fanout=max(cap, params.init_fanout)
                    )
        recorder = obs if obs is not None else NULL_RECORDER
        compiled = self._compiled(
            sql_text, mode, fanouts, adaptation, name, obs=recorder,
            optimize=optimize,
        )
        effective_costs = opts.process_costs or self.wsmed.process_costs
        if opts.on_error is not None:
            effective_costs = _replace(effective_costs, on_error=opts.on_error)
        if opts.faults is not None:
            effective_costs = _replace(effective_costs, faults=opts.faults)
        ctx = ExecutionContext(
            kernel=self.kernel,
            broker=self.broker,
            functions=self.wsmed.functions,
            retries=opts.retries,
            call_recorder=CallRecorder(),
            _name_counter=self._name_counter,
            shared=self.shared,
            limit_pushdown=opts.limit_pushdown,
        )
        config = cache if cache is not None else self.wsmed.cache_config
        leased_cache = self._lease_coordinator_cache(ctx, config)
        attach_placement = getattr(self.kernel, "attach_placement", None)
        if attach_placement is not None:
            # Multi-process kernel: pool children land in OS workers; the
            # PoolRegistry lease cycle then keeps warm *processes* across
            # queries (rebind reaches into the workers).
            attach_placement(
                ctx,
                functions=self.wsmed.functions,
                registry=self.wsmed.registry,
                seed=self.wsmed.seed,
                fault_rate=self._fault_rate,
            )
        executor = ParallelExecutor(
            ctx, effective_costs, pool_registry=self.pool_registry
        )
        query_span = -1
        if recorder.enabled:
            query_span = recorder.start(
                f"query:{name}",
                category="query",
                process=ctx.process_name,
                at=self.kernel.now(),
                mode=mode.value,
            )
            ctx.obs = recorder
            ctx.obs_span = query_span
            # Concurrent traced queries are last-writer-wins on the
            # kernel-level hook: task spans attach to whichever traced
            # query spawned most recently.  Trace one query at a time for
            # an unambiguous kernel timeline.
            self.kernel.obs = recorder
        started = self.kernel.now()
        try:
            rows = await executor.execute(compiled.plan)
        except BaseException:
            if recorder.enabled:
                if self.kernel.obs is recorder:
                    self.kernel.obs = None
                recorder.finish(query_span, at=self.kernel.now(), outcome="error")
            raise
        finally:
            if leased_cache is not None:
                self._coordinator_caches[config].append(leased_cache)
        elapsed = self.kernel.now() - started
        if recorder.enabled:
            if self.kernel.obs is recorder:
                self.kernel.obs = None
            recorder.finish(query_span, at=self.kernel.now(), rows=len(rows))
        self._queries += 1
        call_recorder = ctx.call_recorder
        self._absorb_observations(call_recorder.all_stats())
        if compiled.optimize == "cost":
            self._maybe_reoptimize(
                sql_text, mode, fanouts, adaptation, name, compiled
            )
        return QueryResult(
            columns=compiled.plan.schema,
            rows=rows,
            elapsed=elapsed,
            mode=mode.value,
            total_calls=call_recorder.total_calls(),
            call_stats=call_recorder.all_stats(),
            trace=ctx.trace,
            tree=tree_stats_from_trace(ctx.trace),
            plan_text=render_plan(compiled.plan),
            cache_stats=(
                aggregate_stats(
                    ctx.cache_registry,
                    trace=ctx.trace if self.shared is not None else None,
                )
                if ctx.cache_registry or self.shared is not None
                else None
            ),
            message_stats=message_stats_from_trace(ctx.trace),
            fault_stats=fault_stats_from_trace(ctx.trace),
            spans=recorder.store if recorder.enabled else None,
        )

    def _compiled(
        self,
        sql_text: str,
        mode: ExecutionMode,
        fanouts: list[int] | None,
        adaptation: AdaptationParams | None,
        name: str,
        obs: NullRecorder = NULL_RECORDER,
        optimize: str = "heuristic",
    ) -> CompiledPlan:
        if mode is ExecutionMode.ADAPTIVE:
            # Normalize before fingerprinting: None and the default
            # params compile to the same plan and must share an entry.
            adaptation = adaptation or AdaptationParams()
        key = PlanCache.fingerprint(
            sql_text, mode, fanouts, adaptation, name, optimize
        )
        compiled = self.plan_cache.get(key)
        if compiled is None:
            compiled = self._compile_entry(
                sql_text, mode, fanouts, adaptation, name, optimize, obs=obs
            )
            self.plan_cache.put(key, compiled)
        return compiled

    def _compile_entry(
        self,
        sql_text: str,
        mode: ExecutionMode,
        fanouts: list[int] | None,
        adaptation: AdaptationParams | None,
        name: str,
        optimize: str,
        obs: NullRecorder = NULL_RECORDER,
    ) -> CompiledPlan:
        if optimize == "cost":
            _, plan, report = self.wsmed._compile(
                sql_text,
                mode=mode,
                fanouts=fanouts,
                adaptation=adaptation,
                name=name,
                obs=obs,
                optimize="cost",
                observed=self.observed_stats() or None,
            )
            return CompiledPlan(
                plan=plan,
                dependencies=plan_dependencies(plan),
                optimize="cost",
                assumptions=dict(report.assumptions) if report else None,
                report=report,
            )
        plan = self.wsmed.plan(
            sql_text,
            mode=mode,
            fanouts=fanouts,
            adaptation=adaptation,
            name=name,
            obs=obs,
        )
        return CompiledPlan(plan=plan, dependencies=plan_dependencies(plan))

    # -- live-stats feedback ----------------------------------------------------

    def _absorb_observations(self, stats) -> None:
        """Fold one query's per-operation CallStats into the running
        totals (and the engine's MetricsRegistry)."""
        for operation, call_stats in stats.items():
            if not call_stats.calls:
                continue
            totals = self._observed_totals.setdefault(
                operation, [0.0, 0.0, 0.0]
            )
            totals[0] += call_stats.calls
            totals[1] += call_stats.rows
            totals[2] += call_stats.total_time.total
            labels = {"operation": operation}
            self.metrics.counter("engine.calls", labels).inc(call_stats.calls)
            self.metrics.counter("engine.rows", labels).inc(call_stats.rows)
            self.metrics.counter("engine.call_seconds", labels).inc(
                call_stats.total_time.total
            )

    def observed_stats(self) -> dict[str, tuple[float, float]]:
        """Measured per-operation ``(mean call seconds, mean fanout)``."""
        observed = {}
        for operation, (calls, rows, seconds) in self._observed_totals.items():
            if calls > 0:
                observed[operation] = (seconds / calls, rows / calls)
        return observed

    def _maybe_reoptimize(
        self,
        sql_text: str,
        mode: ExecutionMode,
        fanouts: list[int] | None,
        adaptation: AdaptationParams | None,
        name: str,
        compiled: CompiledPlan,
    ) -> None:
        """Re-optimize a cached cost-based plan when live stats drift.

        Compares the measured per-operation call cost and fanout against
        the assumptions the cached plan was costed with; past
        ``drift_threshold`` (a ratio, either direction) the entry is
        recompiled with the observed statistics so the *next* execution
        runs the improved plan.  Replacing the cache entry recompiles the
        plan with fresh node ids, so its warm pools cold-start once —
        the same trade the condemn/invalidation machinery already makes.
        """
        assumptions = compiled.assumptions
        if not assumptions:
            return
        observed = self.observed_stats()
        drifted = False
        for operation, (assumed_cost, assumed_fanout) in assumptions.items():
            measured = observed.get(operation)
            if measured is None:
                continue
            for assumed, actual in zip((assumed_cost, assumed_fanout), measured):
                if assumed <= 0.0 or actual <= 0.0:
                    continue
                ratio = actual / assumed
                if ratio > self.drift_threshold or ratio < 1.0 / self.drift_threshold:
                    drifted = True
        if not drifted:
            return
        key = PlanCache.fingerprint(
            sql_text, mode, fanouts, adaptation, name, "cost"
        )
        fresh = self._compile_entry(
            sql_text, mode, fanouts, adaptation, name, "cost"
        )
        self.plan_cache.put(key, fresh)
        self._reoptimizations += 1
        self.metrics.counter("engine.reoptimizations").inc()

    def _lease_coordinator_cache(
        self, ctx: ExecutionContext, config: CacheConfig | None
    ) -> CallCache | None:
        """Attach a warm (or fresh) coordinator cache to a query's context.

        Pooled per config so concurrent queries never share one cache
        object — sharing would let one query reset another's counters.
        """
        if config is None or not config.enabled:
            return None
        bucket = self._coordinator_caches.setdefault(config, [])
        if bucket:
            cache = bucket.pop()
            cache.stats = CacheStats()
        else:
            cache = CallCache(self.kernel, config, name=ctx.process_name)
        ctx.cache = cache
        ctx.cache_registry.append(cache)
        return cache

    # -- introspection ----------------------------------------------------------------

    def stats(self) -> EngineStats:
        plan_stats = self.plan_cache.stats
        pool_stats = self.pool_registry.stats
        shared_stats = self.shared.stats if self.shared is not None else None
        admission_stats = (
            self.admission.stats() if self.admission is not None else None
        )
        return EngineStats(
            queries=self._queries,
            active=self._active,
            peak_concurrency=self._peak_active,
            max_concurrency=self.max_concurrency,
            plan_cache_hits=plan_stats.hits,
            plan_cache_misses=plan_stats.misses,
            plan_cache_evictions=plan_stats.evictions,
            plan_cache_invalidations=plan_stats.invalidations,
            plan_cache_entries=len(self.plan_cache),
            warm_leases=pool_stats.warm_leases,
            cold_starts=pool_stats.cold_starts,
            pools_condemned=pool_stats.condemned,
            pools_trimmed=pool_stats.trimmed,
            pools_closed=pool_stats.closed,
            idle_pools=self.pool_registry.idle_pools(),
            resident_processes=self.pool_registry.resident_processes(),
            sharing=self.shared is not None,
            shared_cache_hits=shared_stats.hits if shared_stats else 0,
            shared_cache_misses=shared_stats.misses if shared_stats else 0,
            shared_cache_waits=shared_stats.waits if shared_stats else 0,
            shared_cache_failures=shared_stats.failures if shared_stats else 0,
            shared_cache_entries=len(self.shared) if self.shared else 0,
            shared_cache_invalidations=(
                shared_stats.invalidations if shared_stats else 0
            ),
            coalesced_batches=shared_stats.batches if shared_stats else 0,
            batched_calls=shared_stats.batched_calls if shared_stats else 0,
            pool_lease_waits=pool_stats.lease_waits,
            shared_pool_leases=pool_stats.shared_leases,
            reoptimizations=self._reoptimizations,
            observed_operations=len(self._observed_totals),
            **(
                {
                    "admission_policy": admission_stats.policy,
                    "admission_limit": admission_stats.limit,
                    "admission_shed": admission_stats.shed,
                    "admission_queued": admission_stats.queued,
                    "admission_raises": admission_stats.raises,
                    "admission_backoffs": admission_stats.backoffs,
                    "admission_baseline_p50": admission_stats.baseline_p50,
                    "admission_inflation": admission_stats.inflation,
                    "admission_fanout_cap": admission_stats.fanout_cap,
                }
                if admission_stats is not None
                else {}
            ),
        )

    # -- shutdown ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down every warm pool, then the resident kernel.

        Idempotent.  ``run_until_completion`` semantics mean no query is
        in flight when this can run, so "draining" is simply closing the
        idle trees; their ``process_exit`` trace events land in the
        trace of the last query each tree served, exactly where the
        seed's per-query teardown would have put them.
        """
        if self._closed:
            return
        self._closed = True
        self.kernel.run(self.pool_registry.close_all())
        self.kernel.shutdown()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
