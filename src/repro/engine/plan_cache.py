"""Compiled-plan cache for the resident query engine.

Compiling a query (parse -> calculus -> central plan -> parallelize) is
pure CPU work that depends only on ``(sql_text, mode, fanouts,
adaptation, name)`` and on the function definitions the plan applies.
The cache memoizes the compiled plan under a stable fingerprint of the
former and tracks the latter as a *dependency set*, so replacing a
definition (``import_wsdl`` re-import, ``register_helping_function``)
evicts exactly the plans that would now be stale.

Reusing the compiled plan object is also what makes warm child-pool
reuse sound: pool fingerprints (see :mod:`repro.engine.pools`) include
the plan function's serialized form with its stable ``node_id``s, and
only a cached plan reproduces those — a recompiled plan gets fresh
node ids and therefore cold-starts its pools.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.algebra.plan import (
    AdaptationParams,
    AFFApplyNode,
    ApplyNode,
    FFApplyNode,
    PlanNode,
    walk,
)
from repro.util.errors import PlanError


def plan_dependencies(plan: PlanNode) -> frozenset[str]:
    """Lower-cased names of every function the plan applies.

    Recurses into the bodies of shipped plan functions — ``walk`` alone
    stops at the FF/AFF node, but a re-imported OWF used three levels
    down still invalidates the whole plan.
    """
    names: set[str] = set()
    stack: list[PlanNode] = [plan]
    while stack:
        for node in walk(stack.pop()):
            if isinstance(node, ApplyNode):
                names.add(node.function.lower())
            if isinstance(node, (FFApplyNode, AFFApplyNode)):
                stack.append(node.plan_function.body)
    return frozenset(names)


def structural_form(serialized) -> object:
    """Canonicalize a serialized plan (sub)tree for cross-plan matching.

    Two independently compiled plans with identical structure differ only
    in their ``node_id`` strings (assigned by a global counter at
    plan-build time).  This renumbers every ``node_id`` in first-visit
    order over a key-sorted traversal, so structurally identical
    subplans — e.g. the same FF subtree inside two compilations of the
    same query — map to the same form.  Common-subplan detection for
    shared pool leases fingerprints this form instead of the raw
    serialization; correctness does not lean on node ids there because
    replaced definitions are invalidated explicitly
    (:meth:`~repro.engine.pools.PoolRegistry.condemn`).
    """
    mapping: dict[str, str] = {}

    def canon(obj):
        if isinstance(obj, dict):
            out = {}
            for key in sorted(obj):
                value = obj[key]
                if key == "node_id" and isinstance(value, str):
                    out[key] = mapping.setdefault(value, f"n{len(mapping)}")
                else:
                    out[key] = canon(value)
            return out
        if isinstance(obj, list):
            return [canon(item) for item in obj]
        return obj

    return canon(serialized)


@dataclass
class CompiledPlan:
    """A cached compilation result plus its function dependencies.

    Cost-optimized compilations also carry the optimizer's planning
    ``assumptions`` — per-function ``(call cost, fanout)`` the cost model
    used — and its :class:`~repro.algebra.optimizer.OptimizerReport`.
    The engine compares live :class:`~repro.services.broker.CallStats`
    against the assumptions and re-optimizes the entry when they drift.
    """

    plan: PlanNode
    dependencies: frozenset[str]
    optimize: str = "heuristic"
    assumptions: dict[str, tuple[float, float]] | None = None
    report: object | None = None


@dataclass
class PlanCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0  # entries dropped by the LRU bound
    invalidations: int = 0  # entries evicted because a dependency changed

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class PlanCache:
    """LRU cache of :class:`CompiledPlan` keyed by query fingerprint."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise PlanError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._entries: "OrderedDict[tuple, CompiledPlan]" = OrderedDict()

    @staticmethod
    def fingerprint(
        sql_text: str,
        mode,
        fanouts: list[int] | None,
        adaptation: AdaptationParams | None,
        name: str,
        optimize: str = "heuristic",
    ) -> tuple:
        """Stable cache key for one compilation request.

        SQL text is whitespace-normalized (query text pasted with
        different indentation is the same query); everything else is
        taken structurally.  :class:`AdaptationParams` is frozen, hence
        hashable.  ``optimize`` keys heuristic and cost-based
        compilations separately, so switching levels never serves a
        stale plan shape.
        """
        mode_value = mode.value if hasattr(mode, "value") else str(mode)
        return (
            " ".join(sql_text.split()),
            mode_value,
            tuple(fanouts) if fanouts is not None else None,
            adaptation,
            name,
            optimize,
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> CompiledPlan | None:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, key: tuple, compiled: CompiledPlan) -> None:
        self._entries[key] = compiled
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, function_name: str) -> int:
        """Evict every cached plan that applies ``function_name``.

        Called when a definition is replaced; returns the eviction count.
        """
        wanted = function_name.lower()
        stale = [
            key
            for key, entry in self._entries.items()
            if wanted in entry.dependencies
        ]
        for key in stale:
            del self._entries[key]
        self.stats.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
