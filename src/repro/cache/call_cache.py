"""Memoization of web-service calls (the ``cwo`` transport).

Dependent joins over skewed keys make WSMED repeat calls with *identical
arguments* — Query2-style workloads where many upstream rows share a join
key pay the full ``setup + rtt + queue + server`` path once per duplicate.
A :class:`CallCache` removes that redundancy at the call boundary:

* results are memoized under ``(uri, service, operation, args)`` with an
  LRU bound and an optional TTL measured on the *model clock*, so expiry
  behaves identically under the simulated and the asyncio kernels;
* concurrent identical calls within one process are *collapsed*: the
  first caller (the leader) performs the broker round trip while the
  others park on a kernel event and share its outcome — including a
  fault, which propagates to every collapsed waiter.

Caches are strictly per query process.  The paper's children are separate
processes with no shared memory, so a child cannot see the coordinator's
entries; what makes per-process caches effective is routing equal keys to
the same child (``dispatch="hash_affinity"`` in
:mod:`repro.parallel.ff_applyp`, built on :func:`stable_hash`).
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Hashable

from repro.runtime.base import Kernel
from repro.util.errors import PlanError

#: Outcomes of one :meth:`CallCache.call`, in trace/report vocabulary.
HIT = "hit"
MISS = "miss"
COLLAPSED = "collapsed"


def stable_hash(value: Any) -> int:
    """A deterministic, process-independent hash of a parameter tuple.

    Python's builtin ``hash`` is salted per interpreter run
    (``PYTHONHASHSEED``), which would make affinity routing — and with it
    every simulated timeline — irreproducible.  CRC32 over ``repr`` is
    stable across runs and platforms for the atomic values that travel in
    parameter tuples (str/int/float/bool).
    """
    return zlib.crc32(repr(value).encode("utf-8"))


@dataclass(frozen=True)
class CacheConfig:
    """Tuning of the per-process call cache.

    ``enabled``      master switch; the default ``False`` keeps the seed
                     call-for-call behaviour bit-for-bit.
    ``max_entries``  LRU bound on memoized results per process.
    ``ttl``          lifetime of an entry in *model seconds* (``None`` =
                     entries never expire).
    """

    enabled: bool = False
    max_entries: int = 1024
    ttl: float | None = None

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise PlanError(
                f"cache max_entries must be >= 1, got {self.max_entries}"
            )
        if self.ttl is not None and self.ttl <= 0:
            raise PlanError(f"cache ttl must be positive (or None), got {self.ttl}")


@dataclass
class CacheStats:
    """Counters of one cache (or an aggregate over per-process caches).

    ``hits``        lookups answered from a memoized result.
    ``misses``      lookups that went to the broker (includes uncacheable
                    keys and entries refreshed after expiry/eviction).
    ``collapsed``   lookups that joined an in-flight identical call
                    instead of issuing their own round trip.
    ``evictions``   entries dropped by the LRU bound.
    ``expirations`` entries dropped because their TTL elapsed.
    ``failures``    leader calls that raised; each also propagated the
                    fault to its collapsed waiters.

    Under a sharing :class:`~repro.engine.QueryEngine` three more
    counters attribute this query's use of the *engine-level* tier
    (:mod:`repro.engine.shared`).  They never overlap the per-process
    counters above — a ``shared_hit``/``shared_wait`` was a per-process
    *miss* that the shared tier then answered, and ``coalesced`` rides
    on real round trips — so totals are free of double counting:

    ``shared_hits``   per-process misses served from the engine's shared
                      memo (no broker round trip).
    ``shared_waits``  per-process misses that awaited another query's
                      identical in-flight call (no new round trip).
    ``coalesced``     real round trips that rode a cross-query batch.
    """

    hits: int = 0
    misses: int = 0
    collapsed: int = 0
    evictions: int = 0
    expirations: int = 0
    failures: int = 0
    shared_hits: int = 0
    shared_waits: int = 0
    coalesced: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.collapsed

    @property
    def calls_avoided(self) -> int:
        """Broker round trips that memoization, collapsing and the
        engine's shared tier removed for this query."""
        return self.hits + self.collapsed + self.shared_hits + self.shared_waits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without a broker call; 0.0 when idle."""
        if self.lookups == 0:
            return 0.0
        return self.calls_avoided / self.lookups

    def merge(self, other: "CacheStats") -> None:
        """Fold another cache's counters into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.collapsed += other.collapsed
        self.evictions += other.evictions
        self.expirations += other.expirations
        self.failures += other.failures
        self.shared_hits += other.shared_hits
        self.shared_waits += other.shared_waits
        self.coalesced += other.coalesced

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "collapsed": self.collapsed,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "failures": self.failures,
            "shared_hits": self.shared_hits,
            "shared_waits": self.shared_waits,
            "coalesced": self.coalesced,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    value: Any
    expires_at: float | None  # model time; None = never


class _InFlight:
    """Single-flight rendezvous: the leader's outcome, shared by waiters."""

    __slots__ = ("done", "value", "error")

    def __init__(self, kernel: Kernel) -> None:
        self.done = kernel.event()
        self.value: Any = None
        self.error: BaseException | None = None


class CallCache:
    """Per-process memo of web-service call results with single-flight.

    One instance belongs to exactly one query process; children created by
    ``FF_APPLYP``/``AFF_APPLYP`` get their own via
    :meth:`~repro.algebra.interpreter.ExecutionContext.for_process`.
    """

    def __init__(
        self, kernel: Kernel, config: CacheConfig, *, name: str = "q0"
    ) -> None:
        self.kernel = kernel
        self.config = config
        self.name = name
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._in_flight: dict[Hashable, _InFlight] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def clone_for(self, name: str) -> "CallCache":
        """A fresh, empty cache for a child process (no shared memory)."""
        return CallCache(self.kernel, self.config, name=name)

    # -- lookup ------------------------------------------------------------------

    async def call(
        self, key: Hashable, invoke: Callable[[], Awaitable[Any]]
    ) -> tuple[Any, str]:
        """Return ``(result, outcome)`` for the call identified by ``key``.

        ``invoke`` is a zero-argument callable producing the broker
        round-trip coroutine; it is awaited only on a miss, and only by
        the leader of a single-flight group.  ``outcome`` is one of
        :data:`HIT`, :data:`MISS`, :data:`COLLAPSED`.  A fault raised by
        the leader propagates to the leader and every collapsed waiter;
        nothing is memoized, so retries reach the broker again.
        """
        try:
            hash(key)
        except TypeError:
            # Unhashable argument (never produced by the OWF path, but the
            # cache is public API): pass through without memoizing.
            self.stats.misses += 1
            return await invoke(), MISS

        entry = self._lookup(key)
        if entry is not None:
            self.stats.hits += 1
            return entry.value, HIT

        leader_of = self._in_flight.get(key)
        if leader_of is not None:
            self.stats.collapsed += 1
            await leader_of.done.wait()
            if leader_of.error is not None:
                raise leader_of.error
            return leader_of.value, COLLAPSED

        flight = _InFlight(self.kernel)
        self._in_flight[key] = flight
        self.stats.misses += 1
        try:
            value = await invoke()
        except BaseException as error:
            self.stats.failures += 1
            flight.error = error
            raise
        else:
            flight.value = value
            self._store(key, value)
            return value, MISS
        finally:
            del self._in_flight[key]
            flight.done.set()

    # -- internals ------------------------------------------------------------------

    def _lookup(self, key: Hashable) -> _Entry | None:
        entry = self._entries.get(key)
        if entry is None:
            return None
        if entry.expires_at is not None and self.kernel.now() >= entry.expires_at:
            del self._entries[key]
            self.stats.expirations += 1
            return None
        self._entries.move_to_end(key)
        return entry

    def _store(self, key: Hashable, value: Any) -> None:
        expires_at = (
            self.kernel.now() + self.config.ttl
            if self.config.ttl is not None
            else None
        )
        self._entries[key] = _Entry(value, expires_at)
        self._entries.move_to_end(key)
        while len(self._entries) > self.config.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1


def aggregate_stats(caches: list[CallCache], trace=None) -> CacheStats:
    """Fold the per-process counters of a query's caches into one report.

    With a ``trace`` (a :class:`~repro.util.trace.TraceLog`), the
    query's use of the engine-level shared tier is folded in too: the
    shared tier is engine-scoped, so per-query attribution comes from
    the ``shared_hit``/``shared_wait`` trace events (and the
    ``coalesced`` marker on ``service_call`` events) this query's
    processes recorded — counters the per-process caches cannot see.
    """
    total = CacheStats()
    for cache in caches:
        total.merge(cache.stats)
    if trace is not None:
        for event in trace:
            if event.kind == "shared_hit":
                total.shared_hits += 1
            elif event.kind == "shared_wait":
                total.shared_waits += 1
            elif event.kind == "service_call" and event.data.get("coalesced"):
                total.coalesced += 1
    return total
