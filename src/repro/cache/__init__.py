"""Call-result caching for web-service calls.

See :mod:`repro.cache.call_cache` for the design notes; the public
surface is re-exported here.
"""

from repro.cache.call_cache import (
    COLLAPSED,
    HIT,
    MISS,
    CacheConfig,
    CacheStats,
    CallCache,
    aggregate_stats,
    stable_hash,
)

__all__ = [
    "COLLAPSED",
    "HIT",
    "MISS",
    "CacheConfig",
    "CacheStats",
    "CallCache",
    "aggregate_stats",
    "stable_hash",
]
