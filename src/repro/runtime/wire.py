"""Envelope protocol between the coordinator and its OS worker processes.

The :class:`~repro.runtime.multiprocess.ProcessKernel` places child query
processes in real OS processes.  The *query protocol* (``ShipPlanFunction``,
``ParamTuple``, ``ResultTuple``, ... — :mod:`repro.parallel.messages`) is
unchanged; this module defines the transport envelopes that carry it over
one pickle-framed duplex pipe per worker, plus the control messages of the
worker runtime itself (clock anchoring, code registration, spawn/rebind,
heartbeats, broker proxying, trace/span/cache-stat forwarding).

Every envelope is a frozen dataclass whose fields are plain picklable
values — the round-trip tests in ``tests/parallel/test_transport.py`` lock
the wire format down.

Parent -> worker:
    :class:`AnchorClock`, :class:`RegisterFunctions`,
    :class:`RegisterServices`, :class:`SpawnChild`, :class:`RebindChild`,
    :class:`ToChild`, :class:`CancelChild`, :class:`Ping`,
    :class:`BrokerResponse`, :class:`ShutdownWorker`.
Worker -> parent:
    :class:`WorkerReady`, :class:`FromChild`, :class:`ChildExited`,
    :class:`BrokerRequest`, :class:`TraceEvents`, :class:`SpanBatch`,
    :class:`CacheSnapshot`, :class:`Pong`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


# -- parent -> worker ---------------------------------------------------------


@dataclass(frozen=True)
class AnchorClock:
    """First message a worker receives: aligns its model clock.

    ``model_now`` is the parent kernel's ``now()`` at send time; the
    worker offsets its own kernel so both clock domains advance together
    (both are wall clocks scaled by the same ``time_scale``).
    """

    model_now: float
    time_scale: float


@dataclass(frozen=True)
class RegisterFunctions:
    """Code shipping, stage 1: the function registry.

    ``payload`` is a pickled list of :class:`~repro.fdb.functions.FunctionDef`;
    ``stubs`` names definitions whose implementations cannot travel (e.g.
    closures over local state) — the worker registers poisoned stand-ins
    that fail loudly if a shipped plan ever invokes them.
    """

    payload: bytes
    stubs: tuple[str, ...] = ()


@dataclass(frozen=True)
class RegisterServices:
    """Optional: ship the whole service registry for worker-local calls.

    Only sent when the kernel runs with ``local_services=True`` (CPU-bound
    workloads); the worker binds its own broker over the pickled
    :class:`~repro.services.registry.ServiceRegistry` instead of proxying
    every call to the parent.
    """

    payload: bytes
    seed: int
    fault_rate: float = 0.0


@dataclass(frozen=True)
class SpawnChild:
    """Start one child query process (``child_main``) inside the worker."""

    child_id: int
    name: str
    costs: Any  # ProcessCosts (frozen dataclass, picklable)
    cache_config: Any  # CacheConfig | None
    retries: int = 0
    retry_backoff: float = 0.5
    # Observability: when the parent query is traced, the worker records
    # child-side spans with ids starting at span_base (disjoint from the
    # parent recorder's id space) and ships them back in SpanBatch.
    tracing: bool = False
    span_base: int = 0


@dataclass(frozen=True)
class RebindChild:
    """Re-home a warm child into a new query (the remote half of
    ``ChildPool.rebind``): new retry policy, fresh cache counters, and a
    fresh span recorder when the new query is traced."""

    child_id: int
    retries: int = 0
    retry_backoff: float = 0.5
    tracing: bool = False
    span_base: int = 0


@dataclass(frozen=True)
class ToChild:
    """One query-protocol message for a child's downlink (ShipPlanFunction,
    ParamTuple, ParamBatch, ReadyToReceive, Shutdown)."""

    child_id: int
    payload: Any


@dataclass(frozen=True)
class CancelChild:
    child_id: int


@dataclass(frozen=True)
class Ping:
    seq: int


@dataclass(frozen=True)
class BrokerResponse:
    """Answer to a :class:`BrokerRequest`.

    Exactly one of ``payload`` (the decoded result value model) and
    ``error`` is set; ``error`` is ``(kind, message, retriable)`` where
    kind is ``"fault"`` (re-raised as :class:`ServiceFault`) or the
    original exception's class name (re-raised as :class:`ReproError`).
    """

    request_id: int
    payload: Any = None
    error: Optional[tuple[str, str, bool]] = None


@dataclass(frozen=True)
class ShutdownWorker:
    reason: str = "kernel shutdown"


# -- worker -> parent ---------------------------------------------------------


@dataclass(frozen=True)
class WorkerReady:
    worker_id: int
    pid: int


@dataclass(frozen=True)
class FromChild:
    """One query-protocol uplink message (ResultTuple, ResultBatch,
    EndOfCall, CallFailed, ChildError) from a child in this worker."""

    child_id: int
    payload: Any


@dataclass(frozen=True)
class ChildExited:
    """A child's ``child_main`` coroutine finished inside the worker.

    ``error`` is None for an orderly exit (Shutdown received), otherwise
    the crash description — the parent resolves the child's handle
    accordingly and the pool's death watcher takes over.
    """

    child_id: int
    error: Optional[str] = None


@dataclass(frozen=True)
class BrokerRequest:
    """A web-service call forwarded to the parent's central broker.

    Sent by the worker-side :class:`~repro.parallel.placement.BrokerProxy`
    so capacity semaphores, call statistics, caching tiers and fault
    accounting all stay in the coordinator process.  ``obs_span`` is the
    worker-side web-service span id the parent's broker sub-spans (queue
    wait, serve) should link under; -1 when tracing is off.
    """

    request_id: int
    child_id: int
    uri: str
    service: str
    operation: str
    arguments: tuple
    obs_span: int = -1


@dataclass(frozen=True)
class TraceEvents:
    """Child-side trace events, forwarded as ``(time, kind, data)`` rows."""

    child_id: int
    events: tuple


@dataclass(frozen=True)
class SpanBatch:
    """Finished child-side spans (pickled list of repro.obs Span)."""

    child_id: int
    payload: bytes


@dataclass(frozen=True)
class CacheSnapshot:
    """Counters of a child's worker-local call cache (plain numbers)."""

    child_id: int
    counters: tuple  # ((field, value), ...)


@dataclass(frozen=True)
class Pong:
    seq: int
    worker_id: int
