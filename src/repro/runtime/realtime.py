"""Real-time kernel on top of ``asyncio``.

Model seconds are scaled to wall-clock seconds by ``time_scale`` (default
1/1000: one model second runs as one millisecond) so the paper's multi-minute
workloads can execute as real concurrent programs in a test-friendly amount
of wall time.  Web-service latency is I/O waiting, so — per the reproduction
note — ``asyncio`` concurrency is the faithful Python equivalent of the
paper's parallel query processes despite the GIL.
"""

from __future__ import annotations

import asyncio
from typing import Any, Coroutine

from repro.runtime import base
from repro.util.errors import KernelError


class _AsyncChannel(base.Channel):
    def __init__(self, kernel: "AsyncioKernel", name: str, latency: float) -> None:
        self.name = name
        self.latency = latency
        self._kernel = kernel
        self._queue: asyncio.Queue[Any] = asyncio.Queue()
        self._in_flight = 0

    def send(self, message: Any) -> None:
        loop = asyncio.get_running_loop()
        self._in_flight += 1
        delay = self.latency * self._kernel.time_scale

        def deliver() -> None:
            self._in_flight -= 1
            self._queue.put_nowait(message)

        if delay > 0:
            loop.call_later(delay, deliver)
        else:
            deliver()

    async def recv(self) -> Any:
        return await self._queue.get()

    def pending(self) -> int:
        return self._queue.qsize() + self._in_flight


class _AsyncSemaphore(base.Semaphore):
    def __init__(self, value: int) -> None:
        if value < 0:
            raise KernelError(f"semaphore value must be >= 0, got {value}")
        self._value = value
        self._sem = asyncio.Semaphore(value)

    async def acquire(self) -> None:
        await self._sem.acquire()
        self._value -= 1

    def release(self) -> None:
        self._value += 1
        self._sem.release()

    def available(self) -> int:
        return self._value


class _AsyncEvent(base.Event):
    def __init__(self) -> None:
        self._event = asyncio.Event()

    async def wait(self) -> None:
        await self._event.wait()

    def set(self) -> None:
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()


class _AsyncHandle(base.ProcessHandle):
    def __init__(self, task: asyncio.Task, name: str) -> None:
        self.name = name
        self._task = task

    @property
    def done(self) -> bool:
        return self._task.done()

    async def join(self) -> Any:
        return await self._task

    def cancel(self) -> None:
        self._task.cancel()


class AsyncioKernel(base.Kernel):
    """Kernel whose clock is the wall clock, scaled by ``time_scale``."""

    def __init__(self, *, time_scale: float = 0.001, resident: bool = False) -> None:
        if time_scale <= 0:
            raise KernelError(f"time_scale must be positive, got {time_scale}")
        self.time_scale = time_scale
        self._start: float | None = None
        self._spawned = 0
        # A resident kernel keeps one event loop alive across ``run``
        # calls so tasks parked on queues (warm child processes) survive
        # between queries; ``shutdown`` cancels them and closes the loop.
        self.resident = resident
        self._loop: asyncio.AbstractEventLoop | None = None

    def now(self) -> float:
        if self._start is None:
            return 0.0
        loop = self._loop if self._loop is not None else asyncio.get_running_loop()
        return (loop.time() - self._start) / self.time_scale

    async def _scaled_sleep(self, duration: float) -> None:
        await asyncio.sleep(duration * self.time_scale)

    def sleep(self, duration: float):
        if duration < 0:
            raise KernelError(f"cannot sleep a negative duration: {duration}")
        return self._scaled_sleep(duration)

    def channel(self, name: str = "", latency: float = 0.0) -> _AsyncChannel:
        return _AsyncChannel(self, name, latency)

    def semaphore(self, value: int) -> _AsyncSemaphore:
        return _AsyncSemaphore(value)

    def event(self) -> _AsyncEvent:
        return _AsyncEvent()

    def spawn(self, coro: Coroutine, name: str = "") -> _AsyncHandle:
        self._spawned += 1
        task_name = name or f"task-{self._spawned}"
        task = asyncio.get_running_loop().create_task(coro, name=task_name)
        obs = self.obs
        if obs is not None and obs.enabled:
            # The recorder is captured in the callback (not read from
            # self.obs at completion) so spans of tasks that outlive a
            # traced run still close against the recorder that opened them.
            span = obs.start(
                f"task:{task_name}",
                category="kernel",
                process="kernel",
                at=self.now(),
            )

            def _close(done_task: asyncio.Task, *, _obs=obs, _span=span) -> None:
                failed = done_task.cancelled() or done_task.exception() is not None
                _obs.finish(
                    _span,
                    at=self.now(),
                    outcome="error" if failed else "ok",
                )

            task.add_done_callback(_close)
        return _AsyncHandle(task, task_name)

    def run(self, coro: Coroutine) -> Any:
        if not self.resident:
            async def main() -> Any:
                self._start = asyncio.get_running_loop().time()
                return await coro

            return asyncio.run(main())
        if self._loop is None:
            self._loop = asyncio.new_event_loop()
            self._start = self._loop.time()
        return self._loop.run_until_complete(coro)

    def shutdown(self) -> None:
        """Cancel tasks still parked on the resident loop and close it."""
        if self._loop is None:
            return
        loop, self._loop = self._loop, None
        pending = [task for task in asyncio.all_tasks(loop) if not task.done()]
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        loop.close()
        self.generation += 1
