"""The OS worker-pool runtime of the multi-process kernel.

Two halves live here:

* :func:`worker_entry` + :class:`_WorkerRuntime` — the code that runs
  *inside* each worker process.  A worker builds its own resident
  :class:`~repro.runtime.realtime.AsyncioKernel` (clock-anchored to the
  parent's model time), rehydrates the shipped function registry, and then
  serves ``SpawnChild`` requests by running the unchanged
  :func:`~repro.parallel.process.child_main` coroutine per child.  Web
  service calls go through a :class:`_BrokerProxy` back to the parent
  (central accounting) unless the registry itself was shipped
  (``local_services`` — CPU-bound workloads).  Trace events, finished
  spans and cache counters are streamed back as they happen.

* :class:`WorkerPool` — the parent-side manager: spawns/forks the worker
  processes, pumps each worker's pipe on a dedicated reader thread into
  the parent's event loop, heartbeats the fleet, and respawns dead
  workers (a SIGKILLed worker surfaces as pipe EOF within milliseconds;
  a *hung* worker is caught by missed heartbeats).  Message routing and
  child bookkeeping live one level up, in
  :mod:`repro.parallel.placement`.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import pickle
import threading
from typing import Any, Callable, Optional

from repro.cache import CacheStats
from repro.parallel.process import ChildEndpoints, child_main
from repro.runtime import base
from repro.runtime.realtime import AsyncioKernel
from repro.runtime.wire import (
    AnchorClock,
    BrokerRequest,
    BrokerResponse,
    CacheSnapshot,
    CancelChild,
    ChildExited,
    FromChild,
    Ping,
    Pong,
    RebindChild,
    RegisterFunctions,
    RegisterServices,
    ShutdownWorker,
    SpawnChild,
    SpanBatch,
    ToChild,
    TraceEvents,
    WorkerReady,
)
from repro.obs.spans import NULL_RECORDER, TraceRecorder
from repro.util.errors import KernelError, ReproError, ServiceFault
from repro.util.trace import TraceLog


# -- code shipping ------------------------------------------------------------


def serialize_functions(registry) -> RegisterFunctions:
    """Pickle a function registry for shipping; unpicklables become stubs.

    Catalog-view closures (and any user lambda) cannot travel; they are
    named in ``stubs`` and the worker registers poisoned stand-ins so an
    accidental invocation fails with a clear error instead of a crash.
    """
    shippable = []
    stubs = []
    for function in registry.all():
        try:
            pickle.dumps(function)
        except Exception:
            stubs.append(function.name)
            continue
        shippable.append(function)
    return RegisterFunctions(pickle.dumps(shippable), tuple(stubs))


def serialize_services(registry, *, seed: int, fault_rate: float = 0.0) -> RegisterServices:
    """Pickle a service registry so workers can bind a local broker."""
    return RegisterServices(pickle.dumps(registry), seed, fault_rate)


class _UnshippedFunction:
    """Stand-in for a function whose implementation could not be pickled."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __call__(self, *args: Any) -> Any:
        from repro.fdb.functions import FunctionError

        raise FunctionError(
            f"function {self.name!r} was not shipped to this worker process "
            "(its implementation is not picklable); it can only run in the "
            "coordinator"
        )


# -- worker-side runtime ------------------------------------------------------


class _WorkerRecorder(TraceRecorder):
    """Child-side span recorder with a disjoint id space.

    Ids start at ``span_base`` so folding the spans into the parent
    query's store can never collide with parent-allocated ids, while
    parent links carried on downlink messages (``ParamTuple.span``...)
    stay valid verbatim.
    """

    def __init__(self, span_base: int) -> None:
        super().__init__()
        self._next_id = span_base
        self._shipped: set[int] = set()

    def drain(self) -> list:
        """Finished spans not yet shipped to the parent."""
        out = [
            span
            for span in self.store
            if span.finished and span.id not in self._shipped
        ]
        for span in out:
            self._shipped.add(span.id)
        return out


class _ForwardingTrace(TraceLog):
    """Trace log whose events stream straight back to the parent.

    Nothing is kept locally — a warm worker would otherwise accumulate
    every query's events forever; the parent folds the forwarded rows
    into the owning query's real :class:`TraceLog`.
    """

    def __init__(self, runtime: "_WorkerRuntime", child_id: int) -> None:
        super().__init__()
        self._runtime = runtime
        self._child_id = child_id

    def record(self, time: float, kind: str, **data: Any) -> None:
        self._runtime.send(
            TraceEvents(self._child_id, ((time, kind, tuple(data.items())),))
        )


class _UplinkForwarder(base.Channel):
    """Child-side uplink: forwards protocol messages over the pipe.

    The parent delivers them into the pool's real inbox channel, which is
    where the (single) uplink ``message_latency`` is applied — the same
    one application a local child gets.  Piggybacks a flush of pending
    spans/cache counters so per-call telemetry arrives no later than the
    message it describes.
    """

    def __init__(self, runtime: "_WorkerRuntime", slot: "_ChildSlot") -> None:
        self._runtime = runtime
        self._slot = slot

    def send(self, message: Any) -> None:
        self._slot.flush()
        self._runtime.send(FromChild(self._slot.child_id, message))

    async def recv(self) -> Any:
        raise KernelError("worker uplink proxy is send-only")

    def pending(self) -> int:
        return 0


class _BrokerProxy:
    """Duck-typed ``ServiceBroker.call`` that defers to the parent.

    Keeps capacity semaphores, per-query statistics, caching/sharing
    tiers and fault accounting centralized in the coordinator.  The
    worker-side retry loop (``ctx.retries``) still works: faults come
    back typed, with their ``retriable`` flag intact.
    """

    def __init__(self, runtime: "_WorkerRuntime", child_id: int) -> None:
        self._runtime = runtime
        self._child_id = child_id

    async def call(
        self,
        uri: str,
        service: str,
        operation: str,
        arguments: list,
        *,
        recorder=None,
        obs=None,
        obs_span: int = -1,
    ):
        runtime = self._runtime
        request_id = next(runtime.request_ids)
        future = asyncio.get_running_loop().create_future()
        runtime.broker_futures[request_id] = future
        runtime.send(
            BrokerRequest(
                request_id,
                self._child_id,
                uri,
                service,
                operation,
                tuple(arguments),
                obs_span=obs_span if obs is not None else -1,
            )
        )
        reply: BrokerResponse = await future
        if reply.error is not None:
            kind, message, retriable = reply.error
            if kind == "fault":
                raise ServiceFault(message, retriable=retriable)
            raise ReproError(message)
        return reply.payload


class _ChildSlot:
    """Worker-side bookkeeping of one resident child query process."""

    def __init__(self, runtime: "_WorkerRuntime", spec: SpawnChild) -> None:
        from repro.algebra.interpreter import ExecutionContext
        from repro.parallel.executor import ParallelExecutor

        self.runtime = runtime
        self.child_id = spec.child_id
        self.costs = spec.costs
        self._last_cache_counters: Optional[tuple] = None
        broker = runtime.local_broker
        if broker is None:
            broker = _BrokerProxy(runtime, spec.child_id)
        self.ctx = ExecutionContext(
            kernel=runtime.kernel,
            broker=broker,
            functions=runtime.functions,
            trace=_ForwardingTrace(runtime, spec.child_id),
            retries=spec.retries,
            retry_backoff=spec.retry_backoff,
            process_name=spec.name,
            # Worker-local (display-only) name space for nested children,
            # offset far from the coordinator's counter so names stay
            # unique across the whole distributed tree.
            _name_counter=[(spec.child_id + 1) * 100_000],
        )
        if spec.tracing:
            self.ctx.obs = _WorkerRecorder(spec.span_base)
        self.ctx.install_cache(spec.cache_config)
        # Nested FF/AFF operators inside the shipped plan function run
        # worker-locally under this executor.
        ParallelExecutor(self.ctx, spec.costs)
        self.endpoints = ChildEndpoints(
            name=spec.name,
            downlink=runtime.kernel.channel(
                f"{spec.name}/downlink", latency=spec.costs.message_latency
            ),
            uplink=_UplinkForwarder(runtime, self),
        )
        self.handle: Optional[base.ProcessHandle] = None

    def flush(self) -> None:
        """Ship finished spans and changed cache counters to the parent."""
        recorder = self.ctx.obs
        if isinstance(recorder, _WorkerRecorder):
            spans = recorder.drain()
            if spans:
                self.runtime.send(
                    SpanBatch(self.child_id, pickle.dumps(spans))
                )
        cache = self.ctx.cache
        if cache is not None:
            counters = tuple(
                sorted(
                    (name, value)
                    for name, value in vars(cache.stats).items()
                    if isinstance(value, (int, float)) and not isinstance(value, bool)
                )
            )
            if counters != self._last_cache_counters:
                self._last_cache_counters = counters
                self.runtime.send(CacheSnapshot(self.child_id, counters))

    def rebind(self, spec: RebindChild) -> None:
        """Re-home this warm child into a new query (remote rebind half)."""
        self.ctx.retries = spec.retries
        self.ctx.retry_backoff = spec.retry_backoff
        self.ctx.obs = (
            _WorkerRecorder(spec.span_base) if spec.tracing else NULL_RECORDER
        )
        self.ctx.obs_span = -1
        if self.ctx.cache is not None:
            self.ctx.cache.stats = CacheStats()
            self._last_cache_counters = None
        for pool in self.ctx.pools.values():
            pool.rebind(self.ctx)

    async def close_nested(self) -> None:
        for pool in list(self.ctx.pools.values()):
            await pool.close()


class _WorkerRuntime:
    """Everything that runs inside one worker process."""

    def __init__(self, conn, worker_id: int) -> None:
        self.conn = conn
        self.worker_id = worker_id
        self.kernel: Optional[AsyncioKernel] = None
        self.functions = None  # FunctionRegistry, set by RegisterFunctions
        self.local_broker = None  # set by RegisterServices
        self.children: dict[int, _ChildSlot] = {}
        self.broker_futures: dict[int, asyncio.Future] = {}
        self.request_ids = itertools.count()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._send_failed = False

    # -- plumbing ---------------------------------------------------------

    def send(self, envelope: Any) -> None:
        if self._send_failed:
            return
        try:
            self.conn.send(envelope)
        except (OSError, ValueError):
            # Parent is gone; nothing left to report to.
            self._send_failed = True
            if self._stop is not None:
                self._stop.set()

    def run(self) -> None:
        anchor = self.conn.recv()
        if not isinstance(anchor, AnchorClock):
            raise KernelError(f"worker expected AnchorClock, got {anchor!r}")
        self.kernel = AsyncioKernel(
            time_scale=anchor.time_scale, resident=True
        )
        try:
            self.kernel.run(self._main(anchor))
        finally:
            self.kernel.shutdown()

    async def _main(self, anchor: AnchorClock) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        # Re-anchor so now() continues the parent's model clock: both
        # sides are wall clocks scaled by the same factor, so one origin
        # alignment keeps the domains coherent (modulo scheduling jitter,
        # which real distribution has anyway).
        self.kernel._start = loop.time() - anchor.model_now * anchor.time_scale
        self._stop = asyncio.Event()
        reader = threading.Thread(
            target=self._read_loop, name=f"worker{self.worker_id}-reader", daemon=True
        )
        reader.start()
        self.send(WorkerReady(self.worker_id, os.getpid()))
        await self._stop.wait()
        for future in self.broker_futures.values():
            if not future.done():
                future.set_exception(ReproError("worker shutting down"))
        self.broker_futures.clear()
        for slot in list(self.children.values()):
            if slot.handle is not None:
                slot.handle.cancel()
        for slot in list(self.children.values()):
            if slot.handle is not None:
                try:
                    await slot.handle.join()
                except BaseException:
                    pass
        self.children.clear()

    def _read_loop(self) -> None:
        while True:
            try:
                message = self.conn.recv()
            except (EOFError, OSError):
                break
            try:
                self._loop.call_soon_threadsafe(self._handle_safe, message)
            except RuntimeError:  # loop closed under us
                return
        try:
            self._loop.call_soon_threadsafe(self._stop.set)
        except RuntimeError:
            pass

    def _handle_safe(self, message: Any) -> None:
        try:
            self._handle(message)
        except Exception as error:  # noqa: BLE001 - a worker must not die silently
            self.send(
                TraceEvents(
                    -1,
                    (
                        (
                            self.kernel.now(),
                            "worker_error",
                            (("worker", self.worker_id), ("error", str(error))),
                        ),
                    ),
                )
            )

    # -- envelope handlers -------------------------------------------------

    def _handle(self, message: Any) -> None:
        if isinstance(message, ToChild):
            slot = self.children.get(message.child_id)
            if slot is not None:
                slot.endpoints.downlink.send(message.payload)
        elif isinstance(message, BrokerResponse):
            future = self.broker_futures.pop(message.request_id, None)
            if future is not None and not future.done():
                future.set_result(message)
        elif isinstance(message, SpawnChild):
            self._spawn_child(message)
        elif isinstance(message, RebindChild):
            slot = self.children.get(message.child_id)
            if slot is not None:
                slot.rebind(message)
        elif isinstance(message, CancelChild):
            slot = self.children.get(message.child_id)
            if slot is not None and slot.handle is not None:
                slot.handle.cancel()
        elif isinstance(message, Ping):
            self.send(Pong(message.seq, self.worker_id))
        elif isinstance(message, RegisterFunctions):
            self._register_functions(message)
        elif isinstance(message, RegisterServices):
            registry = pickle.loads(message.payload)
            self.local_broker = registry.bind(
                self.kernel, seed=message.seed, fault_rate=message.fault_rate
            )
        elif isinstance(message, ShutdownWorker):
            self._stop.set()

    def _register_functions(self, message: RegisterFunctions) -> None:
        from repro.fdb.functions import FunctionDef, FunctionKind, FunctionRegistry
        from repro.fdb.types import TupleType

        registry = FunctionRegistry()
        for function in pickle.loads(message.payload):
            registry.replace(function)
        for name in message.stubs:
            registry.replace(
                FunctionDef(
                    name=name,
                    kind=FunctionKind.HELPING,
                    parameters=(),
                    result=TupleType(()),
                    implementation=_UnshippedFunction(name),
                    documentation="unshippable implementation (worker stub)",
                )
            )
        self.functions = registry
        # Children spawned before a re-registration keep their old
        # registry snapshot — same semantics as a pool condemned and
        # respawned by the engine on function replacement.

    def _spawn_child(self, spec: SpawnChild) -> None:
        try:
            slot = _ChildSlot(self, spec)
        except Exception as error:  # noqa: BLE001 - report, don't die
            self.send(
                ChildExited(spec.child_id, f"spawn failed: {error}")
            )
            return
        self.children[spec.child_id] = slot
        slot.handle = self.kernel.spawn(
            self._run_child(slot), name=spec.name
        )

    async def _run_child(self, slot: _ChildSlot) -> None:
        error: Optional[str] = None
        try:
            await child_main(
                slot.ctx, slot.costs, slot.endpoints, on_exit=slot.close_nested
            )
        except asyncio.CancelledError:
            error = "cancelled"
        except BaseException as exc:  # noqa: BLE001 - ship the crash upward
            text = str(exc)
            error = f"{type(exc).__name__}: {text}" if text else type(exc).__name__
        finally:
            self.children.pop(slot.child_id, None)
            slot.flush()
            self.send(ChildExited(slot.child_id, error))


def worker_entry(conn, worker_id: int) -> None:
    """OS-process entry point (``multiprocessing.Process`` target)."""
    try:
        _WorkerRuntime(conn, worker_id).run()
    finally:
        try:
            conn.close()
        except OSError:
            pass


# -- parent-side pool ---------------------------------------------------------


class WorkerHandle:
    """Parent-side view of one worker process."""

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.alive = True
        self.ready = False
        self.last_pong = 0.0
        self.missed_pings = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid


class WorkerPool:
    """Spawns, feeds, heartbeats and respawns the OS worker fleet.

    The pool is transport only: every non-heartbeat envelope a worker
    sends is handed to ``on_message``; a death (pipe EOF, dead process,
    missed heartbeats) is announced via ``on_worker_death`` *before*
    the slot is respawned, so the placement layer can fail the dead
    worker's children over while replacement capacity comes up.
    """

    def __init__(
        self,
        size: int,
        *,
        time_scale: float,
        clock: Callable[[], float],
        start_method: Optional[str] = None,
        heartbeat_interval: float = 2.0,
        heartbeat_misses: int = 3,
    ) -> None:
        if size < 1:
            raise KernelError(f"worker pool size must be >= 1, got {size}")
        self.size = size
        self.time_scale = time_scale
        self._clock = clock
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        elif start_method not in methods:
            raise KernelError(
                f"start method {start_method!r} unavailable; have {methods}"
            )
        self._mp = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_misses = heartbeat_misses
        self.workers: list[WorkerHandle] = []
        self.on_message: Optional[Callable[[WorkerHandle, Any], None]] = None
        self.on_worker_death: Optional[Callable[[WorkerHandle], None]] = None
        self._registrations: list[Any] = []  # replayed to every (re)spawned worker
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._ping_seq = itertools.count(1)
        self._started = False
        self._closed = False
        self.respawned_workers = 0

    # -- configuration -----------------------------------------------------

    def register(self, envelope: Any) -> None:
        """Ship a registration (functions/services) to all workers, now and
        on every future respawn."""
        self._registrations = [
            e for e in self._registrations if type(e) is not type(envelope)
        ]
        self._registrations.append(envelope)
        if self._started:
            for worker in self.workers:
                if worker.alive:
                    self._send(worker, envelope)

    # -- lifecycle ---------------------------------------------------------

    def ensure_started(self) -> None:
        """Start the fleet; must run inside the kernel's event loop."""
        if self._started or self._closed:
            return
        self._started = True
        self._loop = asyncio.get_running_loop()
        for index in range(self.size):
            self.workers.append(self._launch(index))
        self._heartbeat_task = self._loop.create_task(
            self._heartbeat_loop(), name="worker-heartbeat"
        )

    def _launch(self, index: int) -> WorkerHandle:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=worker_entry,
            args=(child_conn, index),
            name=f"repro-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = WorkerHandle(index, process, parent_conn)
        worker.last_pong = self._monotonic()
        threading.Thread(
            target=self._read_loop,
            args=(worker,),
            name=f"worker{index}-pipe",
            daemon=True,
        ).start()
        self._send(worker, AnchorClock(self._clock(), self.time_scale))
        for envelope in self._registrations:
            self._send(worker, envelope)
        return worker

    @staticmethod
    def _monotonic() -> float:
        import time

        return time.monotonic()

    def _read_loop(self, worker: WorkerHandle) -> None:
        conn = worker.conn
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            try:
                self._loop.call_soon_threadsafe(self._dispatch, worker, message)
            except RuntimeError:
                return
        try:
            self._loop.call_soon_threadsafe(self._worker_died, worker)
        except RuntimeError:
            pass

    def _dispatch(self, worker: WorkerHandle, message: Any) -> None:
        if isinstance(message, Pong):
            worker.last_pong = self._monotonic()
            worker.missed_pings = 0
            return
        if isinstance(message, WorkerReady):
            worker.ready = True
            worker.last_pong = self._monotonic()
            return
        if self.on_message is not None:
            self.on_message(worker, message)

    def _worker_died(self, worker: WorkerHandle) -> None:
        if self._closed or not worker.alive:
            return
        worker.alive = False
        try:
            worker.conn.close()
        except OSError:
            pass
        if self.on_worker_death is not None:
            self.on_worker_death(worker)
        # Respawn the slot so the fleet recovers its capacity; children
        # that died with the worker have already been failed over by the
        # placement layer (on_worker_death above).
        replacement = self._launch(worker.index)
        self.workers[self.workers.index(worker)] = replacement
        self.respawned_workers += 1

    async def _heartbeat_loop(self) -> None:
        while not self._closed:
            await asyncio.sleep(self.heartbeat_interval)
            deadline = self.heartbeat_interval * self.heartbeat_misses
            for worker in list(self.workers):
                if not worker.alive:
                    continue
                if not worker.process.is_alive():
                    self._worker_died(worker)
                    continue
                if self._monotonic() - worker.last_pong > deadline:
                    # Hung worker: kill it; the pipe EOF then drives the
                    # normal death path (fail-over + respawn).
                    worker.process.terminate()
                    continue
                self._send(worker, Ping(next(self._ping_seq)))

    # -- sending -----------------------------------------------------------

    def _send(self, worker: WorkerHandle, envelope: Any) -> bool:
        if not worker.alive:
            return False
        try:
            worker.conn.send(envelope)
            return True
        except (OSError, ValueError):
            self._worker_died(worker)
            return False

    def send(self, worker: WorkerHandle, envelope: Any) -> bool:
        return self._send(worker, envelope)

    def alive_workers(self) -> list[WorkerHandle]:
        return [worker for worker in self.workers if worker.alive]

    def pids(self) -> list[Optional[int]]:
        return [worker.pid for worker in self.workers if worker.alive]

    # -- shutdown ----------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every worker process.  Idempotent; safe outside the loop."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            if worker.alive:
                try:
                    worker.conn.send(ShutdownWorker())
                except (OSError, ValueError):
                    pass
        for worker in self.workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            worker.alive = False
            try:
                worker.conn.close()
            except OSError:
                pass
        self.workers.clear()
