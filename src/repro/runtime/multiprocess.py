"""``ProcessKernel`` — the multi-process kernel.

An :class:`~repro.runtime.realtime.AsyncioKernel` (always resident) that
additionally owns a fleet of OS worker processes
(:class:`~repro.runtime.workers.WorkerPool`) and a placement layer
(:class:`~repro.parallel.placement.Placement`).  Execution contexts
attached to it via :meth:`ProcessKernel.attach_placement` spawn the child
query processes of ``FF_APPLYP``/``AFF_APPLYP`` pools *inside the
workers* instead of as coordinator-loop coroutines — real CPU
parallelism for compute-heavy plan functions, while the coordinator keeps
the protocol, the broker (unless ``local_services``), the caches'
accounting and the observability pipeline.

Everything else — the SQL frontend, the resident
:class:`~repro.engine.QueryEngine`, warm pool reuse across queries, the
fault-tolerance policies — runs unchanged on top.  A kernel that never
has a placement attached behaves exactly like a resident
``AsyncioKernel``.
"""

from __future__ import annotations

from typing import Optional

from repro.parallel.placement import Placement
from repro.runtime.realtime import AsyncioKernel
from repro.runtime.workers import WorkerPool


class ProcessKernel(AsyncioKernel):
    """Kernel that shards query-process trees across OS processes.

    ``workers``            number of OS worker processes.
    ``time_scale``         model-to-wall clock factor (as AsyncioKernel).
    ``start_method``       multiprocessing start method; default ``fork``
                           where available, else ``spawn``.
    ``local_services``     ship the service registry into the workers so
                           children call services *in-process* instead of
                           proxying through the coordinator's broker.
                           Decentralizes call accounting (each worker
                           meters its own calls) but lets CPU-heavy
                           service work run truly in parallel.
    ``heartbeat_interval`` wall seconds between worker pings; a worker
                           missing ``3`` consecutive pings is declared
                           dead, its children failed over, and its slot
                           respawned.
    """

    def __init__(
        self,
        *,
        workers: int = 4,
        time_scale: float = 0.001,
        start_method: Optional[str] = None,
        local_services: bool = False,
        heartbeat_interval: float = 2.0,
    ) -> None:
        super().__init__(time_scale=time_scale, resident=True)
        self.local_services = local_services
        self.worker_pool = WorkerPool(
            workers,
            time_scale=time_scale,
            clock=self.now,
            start_method=start_method,
            heartbeat_interval=heartbeat_interval,
        )
        self.placement = Placement(self, self.worker_pool)

    def attach_placement(
        self,
        ctx,
        *,
        functions=None,
        registry=None,
        seed: int = 0,
        fault_rate: float = 0.0,
    ) -> None:
        """Duck-typed hook the SQL frontends call before executing a query.

        Points ``ctx.placement`` at this kernel's placement layer and
        ships the function registry (and, under ``local_services``, the
        service registry) to the workers.  Kernels without this method
        simply keep spawning locally.
        """
        services = registry if self.local_services else None
        self.placement.attach(
            ctx,
            functions=functions,
            services=services,
            seed=seed,
            fault_rate=fault_rate,
        )

    def shutdown(self) -> None:
        """Stop workers first (their pipes feed the loop), then the loop."""
        self.placement.shutdown()
        self.worker_pool.shutdown()
        super().shutdown()
