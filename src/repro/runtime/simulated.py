"""Discrete-event virtual-time kernel.

Processes are plain ``async def`` coroutines.  Awaiting one of the kernel's
primitives yields a *request* object through the coroutine chain to the
scheduler, which resumes the process when the request is satisfied — at a
later point of the virtual clock, never of the wall clock.  The scheduler is
fully deterministic: ties in time are broken by a monotone sequence number,
so every run of an experiment with the same seed produces identical traces.
"""

from __future__ import annotations

import heapq
from asyncio import CancelledError
from collections import deque
from typing import Any, Callable, Coroutine, Generator

from repro.runtime import base
from repro.util.errors import DeadlockError, KernelError

_NOTHING = object()


class _Request:
    """Base class for scheduler requests yielded by awaitables."""

    __slots__ = ()


class _SleepRequest(_Request):
    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        self.duration = duration


class _RecvRequest(_Request):
    __slots__ = ("channel",)

    def __init__(self, channel: "SimChannel") -> None:
        self.channel = channel


class _AcquireRequest(_Request):
    __slots__ = ("semaphore",)

    def __init__(self, semaphore: "SimSemaphore") -> None:
        self.semaphore = semaphore


class _WaitRequest(_Request):
    __slots__ = ("event",)

    def __init__(self, event: "SimEvent") -> None:
        self.event = event


class _JoinRequest(_Request):
    __slots__ = ("task",)

    def __init__(self, task: "SimTask") -> None:
        self.task = task


class _Suspend:
    """Awaitable wrapper: yields the request, returns the resume value."""

    __slots__ = ("request",)

    def __init__(self, request: _Request) -> None:
        self.request = request

    def __await__(self) -> Generator[_Request, Any, Any]:
        value = yield self.request
        return value


class SimTask(base.ProcessHandle):
    """A coroutine scheduled by :class:`SimKernel`."""

    def __init__(self, kernel: "SimKernel", coro: Coroutine, name: str) -> None:
        self.name = name
        self._kernel = kernel
        self._coro = coro
        self._done = False
        self._cancelled = False
        self._cancel_requested = False
        self._result: Any = None
        self._error: BaseException | None = None
        self._joiners: list[SimTask] = []
        # Incremented whenever the task is rescheduled so that stale wakeup
        # callbacks (e.g. a sleep that was cancelled) become no-ops.
        self._wake_token = 0
        # Scheduling span (repro.obs): the recorder reference is stored on
        # the task so that finishing the span stays safe after the kernel's
        # `obs` has been reset (resident kernels park tasks across runs).
        self._obs = None
        self._span = -1

    @property
    def done(self) -> bool:
        return self._done

    @property
    def error(self) -> BaseException | None:
        return self._error

    def result(self) -> Any:
        """Result of a finished task; raises its error if it failed."""
        if not self._done:
            raise KernelError(f"task {self.name!r} is not finished")
        if self._error is not None:
            raise self._error
        return self._result

    async def join(self) -> Any:
        if not self._done:
            await _Suspend(_JoinRequest(self))
        return self.result()

    def cancel(self) -> None:
        if self._done or self._cancel_requested:
            return
        self._cancel_requested = True
        # Invalidate whatever wakeup the task was waiting for and deliver
        # CancelledError at the current virtual time instead.
        self._wake_token += 1
        self._kernel._schedule(
            self._kernel.now(),
            lambda: self._kernel._step(self, exc=CancelledError()),
        )

    # -- internal -----------------------------------------------------------

    def _finish(self, result: Any, error: BaseException | None) -> None:
        self._done = True
        self._result = result
        self._error = error
        self._cancelled = isinstance(error, CancelledError)
        kernel = self._kernel
        if self._span != -1:
            self._obs.finish(
                self._span,
                at=kernel.now(),
                outcome="error" if error is not None else "ok",
            )
            self._span = -1
        joiners, self._joiners = self._joiners, []
        for joiner in joiners:
            kernel._schedule(kernel.now(), lambda j=joiner: kernel._step(j))


class SimChannel(base.Channel):
    """Channel with optional delivery latency under virtual time."""

    def __init__(self, kernel: "SimKernel", name: str, latency: float) -> None:
        self.name = name
        self.latency = latency
        self._kernel = kernel
        # Heap of (deliver_time, seq, message); seq keeps FIFO order among
        # messages sent at the same instant.
        self._queue: list[tuple[float, int, Any]] = []
        self._waiters: deque[SimTask] = deque()
        self._seq = 0

    def send(self, message: Any) -> None:
        deliver_at = self._kernel.now() + self.latency
        heapq.heappush(self._queue, (deliver_at, self._seq, message))
        self._seq += 1
        if self._waiters:
            self._kernel._schedule(deliver_at, self._drain)

    async def recv(self) -> Any:
        return await _Suspend(_RecvRequest(self))

    def pending(self) -> int:
        return len(self._queue)

    # -- internal -----------------------------------------------------------

    def _pop_ready(self, now: float) -> Any:
        """Pop the earliest message whose delivery time has arrived."""
        if self._queue and self._queue[0][0] <= now:
            return heapq.heappop(self._queue)[2]
        return _NOTHING

    def _drain(self) -> None:
        """Hand ready messages to parked receivers, in FIFO order."""
        kernel = self._kernel
        now = kernel.now()
        while self._waiters and self._queue and self._queue[0][0] <= now:
            waiter = self._waiters.popleft()
            if waiter.done or waiter._cancel_requested:
                continue
            message = heapq.heappop(self._queue)[2]
            kernel._step(waiter, value=message)
        if self._waiters and self._queue:
            kernel._schedule(self._queue[0][0], self._drain)


class SimSemaphore(base.Semaphore):
    """FIFO counted semaphore under virtual time."""

    def __init__(self, kernel: "SimKernel", value: int) -> None:
        if value < 0:
            raise KernelError(f"semaphore value must be >= 0, got {value}")
        self._kernel = kernel
        self._value = value
        self._waiters: deque[SimTask] = deque()

    async def acquire(self) -> None:
        await _Suspend(_AcquireRequest(self))

    def release(self) -> None:
        self._value += 1
        self._wake_next()

    def available(self) -> int:
        return self._value

    # -- internal -----------------------------------------------------------

    def _try_take(self) -> bool:
        while self._waiters and (
            self._waiters[0].done or self._waiters[0]._cancel_requested
        ):
            self._waiters.popleft()
        if self._value > 0 and not self._waiters:
            self._value -= 1
            return True
        return False

    def _wake_next(self) -> None:
        kernel = self._kernel
        while self._value > 0 and self._waiters:
            waiter = self._waiters.popleft()
            if waiter.done or waiter._cancel_requested:
                continue
            self._value -= 1
            kernel._schedule(kernel.now(), lambda w=waiter: kernel._step(w))
            break


class SimEvent(base.Event):
    def __init__(self, kernel: "SimKernel") -> None:
        self._kernel = kernel
        self._set = False
        self._waiters: list[SimTask] = []

    async def wait(self) -> None:
        if not self._set:
            await _Suspend(_WaitRequest(self))

    def set(self) -> None:
        if self._set:
            return
        self._set = True
        kernel = self._kernel
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done:
                kernel._schedule(kernel.now(), lambda w=waiter: kernel._step(w))

    def is_set(self) -> bool:
        return self._set


class SimKernel(base.Kernel):
    """Deterministic discrete-event scheduler.

    ``run`` drives the main coroutine to completion, advancing a virtual
    clock.  If the event heap empties while tasks are still parked the
    kernel raises :class:`DeadlockError` naming them, so protocol bugs fail
    fast instead of hanging.
    """

    def __init__(self, *, max_events: int = 50_000_000, resident: bool = False) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._max_events = max_events
        self._tasks: list[SimTask] = []
        self._parked: dict[int, str] = {}  # id(task) -> what it waits on
        # A resident kernel leaves parked tasks (warm child processes)
        # alive when ``run`` returns, so later ``run`` calls can resume
        # them; ``shutdown`` reaps whatever is still parked.
        self.resident = resident

    # -- Kernel API ----------------------------------------------------------

    def now(self) -> float:
        return self._now

    def sleep(self, duration: float):
        if duration < 0:
            raise KernelError(f"cannot sleep a negative duration: {duration}")
        return _Suspend(_SleepRequest(duration))

    def channel(self, name: str = "", latency: float = 0.0) -> SimChannel:
        return SimChannel(self, name, latency)

    def semaphore(self, value: int) -> SimSemaphore:
        return SimSemaphore(self, value)

    def event(self) -> SimEvent:
        return SimEvent(self)

    def spawn(self, coro: Coroutine, name: str = "") -> SimTask:
        task = SimTask(self, coro, name or f"task-{len(self._tasks)}")
        obs = self.obs
        if obs is not None and obs.enabled:
            task._obs = obs
            task._span = obs.start(
                f"task:{task.name}",
                category="kernel",
                process="kernel",
                at=self._now,
            )
        self._tasks.append(task)
        self._schedule(self._now, lambda: self._step(task))
        return task

    def run(self, coro: Coroutine) -> Any:
        main = self.spawn(coro, name="main")
        events = 0
        while self._heap and not main.done:
            events += 1
            if events > self._max_events:
                raise KernelError(
                    f"simulation exceeded {self._max_events} events; "
                    "likely a livelock in operator code"
                )
            time, _, action = heapq.heappop(self._heap)
            if time < self._now:
                raise KernelError("scheduler time went backwards")
            self._now = time
            action()
        if not main.done:
            waiting = ", ".join(
                f"{task.name}<-{self._parked.get(id(task), '?')}"
                for task in self._tasks
                if not task.done
            )
            self._close_remaining()
            raise DeadlockError(f"no runnable tasks; parked: {waiting}")
        if self.resident:
            self._prune_finished()
        else:
            self._close_remaining()
        return main.result()

    def shutdown(self) -> None:
        """Reap tasks a resident kernel kept parked between runs."""
        self._close_remaining()
        self._tasks.clear()
        self._parked.clear()
        self._heap.clear()
        self.generation += 1

    def _prune_finished(self) -> None:
        """Forget finished tasks so a resident kernel's lists stay bounded."""
        finished = {id(task) for task in self._tasks if task.done}
        self._tasks = [task for task in self._tasks if not task.done]
        for key in finished:
            self._parked.pop(key, None)

    def _close_remaining(self) -> None:
        """Close coroutines of tasks abandoned when the main task ended."""
        for task in self._tasks:
            if not task.done:
                try:
                    task._coro.close()
                except RuntimeError:
                    # A coroutine that awaits kernel primitives inside a
                    # finally block cannot close cleanly; swallowing the
                    # error here keeps the real failure (for example a
                    # DeadlockError naming the parked tasks) visible.
                    pass
                task._finish(None, CancelledError("kernel shut down"))

    # -- internal -----------------------------------------------------------

    def _schedule(self, time: float, action: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (time, self._seq, action))
        self._seq += 1

    def _step(
        self, task: SimTask, value: Any = None, exc: BaseException | None = None
    ) -> None:
        """Advance ``task`` until it parks, sleeps or finishes."""
        if task.done:
            return
        self._parked.pop(id(task), None)
        while True:
            try:
                if exc is not None:
                    pending_exc, exc = exc, None
                    request = task._coro.throw(pending_exc)
                else:
                    request = task._coro.send(value)
            except StopIteration as stop:
                task._finish(stop.value, None)
                return
            except CancelledError as cancelled:
                task._finish(None, cancelled)
                return
            except BaseException as error:  # surface failures via join()
                task._finish(None, error)
                return
            value = None
            if isinstance(request, _SleepRequest):
                token = task._wake_token
                self._schedule(
                    self._now + request.duration,
                    lambda: self._resume_if_current(task, token),
                )
                self._parked[id(task)] = "sleep"
                return
            if isinstance(request, _RecvRequest):
                message = request.channel._pop_ready(self._now)
                if message is not _NOTHING:
                    value = message
                    continue
                request.channel._waiters.append(task)
                if request.channel._queue:
                    self._schedule(
                        request.channel._queue[0][0], request.channel._drain
                    )
                self._parked[id(task)] = f"recv({request.channel.name})"
                return
            if isinstance(request, _AcquireRequest):
                if request.semaphore._try_take():
                    continue
                request.semaphore._waiters.append(task)
                self._parked[id(task)] = "semaphore"
                return
            if isinstance(request, _WaitRequest):
                if request.event.is_set():
                    continue
                request.event._waiters.append(task)
                self._parked[id(task)] = "event"
                return
            if isinstance(request, _JoinRequest):
                if request.task.done:
                    continue
                request.task._joiners.append(task)
                self._parked[id(task)] = f"join({request.task.name})"
                return
            raise KernelError(
                f"task {task.name!r} awaited a foreign awaitable: {request!r}; "
                "only kernel primitives may be awaited under SimKernel"
            )

    def _resume_if_current(self, task: SimTask, token: int) -> None:
        if not task.done and task._wake_token == token:
            self._step(task)
