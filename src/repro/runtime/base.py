"""Kernel abstraction shared by the simulated and real-time runtimes.

A *kernel* provides the concurrency primitives the query-process engine
needs: a clock, sleeping, message channels with delivery latency, counted
semaphores (used by the service broker to model server capacity), events,
and process spawning.  Operator code (``FF_APPLYP``, ``AFF_APPLYP``, the
plan interpreter) only ever talks to this interface, which is what lets a
single implementation run both under virtual time and under ``asyncio``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Awaitable, Coroutine


class Channel(ABC):
    """An unbounded, ordered message channel with per-message latency.

    ``send`` never blocks (the paper's processes stream results back
    asynchronously); ``recv`` suspends until a message has *arrived*, i.e.
    its delivery latency has elapsed.
    """

    @abstractmethod
    def send(self, message: Any) -> None:
        """Enqueue ``message`` for delivery after the channel's latency."""

    @abstractmethod
    async def recv(self) -> Any:
        """Suspend until the next message is deliverable and return it."""

    @abstractmethod
    def pending(self) -> int:
        """Number of messages sent but not yet received (any delivery state)."""


class Semaphore(ABC):
    """Counted semaphore with FIFO wakeup order."""

    @abstractmethod
    async def acquire(self) -> None: ...

    @abstractmethod
    def release(self) -> None: ...

    @abstractmethod
    def available(self) -> int:
        """Number of free slots right now."""


class Event(ABC):
    """One-shot level-triggered event."""

    @abstractmethod
    async def wait(self) -> None: ...

    @abstractmethod
    def set(self) -> None: ...

    @abstractmethod
    def is_set(self) -> bool: ...


class ProcessHandle(ABC):
    """Handle to a spawned process (a kernel-scheduled coroutine)."""

    name: str

    @property
    @abstractmethod
    def done(self) -> bool: ...

    @abstractmethod
    async def join(self) -> Any:
        """Wait for completion and return the process result.

        Re-raises the process's exception if it failed, including
        cancellation.
        """

    @abstractmethod
    def cancel(self) -> None:
        """Request cancellation; the process sees ``asyncio.CancelledError``."""


class Kernel(ABC):
    """Factory and scheduler for the primitives above."""

    # Span recorder (repro.obs) for kernel-level scheduling spans: each
    # spawned task gets a `task` span covering its lifetime.  None (the
    # default) disables the instrumentation entirely; WSMED.sql sets it for
    # the duration of a traced run.
    obs = None

    # Bumped by every ``shutdown`` that actually tears state down.  Kernel
    # primitives (semaphores, events, channels) die with the world they
    # were created in; holders that cache one across a shutdown — e.g. the
    # engine's admission semaphore, the broker's endpoint slots, warm
    # child pools — key their cache on this counter so a reused kernel
    # never awaits a primitive bound to the dead run.
    generation: int = 0

    @abstractmethod
    def now(self) -> float:
        """Current time in model seconds."""

    @abstractmethod
    def sleep(self, duration: float) -> Awaitable[None]:
        """Suspend the calling process for ``duration`` model seconds."""

    @abstractmethod
    def channel(self, name: str = "", latency: float = 0.0) -> Channel: ...

    @abstractmethod
    def semaphore(self, value: int) -> Semaphore: ...

    @abstractmethod
    def event(self) -> Event: ...

    @abstractmethod
    def spawn(
        self, coro: Coroutine[Any, Any, Any], name: str = ""
    ) -> ProcessHandle:
        """Start ``coro`` as a concurrent process and return its handle."""

    @abstractmethod
    def run(self, coro: Coroutine[Any, Any, Any]) -> Any:
        """Drive ``coro`` (and everything it spawns) to completion.

        Returns the coroutine's result; this is the single entry point from
        synchronous code.
        """

    def shutdown(self) -> None:
        """Release resources held by a *resident* kernel.

        One-shot kernels tear everything down at the end of each ``run``
        call, so the default is a no-op.  Resident kernels (constructed
        with ``resident=True``) keep parked tasks — e.g. warm child
        processes — alive between ``run`` calls and only reap them here.
        Idempotent: calling it twice (or on a kernel that never ran) is
        safe, which is what lets the context-manager protocol below and
        explicit ``close()`` paths coexist.
        """

    def __enter__(self) -> "Kernel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    async def gather(self, *coros: Coroutine[Any, Any, Any]) -> list[Any]:
        """Run coroutines concurrently and return their results in order."""
        handles = [self.spawn(coro, name=f"gather-{index}") for index, coro in enumerate(coros)]
        return [await handle.join() for handle in handles]

    async def wait_for(self, coro: Coroutine[Any, Any, Any], timeout: float) -> Any:
        """Run ``coro`` with a deadline of ``timeout`` model seconds.

        Raises :class:`TimeoutError` (the builtin) and cancels the
        coroutine if the deadline passes first.  Built on the kernel
        primitives, so it works identically under both kernels.
        """
        done = self.event()
        task = self.spawn(coro, name="wait_for-body")

        async def watch() -> None:
            try:
                await task.join()
            except BaseException:
                pass
            done.set()

        async def timer() -> None:
            await self.sleep(timeout)
            done.set()

        watcher = self.spawn(watch(), name="wait_for-watch")
        sleeper = self.spawn(timer(), name="wait_for-timer")
        try:
            await done.wait()
        finally:
            # Whichever helper lost the race must not outlive the call:
            # a leaked sleeper would stay pinned for the full timeout on
            # every timed call that finished early.
            if not sleeper.done:
                sleeper.cancel()
            if not watcher.done:
                watcher.cancel()
        if task.done:
            return await task.join()
        task.cancel()
        raise TimeoutError(f"operation exceeded {timeout} model seconds")
