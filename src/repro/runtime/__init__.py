"""Execution runtimes.

The query-process engine is written once as coroutines against the
:class:`~repro.runtime.base.Kernel` abstraction and can then run under:

* :class:`~repro.runtime.simulated.SimKernel` — a deterministic
  discrete-event scheduler with *virtual* time.  All benchmarks use it: a
  "2400 second" query executes in milliseconds of wall time while the
  virtual clock reproduces the paper's timing behaviour.
* :class:`~repro.runtime.realtime.AsyncioKernel` — real ``asyncio`` with
  (scaled) wall-clock sleeps, demonstrating genuine concurrent execution.
* :class:`~repro.runtime.multiprocess.ProcessKernel` — the asyncio kernel
  plus a fleet of OS worker processes; child query processes are placed
  in the workers (real CPU parallelism), coordinated over pickle-framed
  pipes (:mod:`repro.runtime.wire`, :mod:`repro.runtime.workers`).
"""

from repro.runtime.base import Channel, Event, Kernel, ProcessHandle, Semaphore
from repro.runtime.realtime import AsyncioKernel
from repro.runtime.simulated import SimKernel


def __getattr__(name: str):
    # Imported lazily: ProcessKernel pulls in the placement layer, which
    # sits above the operator modules that themselves import this package.
    if name == "ProcessKernel":
        from repro.runtime.multiprocess import ProcessKernel

        return ProcessKernel
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Channel",
    "Event",
    "Kernel",
    "ProcessHandle",
    "Semaphore",
    "AsyncioKernel",
    "ProcessKernel",
    "SimKernel",
]
