"""Execution runtimes.

The query-process engine is written once as coroutines against the
:class:`~repro.runtime.base.Kernel` abstraction and can then run under:

* :class:`~repro.runtime.simulated.SimKernel` — a deterministic
  discrete-event scheduler with *virtual* time.  All benchmarks use it: a
  "2400 second" query executes in milliseconds of wall time while the
  virtual clock reproduces the paper's timing behaviour.
* :class:`~repro.runtime.realtime.AsyncioKernel` — real ``asyncio`` with
  (scaled) wall-clock sleeps, demonstrating genuine concurrent execution.
"""

from repro.runtime.base import Channel, Event, Kernel, ProcessHandle, Semaphore
from repro.runtime.realtime import AsyncioKernel
from repro.runtime.simulated import SimKernel

__all__ = [
    "Channel",
    "Event",
    "Kernel",
    "ProcessHandle",
    "Semaphore",
    "AsyncioKernel",
    "SimKernel",
]
