"""Command-line front end: one-shot queries, an interactive shell, and
the HTTP server.

One-shot::

    python -m repro --query "SELECT gs.Name FROM GetAllStates gs LIMIT 3"
    python -m repro --query "$SQL" --mode parallel --fanouts 5,4 --tree
    python -m repro --query "$SQL" --kernel process --workers 4

Server::

    python -m repro serve --port 8080 --kernel process --workers 4

Interactive::

    python -m repro
    wsmed> \\mode adaptive
    wsmed> SELECT gp.ToState, gp.zip FROM ... ;
    wsmed> \\tree

Meta commands: ``\\views``, ``\\owf NAME``, ``\\mode``, ``\\fanouts``,
``\\profile``, ``\\explain SQL;``, ``\\tree``, ``\\summary``, ``\\rows N``,
``\\stats [SECTION]``, ``\\help``, ``\\quit``.  Statistics live under one
``\\stats`` command (sections: calls, tree, cache, batch, faults,
critical_path, engine); the former ``\\cache``/``\\batch``/``\\faults``/
``\\engine`` still work, both as report aliases and as toggles.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from dataclasses import replace
from typing import IO

from repro.algebra.plan import AdaptationParams
from repro.cache import CacheConfig
from repro.engine import QueryEngine, ShareConfig
from repro.obs import TraceRecorder
from repro.parallel.faults import FaultInjection
from repro.runtime.base import Kernel
from repro.util.errors import ReproError
from repro.wsmed.options import QueryOptions
from repro.wsmed.results import REPORT_SECTIONS, QueryResult
from repro.wsmed.system import WSMED


def format_table(result: QueryResult, max_rows: int = 20) -> str:
    """Align a result as a text table, truncated to ``max_rows``."""
    header = list(result.columns)
    shown = [tuple(str(value) for value in row) for row in result.rows[:max_rows]]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in shown)) if shown else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        " | ".join(name.ljust(widths[i]) for i, name in enumerate(header)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in shown:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(header))))
    if len(result.rows) > max_rows:
        lines.append(f"... ({len(result.rows) - max_rows} more rows)")
    lines.append(
        f"({len(result.rows)} rows, {result.elapsed:.2f} model s, "
        f"{result.total_calls} web service calls, {result.mode} mode)"
    )
    return "\n".join(lines)


def _parse_fanouts(text: str) -> list[int]:
    try:
        return [int(part) for part in text.replace(" ", "").split(",") if part != ""]
    except ValueError:
        raise ReproError(f"invalid fanout vector {text!r}; expected e.g. 5,4") from None


class Shell:
    """The interactive session state."""

    def __init__(
        self,
        wsmed: WSMED,
        out: IO[str],
        *,
        mode: str = "central",
        fanouts: list[int] | None = None,
        retries: int = 0,
        cache: CacheConfig | None = None,
        on_error: str | None = None,
        engine: QueryEngine | None = None,
        trace_out: str | None = None,
        kernel: Kernel | None = None,
        optimize: str = "heuristic",
    ) -> None:
        self.wsmed = wsmed
        self.out = out
        # With a resident engine the shell is *warm*: repeated queries
        # reuse compiled plans and child-process trees across statements
        # instead of cold-starting per query (see repro.engine).
        self.engine = engine
        # Explicit execution kernel for the engineless path (--kernel
        # asyncio/process without --engine); the engine owns its own.
        self.kernel = kernel
        self.mode = mode
        self.fanouts = fanouts
        # Planner level: "heuristic" (the seed's query-order γ-plan) or
        # "cost" (the cost-based optimizer of repro.algebra.optimizer).
        self.optimize = optimize
        self.adaptation = AdaptationParams()
        self.retries = retries
        self.cache_config = cache
        self.max_rows = 20
        self.last_result: QueryResult | None = None
        # Micro-batching overrides applied on top of the system's cost
        # model per query (keys of ProcessCosts: batch_size, batch_linger,
        # batch_adaptive).  Empty = the per-tuple seed protocol.
        self.batch: dict[str, object] = {}
        # Pool failure policy (None = the seed default, "fail") and
        # optional fault injection for demonstrating it.
        self.on_error = on_error
        self.fault_injection: FaultInjection | None = None
        # When set, every query runs traced and its span tree is written
        # to this path as a Chrome trace-event file (open in Perfetto).
        self.trace_out = trace_out

    def write(self, text: str) -> None:
        print(text, file=self.out)

    # -- execution ------------------------------------------------------------

    def run_sql(self, sql: str) -> None:
        kwargs = {}
        if self.mode == "parallel":
            kwargs["fanouts"] = self.fanouts
        elif self.mode == "adaptive":
            kwargs["adaptation"] = self.adaptation
        if self.batch:
            kwargs["process_costs"] = replace(
                self.wsmed.process_costs, **self.batch
            )
        if self.on_error is not None:
            kwargs["on_error"] = self.on_error
        if self.fault_injection is not None:
            kwargs["faults"] = self.fault_injection
        if self.trace_out is not None:
            kwargs["obs"] = TraceRecorder()
        if self.engine is None and self.kernel is not None:
            kwargs["kernel"] = self.kernel
        if self.optimize != "heuristic":
            kwargs["optimize"] = self.optimize
        options = QueryOptions(
            mode=self.mode,
            retries=self.retries,
            cache=self.cache_config,
            **kwargs,
        )
        runner = self.engine.sql if self.engine is not None else self.wsmed.sql
        result = runner(sql, options=options)
        self.last_result = result
        self.write(format_table(result, self.max_rows))
        if self.trace_out is not None:
            result.write_trace(self.trace_out)
            self.write(f"trace written to {self.trace_out}")

    def explain(self, sql: str) -> None:
        kwargs = {}
        if self.mode == "parallel":
            kwargs["fanouts"] = self.fanouts
        elif self.mode == "adaptive":
            kwargs["adaptation"] = self.adaptation
        if self.optimize != "heuristic":
            kwargs["optimize"] = self.optimize
        options = QueryOptions(mode=self.mode, **kwargs)
        self.write(self.wsmed.explain(sql, options=options))

    # -- meta commands -----------------------------------------------------------

    def meta(self, line: str) -> bool:
        """Handle a ``\\...`` command; returns False to exit the shell."""
        command, _, argument = line[1:].partition(" ")
        command = command.strip().lower()
        argument = argument.strip()
        if command in ("quit", "q", "exit"):
            return False
        if command == "help":
            self.write(HELP_TEXT)
        elif command == "views":
            self.write(self.wsmed.views())
        elif command == "owf":
            self.write(self.wsmed.owf_source(argument))
        elif command == "mode":
            if argument not in ("central", "parallel", "adaptive"):
                raise ReproError("mode must be central, parallel or adaptive")
            self.mode = argument
            self.write(f"mode = {self.mode}")
        elif command == "fanouts":
            self.fanouts = _parse_fanouts(argument)
            self.write(f"fanouts = {self.fanouts}")
        elif command == "optimize":
            if argument not in ("heuristic", "cost"):
                raise ReproError("optimize must be heuristic or cost")
            self.optimize = argument
            self.write(f"optimize = {self.optimize}")
        elif command == "retries":
            self.retries = int(argument)
            self.write(f"retries = {self.retries}")
        elif command == "stats":
            self._stats_command(argument)
        elif command == "cache":
            self._cache_command(argument)
        elif command == "batch":
            self._batch_command(argument)
        elif command == "faults":
            self._faults_command(argument)
        elif command == "engine":
            self._engine_report()
        elif command == "share":
            self._share_report()
        elif command == "rows":
            self.max_rows = int(argument)
            self.write(f"rows = {self.max_rows}")
        elif command == "explain":
            self.explain(argument.rstrip(";"))
        elif command == "tree":
            if self.last_result is None:
                raise ReproError("no query has been executed yet")
            self.write(self.last_result.process_tree())
        elif command == "summary":
            if self.last_result is None:
                raise ReproError("no query has been executed yet")
            self.write(self.last_result.summary())
        elif command == "util":
            if self.last_result is None:
                raise ReproError("no query has been executed yet")
            self.write(self.last_result.utilization())
        elif command == "gantt":
            if self.last_result is None:
                raise ReproError("no query has been executed yet")
            from repro.parallel.visualize import render_gantt

            self.write(render_gantt(self.last_result.trace))
        else:
            raise ReproError(f"unknown command \\{command}; try \\help")
        return True

    def _engine_report(self) -> None:
        if self.engine is None:
            self.write(
                "resident engine: off (start with --engine to keep "
                "plans and process trees warm between queries)"
            )
        else:
            self.write(self.engine.stats().report())

    def _share_report(self) -> None:
        """``\\stats share``: the engine's multi-query sharing counters."""
        if self.engine is None:
            self.write(
                "sharing: off (start with --engine --share to dedup and "
                "batch web-service calls across concurrent queries)"
            )
        else:
            self.write(self.engine.stats().share_report())

    def _stats_command(self, argument: str) -> None:
        """``\\stats [SECTION]``: the unified statistics report.

        Sections are those of :meth:`QueryResult.report` plus ``engine``
        (the resident engine's own counters) and ``share`` (its
        multi-query sharing tiers).  No argument shows every section of
        the last execution.
        """
        section = argument.strip().lower()
        if section == "engine":
            self._engine_report()
            return
        if section == "share":
            self._share_report()
            return
        if section and section not in REPORT_SECTIONS:
            known = ", ".join(REPORT_SECTIONS + ("engine", "share"))
            raise ReproError(
                f"unknown stats section {section!r}; known sections: {known}"
            )
        if self.last_result is None:
            raise ReproError("no query has been executed yet")
        if section == "critical_path" and self.last_result.spans is None:
            raise ReproError(
                "the last query was not traced; rerun with --trace-out FILE "
                "to record spans"
            )
        self.write(
            self.last_result.report(sections=section if section else None)
        )

    def _cache_command(self, argument: str) -> None:
        """``\\cache [on [TTL] | off]``: toggle memoization / show counters."""
        if argument:
            word, _, ttl_text = argument.partition(" ")
            word = word.strip().lower()
            if word == "on":
                ttl = float(ttl_text) if ttl_text.strip() else None
                self.cache_config = CacheConfig(enabled=True, ttl=ttl)
                suffix = f" (ttl {ttl:g} model s)" if ttl is not None else ""
                self.write(f"cache = on{suffix}")
            elif word == "off":
                self.cache_config = None
                self.write("cache = off")
            else:
                raise ReproError(r"usage: \cache [on [TTL] | off]")
            return
        if self.last_result is not None and self.last_result.cache_stats is not None:
            self.write(self.last_result.report(sections="cache"))
        else:
            state = "on" if self.cache_config else "off"
            self.write(f"call cache: {state} (no cached execution yet)")

    def _batch_command(self, argument: str) -> None:
        """``\\batch [N | adaptive | linger T | off]``: micro-batching."""
        if argument:
            word, _, rest = argument.partition(" ")
            word = word.strip().lower()
            if word == "off":
                self.batch = {}
                self.write("batch = off (per-tuple protocol)")
            elif word == "adaptive":
                self.batch["batch_adaptive"] = True
                self.write("batch = adaptive")
            elif word == "linger":
                try:
                    linger = float(rest)
                except ValueError:
                    raise ReproError(
                        r"usage: \batch linger T (model seconds)"
                    ) from None
                self.batch["batch_linger"] = linger
                self.write(f"batch linger = {linger:g} model s")
            else:
                try:
                    self.batch["batch_size"] = int(word)
                except ValueError:
                    raise ReproError(
                        r"usage: \batch [N | adaptive | linger T | off]"
                    ) from None
                self.write(f"batch size = {self.batch['batch_size']}")
            return
        if self.last_result is not None:
            self.write(self.last_result.report(sections="batch"))
        elif self.batch:
            self.write(f"batching = {self.batch} (no execution yet)")
        else:
            self.write("batching = off (no execution yet)")

    def _faults_command(self, argument: str) -> None:
        """``\\faults [fail|retry|skip | inject P [C] | off]``: fault policy."""
        if argument:
            word, _, rest = argument.partition(" ")
            word = word.strip().lower()
            if word in ("fail", "retry", "skip"):
                self.on_error = word
                self.write(f"on_error = {word}")
            elif word == "inject":
                parts = rest.split()
                try:
                    failure = float(parts[0]) if parts else 0.0
                    crash = float(parts[1]) if len(parts) > 1 else 0.0
                except ValueError:
                    raise ReproError(
                        r"usage: \faults inject FAIL_PROB [CRASH_PROB]"
                    ) from None
                self.fault_injection = FaultInjection(
                    call_failure_probability=failure, crash_probability=crash
                )
                self.write(
                    f"fault injection: call failure {failure:g}, crash {crash:g}"
                )
            elif word == "off":
                self.on_error = None
                self.fault_injection = None
                self.write("faults = off (policy fail, no injection)")
            else:
                raise ReproError(
                    r"usage: \faults [fail|retry|skip | inject P [C] | off]"
                )
            return
        if self.last_result is not None:
            self.write(self.last_result.report(sections="faults"))
        else:
            policy = self.on_error or "fail"
            injection = (
                "none"
                if self.fault_injection is None
                else f"call failure {self.fault_injection.call_failure_probability:g}"
                f", crash {self.fault_injection.crash_probability:g}"
            )
            self.write(
                f"on_error = {policy}; injection = {injection} (no execution yet)"
            )

    # -- the loop ------------------------------------------------------------------

    def repl(self, source: IO[str]) -> None:
        buffer: list[str] = []
        self.write("WSMED shell — SQL terminated by ';', \\help for commands")
        while True:
            prompt = "wsmed> " if not buffer else "  ...> "
            print(prompt, end="", file=self.out, flush=True)
            line = source.readline()
            if not line:
                break
            stripped = line.strip()
            if not stripped:
                continue
            if not buffer and stripped.startswith("\\"):
                try:
                    if not self.meta(stripped):
                        break
                except (ReproError, ValueError) as error:
                    self.write(f"error: {error}")
                continue
            buffer.append(stripped)
            if stripped.endswith(";"):
                sql = " ".join(buffer).rstrip(";")
                buffer = []
                try:
                    self.run_sql(sql)
                except ReproError as error:
                    self.write(f"error: {error}")


HELP_TEXT = """\
meta commands:
  \\views            list all generated views
  \\owf NAME         show the generated OWF source (paper Fig 2 style)
  \\mode M           central | parallel | adaptive
  \\fanouts 5,4      fanout vector for parallel mode
  \\optimize L       planner level: heuristic (seed) | cost (optimizer)
  \\retries N        retry retriable service faults N times per call
  \\stats            all statistics sections of the last execution
  \\stats SECTION    one section: calls | tree | cache | batch | faults
                    | critical_path (traced runs) | engine | share
  \\cache            alias for \\stats cache
  \\cache on [TTL]   memoize web-service calls (optional TTL, model s)
  \\cache off        disable the call cache
  \\batch            alias for \\stats batch
  \\batch N          coalesce N parameter/result tuples per message
  \\batch adaptive   adapt the batch size per child at run time
  \\batch linger T   flush partial batches after T model seconds
  \\batch off        back to the per-tuple protocol
  \\faults           alias for \\stats faults
  \\faults P         failure policy: fail | retry | skip
  \\faults inject F [C]  inject per-call failures (prob F) / crashes (C)
  \\faults off       seed behavior: policy fail, no injection
  \\engine           alias for \\stats engine
  \\share            alias for \\stats share
  \\rows N           max rows displayed
  \\explain SQL;     show calculus, plan and cost estimate
  \\tree             process tree of the last execution
  \\summary          statistics of the last execution
  \\util             busiest processes of the last execution
  \\gantt            service-call timeline of the last execution
  \\quit             leave"""


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="WSMED: SQL over (simulated) data providing web services",
    )
    parser.add_argument("--query", help="run one query and exit")
    parser.add_argument(
        "--mode",
        default="central",
        choices=("central", "parallel", "adaptive"),
    )
    parser.add_argument("--fanouts", help="fanout vector for parallel mode, e.g. 5,4")
    parser.add_argument(
        "--optimize",
        default="heuristic",
        choices=("heuristic", "cost"),
        help="planner level: heuristic (the seed's query-order plan, "
        "default) or cost (bushy search + binding-pattern rewrites; see "
        "repro.algebra.optimizer)",
    )
    parser.add_argument(
        "--profile", default="paper", choices=("paper", "fast", "uncontended")
    )
    parser.add_argument("--retries", type=int, default=0)
    parser.add_argument(
        "--cache",
        action="store_true",
        help="memoize web-service calls per query process",
    )
    parser.add_argument(
        "--batch",
        metavar="N|adaptive",
        help="micro-batch N tuples per message, or adapt per child",
    )
    parser.add_argument(
        "--on-error",
        choices=("fail", "retry", "skip"),
        help="pool policy for failed web-service calls (default: fail)",
    )
    parser.add_argument(
        "--engine",
        action="store_true",
        help="run queries on a resident engine (warm plans and process trees)",
    )
    parser.add_argument(
        "--share",
        action="store_true",
        help="share work across concurrent queries on the resident engine "
        "(shared call cache, cross-query single-flight/batching, shared "
        "pools); implies --engine",
    )
    parser.add_argument("--explain", action="store_true", help="explain, don't run")
    parser.add_argument("--tree", action="store_true", help="print the process tree")
    parser.add_argument("--summary", action="store_true", help="print statistics")
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the full statistics report after the query",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="trace the query and write a Chrome trace-event file "
        "(open in Perfetto: https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--kernel",
        default="sim",
        choices=("sim", "asyncio", "process"),
        help="execution kernel: sim (virtual time, the default), asyncio "
        "(real time), or process (child pools sharded across OS worker "
        "processes)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="OS worker processes for --kernel process (default 4)",
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="serve SQL over HTTP against a resident query engine "
        "(POST /sql, GET /stats, GET /healthz; see repro.serve)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="listening port (0 binds an ephemeral port; default 8080)",
    )
    parser.add_argument(
        "--kernel",
        default="asyncio",
        choices=("asyncio", "process"),
        help="execution kernel (the simulated kernel cannot host a real "
        "socket server); default asyncio",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="OS worker processes for --kernel process (default 4)",
    )
    parser.add_argument(
        "--profile", default="paper", choices=("paper", "fast", "uncontended")
    )
    parser.add_argument(
        "--share",
        action="store_true",
        help="share call results and pools across concurrent requests",
    )
    parser.add_argument(
        "--optimize",
        default="heuristic",
        choices=("heuristic", "cost"),
        help="default planner level for requests that don't set "
        '"optimize" (cost enables the cost-based optimizer with '
        "live-stats re-optimization)",
    )
    parser.add_argument(
        "--trace-dir",
        default="traces",
        metavar="DIR",
        help='where per-request Chrome traces land ("trace": true requests)',
    )
    parser.add_argument(
        "--admission",
        default="static",
        choices=("static", "adaptive"),
        help="admission policy: static (the max-concurrency semaphore, "
        "default) or adaptive (online capacity probing, tenant fair "
        "queueing, deadline shedding; see repro.engine.admission)",
    )
    parser.add_argument(
        "--admission-threshold",
        type=float,
        default=1.5,
        metavar="X",
        help="p50 inflation vs the solo baseline that marks a concurrency "
        "level unsafe under --admission adaptive (default 1.5)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="default per-query deadline in model milliseconds; a query "
        "the measured service rate cannot finish in time is shed with "
        "HTTP 429 + Retry-After (adaptive admission only)",
    )
    return parser


def _build_kernel(name: str, workers: int) -> Kernel | None:
    """``--kernel`` to kernel; ``None`` keeps the seed default (sim)."""
    if name == "process":
        from repro.runtime.multiprocess import ProcessKernel

        return ProcessKernel(workers=workers)
    if name == "asyncio":
        from repro.runtime.realtime import AsyncioKernel

        return AsyncioKernel(resident=True)
    return None


def serve_main(argv: list[str], out: IO[str]) -> int:
    """``python -m repro serve ...``: run the HTTP front end."""
    import signal

    from repro.serve import QueryServer

    arguments = build_serve_parser().parse_args(argv)
    kernel = _build_kernel(arguments.kernel, arguments.workers)
    wsmed = WSMED(profile=arguments.profile)
    wsmed.import_all()
    if arguments.admission == "adaptive":
        from repro.engine.admission import AdmissionConfig

        admission: str | AdmissionConfig = AdmissionConfig(
            threshold=arguments.admission_threshold,
            default_deadline_ms=arguments.deadline_ms,
        )
    else:
        admission = "static"
    with kernel:
        engine = QueryEngine(
            wsmed,
            kernel=kernel,
            share=ShareConfig(enabled=True) if arguments.share else None,
            admission=admission,
        )
        server = QueryServer(
            engine,
            host=arguments.host,
            port=arguments.port,
            trace_dir=arguments.trace_dir,
            default_optimize=arguments.optimize,
        )

        async def _serve() -> None:
            await server.start()
            print(
                f"serving on http://{server.host}:{server.port} "
                f"({arguments.kernel} kernel"
                + (
                    f", {arguments.workers} workers"
                    if arguments.kernel == "process"
                    else ""
                )
                + ") — Ctrl-C to stop",
                file=out,
                flush=True,
            )
            await server.run()

        # Graceful stop on SIGTERM/SIGINT (supervisors send TERM; a
        # shell-backgrounded server inherits SIGINT as ignored, so an
        # explicit handler is needed either way): the accept loop winds
        # down, then the engine and kernel tear down in order.
        def _request_stop(signum, frame) -> None:
            print("shutting down", file=out, flush=True)
            server.stop()

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)
        try:
            kernel.run(_serve())
        except KeyboardInterrupt:
            pass
        finally:
            engine.close()
    return 0


def main(argv: list[str] | None = None, out: IO[str] | None = None) -> int:
    out = out or sys.stdout
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["serve"]:
        return serve_main(argv[1:], out)
    arguments = build_argument_parser().parse_args(argv)
    wsmed = WSMED(profile=arguments.profile)
    wsmed.import_all()
    fanouts = _parse_fanouts(arguments.fanouts) if arguments.fanouts else None
    kernel = _build_kernel(arguments.kernel, arguments.workers)
    engine = None
    if arguments.engine or arguments.share:
        engine = QueryEngine(
            wsmed,
            kernel=kernel,
            share=ShareConfig(enabled=True) if arguments.share else None,
        )
    shell = Shell(
        wsmed,
        out,
        mode=arguments.mode,
        fanouts=fanouts,
        retries=arguments.retries,
        cache=CacheConfig(enabled=True) if arguments.cache else None,
        on_error=arguments.on_error,
        engine=engine,
        trace_out=arguments.trace_out,
        kernel=kernel,
        optimize=arguments.optimize,
    )
    if arguments.batch:
        if arguments.batch.strip().lower() == "adaptive":
            shell.batch["batch_adaptive"] = True
        else:
            try:
                shell.batch["batch_size"] = int(arguments.batch)
            except ValueError:
                print(
                    f"error: --batch expects a size or 'adaptive', "
                    f"got {arguments.batch!r}",
                    file=out,
                )
                return 1
    # `with kernel:` (Kernel.__enter__/__exit__) guarantees the worker
    # fleet / event loop is torn down even when the query raises.
    with kernel if kernel is not None else contextlib.nullcontext():
        try:
            if arguments.query is None:
                shell.repl(sys.stdin)
                return 0
            try:
                if arguments.explain:
                    shell.explain(arguments.query)
                else:
                    shell.run_sql(arguments.query)
                    if arguments.tree:
                        print(shell.last_result.process_tree(), file=out)
                    if arguments.summary:
                        print(shell.last_result.summary(), file=out)
                    if arguments.stats:
                        print(shell.last_result.report(), file=out)
            except ReproError as error:
                print(f"error: {error}", file=out)
                return 1
            return 0
        finally:
            if engine is not None:
                engine.close()
