"""Level-synchronous baseline: WSQ/DSQ-style dependent-join execution.

The paper positions WSMED against WSQ/DSQ [9], which "handles high-latency
calls ... by launching asynchronous materialized dependent joins": each
dependency level is evaluated with parallel asynchronous calls, but its
results are *materialized* before the next level starts.  WSMED instead
streams parameter tuples through a non-blocking process tree, overlapping
the levels in time.

:func:`run_level_synchronous` implements the materialized strategy over
the same simulated services so benchmarks can quantify the difference.
It is deliberately generous to the baseline: calls within a level share a
plain worker pool with no process start-up, shipping or messaging costs.
"""

from __future__ import annotations

from repro.algebra.interpreter import ExecutionContext, collect_rows, iterate_plan
from repro.algebra.plan import ParamNode, PlanNode
from repro.fdb.functions import FunctionRegistry
from repro.parallel.parallelizer import Section, _rebuild, split_sections
from repro.util.errors import PlanError


async def run_level_synchronous(
    plan: PlanNode,
    ctx: ExecutionContext,
    registry: FunctionRegistry,
    workers_per_level: list[int],
) -> list[tuple]:
    """Execute a linear central plan level by level with materialization.

    ``workers_per_level`` bounds the concurrent calls per dependency level
    (one entry per parallelizable section).  Post-processing operators
    (sort/limit/distinct) are not supported — pass the plain conjunctive
    plan, as the benchmarks do.
    """
    coordinator_nodes, sections, post = split_sections(plan, registry)
    if post:
        raise PlanError("level-synchronous baseline does not support post-ops")
    if len(workers_per_level) != len(sections):
        raise PlanError(
            f"expected {len(sections)} worker counts, got {len(workers_per_level)}"
        )

    from repro.algebra.plan import SingletonNode

    coordinator_plan = _rebuild(coordinator_nodes[1:], SingletonNode())
    rows = await collect_rows(coordinator_plan, ctx)

    for section, workers in zip(sections, workers_per_level):
        if workers < 1:
            raise PlanError("worker counts must be >= 1")
        rows = await _run_level(section, rows, ctx, workers)
    return rows


async def _run_level(
    section: Section,
    params: list[tuple],
    ctx: ExecutionContext,
    workers: int,
) -> list[tuple]:
    """All calls of one level through a bounded worker pool, materialized."""
    body = _rebuild(section.nodes, ParamNode(schema=section.input_schema))
    slots = ctx.kernel.semaphore(workers)
    # Results per parameter keep a deterministic order regardless of the
    # completion interleaving.
    buckets: list[list[tuple]] = [[] for _ in params]

    async def one(index: int, row: tuple) -> None:
        await slots.acquire()
        try:
            async for out_row in iterate_plan(body, ctx, param_row=row):
                buckets[index].append(out_row)
        finally:
            slots.release()

    await ctx.kernel.gather(
        *[one(index, row) for index, row in enumerate(params)]
    )
    return [row for bucket in buckets for row in bucket]
