"""Process-tree descriptions and statistics.

:class:`FanoutVector` captures the paper's notation ``{fo1, fo2}`` with the
process-count formula of Sec. V (``N = fo1 + fo1*fo2`` for two levels), and
:func:`tree_stats_from_trace` reconstructs what tree an execution actually
built — average fanouts per level, add/drop stage counts — from the shared
trace log, which is how the ``AFF_APPLYP`` benchmarks report the average
fanouts of Fig 21.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import PlanError
from repro.util.trace import TraceLog


@dataclass(frozen=True)
class FanoutVector:
    """The per-level fanouts of a manual process tree.

    A trailing 0 fuses the level into the previous one (flat tree, Fig 14).
    """

    fanouts: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.fanouts:
            raise PlanError("fanout vector cannot be empty")
        if self.fanouts[0] <= 0:
            raise PlanError("first fanout must be positive")
        if any(f < 0 for f in self.fanouts):
            raise PlanError("fanouts cannot be negative")

    @property
    def effective(self) -> tuple[int, ...]:
        """Fanouts after flat-tree fusion (zeros removed)."""
        return tuple(f for f in self.fanouts if f > 0)

    def total_processes(self) -> int:
        """N = fo1 + fo1*fo2 + fo1*fo2*fo3 + ... (Sec. V)."""
        total = 0
        layer = 1
        for fanout in self.effective:
            layer *= fanout
            total += layer
        return total

    def is_flat(self) -> bool:
        return len(self.fanouts) > 1 and all(f == 0 for f in self.fanouts[1:])

    def is_balanced(self) -> bool:
        effective = self.effective
        return len(set(effective)) == 1

    def __str__(self) -> str:
        return "{" + ", ".join(str(f) for f in self.fanouts) + "}"


@dataclass
class TreeStats:
    """What one execution's process tree looked like."""

    processes_spawned: int = 0
    processes_dropped: int = 0
    add_stages: int = 0
    drop_stages: int = 0
    # plan function name -> (number of pools, average final fanout)
    fanout_by_level: dict[str, float] = field(default_factory=dict)
    pools_by_level: dict[str, int] = field(default_factory=dict)

    def average_fanouts(self) -> list[float]:
        """Average fanout per level, outermost plan function first."""
        return [self.fanout_by_level[name] for name in sorted(self.fanout_by_level)]


def tree_stats_from_trace(trace: TraceLog) -> TreeStats:
    """Reconstruct tree statistics from the execution trace."""
    stats = TreeStats()
    # children alive per (parent process, plan function)
    alive: dict[tuple[str, str], int] = {}
    for event in trace:
        if event.kind == "spawn":
            stats.processes_spawned += 1
            key = (event.data["parent"], event.data["plan_function"])
            alive[key] = alive.get(key, 0) + 1
        elif event.kind == "drop_stage":
            stats.processes_dropped += 1
            stats.drop_stages += 1
            key = (event.data["process"], event.data["plan_function"])
            alive[key] = alive.get(key, 1) - 1
        elif event.kind == "add_stage":
            stats.add_stages += 1
    by_level: dict[str, list[int]] = {}
    for (_, plan_function), count in alive.items():
        by_level.setdefault(plan_function, []).append(count)
    for plan_function, counts in by_level.items():
        stats.pools_by_level[plan_function] = len(counts)
        stats.fanout_by_level[plan_function] = sum(counts) / len(counts)
    return stats
