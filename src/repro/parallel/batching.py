"""Adaptive micro-batching of parameter and result streams.

The paper's ``FF_APPLYP`` protocol ships one message per parameter tuple
and one per result tuple (Sec. III.A), so for wide fan-outs over cheap
calls the client-side messaging — not the web services — dominates (the
same client-overhead regime that produces the interior optima of Figs
16/17).  The :class:`BatchController` coalesces tuples per child with a
Nagle-style policy and flushes a :class:`~repro.parallel.messages.ParamBatch`
when

* ``batch_size`` rows have accumulated for the child (*size* trigger),
* a ``batch_linger`` deadline on the kernel clock expires (*linger*), or
* the parameter stream ends (*stream_end*), so nothing is ever stranded.

Costs are amortized honestly: a batch pays ``message_latency`` once (one
channel transit) plus the per-row ``ship_param``/``result_tuple`` CPU, so
what batching buys in the model is exactly what it buys in reality —
fewer per-call round trips, not free work.

In *adaptive* mode the per-child batch size is derived from the observed
per-call service time (an EWMA of ``EndOfCall.service_time``) against the
round-trip messaging overhead ``2 * message_latency``: the size is chosen
so that messaging stays below ``_TARGET_OVERHEAD`` of useful work.  Cheap
calls therefore get large batches while a straggler child degenerates to
batch 1, keeping first-finished placement adaptive exactly where it
matters.

With ``batch_size=1``, no linger and adaptation off the controller is
pass-through: it sends the same per-tuple messages in the same order as
the seed protocol, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import TYPE_CHECKING

from repro.parallel.messages import EndOfCall, ParamBatch, ParamTuple
from repro.util.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.parallel.ff_applyp import ChildPool, _Child

# Adaptive mode: ceiling on a per-child batch, and the fraction of a
# call's service time the per-call messaging overhead may consume before
# the controller grows the batch further.
_ADAPTIVE_MAX = 32
_TARGET_OVERHEAD = 0.05
# EWMA smoothing for observed per-call service times.
_EWMA_ALPHA = 0.4


@dataclass
class MessageCounters:
    """Data-path message counts of one operator pool.

    Downlink counts are incremented when the parent sends, uplink counts
    when the parent receives, so both kernels account identically.
    """

    param_tuples: int = 0  # ParamTuple messages sent
    param_batches: int = 0  # ParamBatch messages sent
    batched_params: int = 0  # rows carried inside ParamBatches
    result_tuples: int = 0  # ResultTuple messages received
    result_batches: int = 0  # ResultBatch messages received
    batched_results: int = 0  # rows carried inside ResultBatches
    end_of_calls: int = 0  # stand-alone EndOfCall messages received
    flushes: dict[str, int] = field(default_factory=dict)  # trigger -> count

    @property
    def downlink_messages(self) -> int:
        return self.param_tuples + self.param_batches

    @property
    def uplink_messages(self) -> int:
        return self.result_tuples + self.result_batches + self.end_of_calls

    @property
    def total_messages(self) -> int:
        return self.downlink_messages + self.uplink_messages

    def any(self) -> bool:
        return self.total_messages > 0

    def as_dict(self) -> dict:
        return {
            "param_tuples": self.param_tuples,
            "param_batches": self.param_batches,
            "batched_params": self.batched_params,
            "result_tuples": self.result_tuples,
            "result_batches": self.result_batches,
            "batched_results": self.batched_results,
            "end_of_calls": self.end_of_calls,
            "flushes": dict(self.flushes),
        }

    def reset(self) -> None:
        """Zero every counter (a resident pool starts each query at 0)."""
        self.param_tuples = 0
        self.param_batches = 0
        self.batched_params = 0
        self.result_tuples = 0
        self.result_batches = 0
        self.batched_results = 0
        self.end_of_calls = 0
        self.flushes.clear()

    def merge(self, other: "MessageCounters") -> None:
        self.param_tuples += other.param_tuples
        self.param_batches += other.param_batches
        self.batched_params += other.batched_params
        self.result_tuples += other.result_tuples
        self.result_batches += other.result_batches
        self.batched_results += other.batched_results
        self.end_of_calls += other.end_of_calls
        for trigger, count in other.flushes.items():
            self.flushes[trigger] = self.flushes.get(trigger, 0) + count


class MessageStats(MessageCounters):
    """Query-wide aggregate over every operator pool (all processes)."""


def message_stats_from_trace(trace: TraceLog) -> MessageStats:
    """Aggregate the per-pool ``pool_messages`` trace events."""
    stats = MessageStats()
    for event in trace.events("pool_messages"):
        stats.param_tuples += event.data.get("param_tuples", 0)
        stats.param_batches += event.data.get("param_batches", 0)
        stats.batched_params += event.data.get("batched_params", 0)
        stats.result_tuples += event.data.get("result_tuples", 0)
        stats.result_batches += event.data.get("result_batches", 0)
        stats.batched_results += event.data.get("batched_results", 0)
        stats.end_of_calls += event.data.get("end_of_calls", 0)
        for trigger, count in event.data.get("flushes", {}).items():
            stats.flushes[trigger] = stats.flushes.get(trigger, 0) + count
    return stats


class BatchController:
    """Per-pool coalescing of parameter tuples into ``ParamBatch``es.

    The pool routes every dispatched tuple through :meth:`add`; the
    controller decides whether it goes out immediately as a ``ParamTuple``
    (batching disabled, or the child's current batch size is 1) or is
    buffered until a flush trigger fires.
    """

    def __init__(self, pool: "ChildPool") -> None:
        self.pool = pool
        costs = pool.costs
        self.base_size = costs.batch_size
        self.linger = costs.batch_linger
        self.adaptive = costs.batch_adaptive
        # Disabled means strict seed behavior: one ParamTuple per row, no
        # buffering, no timers, no flush bookkeeping.
        self.enabled = self.base_size > 1 or self.adaptive or self.linger > 0
        self.counters = MessageCounters()
        self._buffers: dict[str, list[tuple]] = {}
        self._sizes: dict[str, int] = {}
        self._service_ewma: dict[str, float] = {}
        # Linger timers: a monotone token per child invalidates stale
        # timer wakeups; handles are kept so close() can cancel them.
        self._timer_tokens: dict[str, int] = {}
        self._timer_handles: dict[str, object] = {}

    # -- sizing ------------------------------------------------------------------

    def target_size(self, child_name: str) -> int:
        """The batch size currently aimed at for ``child_name``."""
        if not self.enabled:
            return 1
        if not self.adaptive:
            return self.base_size
        size = self._sizes.get(child_name, max(1, self.base_size))
        # Tail fairness: when the queued work remaining is scarce relative
        # to the pool, cap the batch at a fair share so the first finisher
        # cannot swallow the whole queue and serialize the tail while the
        # other children idle.
        pending = len(self.pool._pending)
        if pending:
            children = max(1, len(self.pool.children))
            size = min(size, -(-pending // children))
        return max(1, size)

    def capacity(self, child: "_Child") -> int:
        """Tuples the child may hold: ``prefetch`` batches of current size."""
        return self.pool.costs.prefetch * self.target_size(child.endpoints.name)

    def buffered(self, child_name: str) -> int:
        return len(self._buffers.get(child_name, ()))

    def observe(self, end_of_call: EndOfCall) -> None:
        """Feed one call's measured service time to the adaptive sizing.

        The target size keeps the per-call share of the batch round trip
        (``2 * message_latency``) below ``_TARGET_OVERHEAD`` of the
        child's smoothed service time — large batches for cheap calls,
        batch 1 for stragglers.
        """
        if not self.adaptive:
            return
        name = end_of_call.child
        observed = max(0.0, end_of_call.service_time)
        previous = self._service_ewma.get(name)
        smoothed = (
            observed
            if previous is None
            else (1.0 - _EWMA_ALPHA) * previous + _EWMA_ALPHA * observed
        )
        self._service_ewma[name] = smoothed
        round_trip = 2.0 * self.pool.costs.message_latency
        if round_trip <= 0.0:
            size = 1  # messaging is free; batching cannot help
        elif smoothed <= 0.0:
            size = _ADAPTIVE_MAX  # instantaneous calls: all overhead
        else:
            size = ceil(round_trip / (_TARGET_OVERHEAD * smoothed))
        self._sizes[name] = max(1, min(_ADAPTIVE_MAX, size))
        # A shrink can leave an over-full buffer behind; release it now.
        child = self.pool._by_name.get(name)
        if child is not None and self.buffered(name) >= self._sizes[name]:
            self.flush(child, "adaptive")

    # -- the enqueue/flush cycle -----------------------------------------------------

    def add(self, child: "_Child", row: tuple) -> None:
        """Accept one dispatched tuple for ``child`` (ship cost already paid)."""
        name = child.endpoints.name
        if not self.enabled or self.target_size(name) <= 1:
            self._send_single(child, row)
            return
        buffer = self._buffers.setdefault(name, [])
        buffer.append(row)
        if len(buffer) >= self.target_size(name):
            self.flush(child, "size")
        elif self.linger > 0 and len(buffer) == 1:
            self._arm_timer(child)

    def flush(self, child: "_Child", trigger: str) -> None:
        """Send whatever is buffered for ``child`` as one message."""
        name = child.endpoints.name
        buffer = self._buffers.pop(name, None)
        self._disarm_timer(name)
        if not buffer:
            return
        if len(buffer) == 1:
            # A batch of one needs no batch framing — and under adaptive
            # mode this is exactly the straggler fallback to the paper's
            # per-tuple protocol.
            self._send_single(child, buffer[0])
        else:
            pool = self.pool
            seq_start = pool._seq + 1
            pool._seq += len(buffer)
            for offset, row in enumerate(buffer):
                pool.note_sent(child, seq_start + offset, row)
            child.endpoints.downlink.send(
                ParamBatch(seq_start, tuple(buffer), span=pool._inv_span)
            )
            self.counters.param_batches += 1
            self.counters.batched_params += len(buffer)
        self.counters.flushes[trigger] = self.counters.flushes.get(trigger, 0) + 1
        ctx = self.pool.ctx
        ctx.trace.record(
            ctx.kernel.now(),
            "batch_flush",
            process=ctx.process_name,
            plan_function=self.pool.plan_function.name,
            child=name,
            size=len(buffer),
            trigger=trigger,
        )

    def flush_all(self, trigger: str) -> None:
        """Flush every non-empty buffer (stream end, pool close)."""
        if not self._buffers:
            return
        for name in [name for name, rows in self._buffers.items() if rows]:
            child = self.pool._by_name.get(name)
            if child is None:
                # The child vanished between buffering and flushing (it
                # was dropped without the drop-site flushing first); put
                # its rows back in the pending queue rather than lose them.
                for row in self._buffers.pop(name):
                    self.pool._pending.append(row)
                continue
            self.flush(child, trigger)

    def take_buffer(self, child_name: str) -> list[tuple]:
        """Remove and return the rows buffered for one child.

        Used when a child is evicted (death, error): its buffered rows
        were never shipped, so the pool re-owns them for redelivery.
        """
        rows = self._buffers.pop(child_name, [])
        self._disarm_timer(child_name)
        return rows

    def discard(self) -> None:
        """Drop buffered rows and timers (abandoned query; mirrors how the
        per-tuple protocol abandons its pending queue on early close)."""
        self._buffers.clear()
        for name in list(self._timer_handles):
            self._disarm_timer(name)

    def _send_single(self, child: "_Child", row: tuple) -> None:
        pool = self.pool
        pool._seq += 1
        pool.note_sent(child, pool._seq, row)
        child.endpoints.downlink.send(
            ParamTuple(pool._seq, row, span=pool._inv_span)
        )
        self.counters.param_tuples += 1

    # -- linger timers -----------------------------------------------------------

    def _arm_timer(self, child: "_Child") -> None:
        name = child.endpoints.name
        token = self._timer_tokens.get(name, 0) + 1
        self._timer_tokens[name] = token
        kernel = self.pool.ctx.kernel
        self._timer_handles[name] = kernel.spawn(
            self._expire(child, token),
            name=f"{self.pool.ctx.process_name}-linger-{name}",
        )

    def _disarm_timer(self, name: str) -> None:
        self._timer_tokens[name] = self._timer_tokens.get(name, 0) + 1
        handle = self._timer_handles.pop(name, None)
        if handle is not None and not handle.done:
            handle.cancel()

    async def _expire(self, child: "_Child", token: int) -> None:
        await self.pool.ctx.kernel.sleep(self.linger)
        name = child.endpoints.name
        if self._timer_tokens.get(name) == token and self._buffers.get(name):
            self.flush(child, "linger")
