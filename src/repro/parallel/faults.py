"""Fault tolerance of query-process trees: policies, injection, accounting.

The paper assumes query processes and their web-service calls never die;
a production mediator cannot.  This module holds the pieces of the
pool-level fault-tolerance layer that are independent of the operator
runtime itself:

* :class:`FaultInjection` — deterministic process-level fault knobs for
  the simulated runtime (per-call failure probability and per-call crash
  probability), seeded per child so every run replays identically;
* :class:`InjectedCrash` — the exception that simulates a query process
  dying abruptly (deliberately *not* a :class:`~repro.util.errors.ReproError`,
  so the child's per-call error handling cannot catch it);
* :class:`FaultStats` and :func:`fault_stats_from_trace` — query-wide
  aggregation of the ``call_failed`` / ``redeliver`` / ``respawn`` /
  ``breaker_open`` trace events the pools emit.

The policy itself (``on_error`` = ``fail`` | ``retry`` | ``skip``) lives
on :class:`~repro.parallel.costs.ProcessCosts`; the handling lives in
:class:`~repro.parallel.ff_applyp.ChildPool`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import PlanError, ReproError
from repro.util.rng import derive_rng
from repro.util.trace import TraceLog


class InjectedCrash(Exception):
    """Simulates a query process dying abruptly mid-service.

    Not a :class:`ReproError` on purpose: the child's per-call error
    handling converts ``ReproError`` into a protocol message, while a
    crash must escape the receive loop entirely, exactly like a real
    process death would.
    """


@dataclass(frozen=True)
class FaultInjection:
    """Process-level fault knobs for the simulated runtime.

    ``call_failure_probability``  chance that any one plan-function call
                                  raises a (policy-visible) failure before
                                  doing work — models a web service or
                                  plan error surviving call-level retries.
    ``crash_probability``         chance that the child process dies
                                  abruptly when starting a call — models
                                  OOM kills, segfaults, machine loss.
    ``seed``                      root of the per-child random streams, so
                                  a run with the same seed injects the
                                  same faults at the same calls.
    """

    call_failure_probability: float = 0.0
    crash_probability: float = 0.0
    seed: int = 2009

    def __post_init__(self) -> None:
        for name in ("call_failure_probability", "crash_probability"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise PlanError(f"fault injection {name} must be in [0, 1), got {value}")

    def active(self) -> bool:
        return self.call_failure_probability > 0.0 or self.crash_probability > 0.0

    def injector_for(self, process_name: str) -> "FaultInjector":
        """A deterministic per-child injector (independent streams)."""
        return FaultInjector(self, process_name)


class FaultInjector:
    """The per-child side of :class:`FaultInjection`: one seeded stream."""

    def __init__(self, injection: FaultInjection, process_name: str) -> None:
        self._injection = injection
        self._name = process_name
        self._rng = derive_rng(injection.seed, "fault-injection", process_name)

    def before_call(self) -> None:
        """Raise the configured fault, if this call draws one.

        :class:`InjectedCrash` simulates the process dying;
        :class:`ReproError` simulates the call itself failing and flows
        through the child's normal per-call error path.
        """
        if (
            self._injection.crash_probability
            and self._rng.random() < self._injection.crash_probability
        ):
            raise InjectedCrash(f"injected crash in {self._name}")
        if (
            self._injection.call_failure_probability
            and self._rng.random() < self._injection.call_failure_probability
        ):
            raise ReproError(f"injected call failure in {self._name}")


@dataclass
class FaultStats:
    """Query-wide failure accounting, aggregated over every operator pool.

    ``failed_calls``   per-call failures reported by children (including
                       rows lost to a child death, which are written off
                       the same way),
    ``redeliveries``   failed rows re-dispatched under ``on_error="retry"``,
    ``skipped_rows``   failed rows dropped under ``on_error="skip"``,
    ``respawns``       replacement children started for dead ones,
    ``breaker_trips``  pools whose failure rate escalated to a hard error.
    """

    failed_calls: int = 0
    redeliveries: int = 0
    skipped_rows: int = 0
    respawns: int = 0
    breaker_trips: int = 0

    def any(self) -> bool:
        return (
            self.failed_calls > 0
            or self.redeliveries > 0
            or self.skipped_rows > 0
            or self.respawns > 0
            or self.breaker_trips > 0
        )

    def as_dict(self) -> dict:
        return {
            "failed_calls": self.failed_calls,
            "redeliveries": self.redeliveries,
            "skipped_rows": self.skipped_rows,
            "respawns": self.respawns,
            "breaker_trips": self.breaker_trips,
        }


def fault_stats_from_trace(trace: TraceLog) -> FaultStats:
    """Aggregate the pools' fault-tolerance trace events."""
    stats = FaultStats()
    for event in trace.events("call_failed"):
        stats.failed_calls += 1
        if event.data.get("policy") == "skip":
            stats.skipped_rows += 1
    stats.redeliveries = trace.count("redeliver")
    stats.respawns = trace.count("respawn")
    stats.breaker_trips = trace.count("breaker_open")
    return stats
