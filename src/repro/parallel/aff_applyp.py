"""``AFF_APPLYP`` — Adaptive First Finished Apply in Parallel (Sec. V.A).

Replaces the explicit fanout of ``FF_APPLYP`` with local run-time
adaptation in every non-leaf query process:

1. *init stage* — start with a binary tree (fanout ``init_fanout`` = 2);
2. a *monitoring cycle* completes when the process has received as many
   end-of-call messages as it has children;
3. after the first cycle, the *add stage* starts ``p`` new children;
4. per cycle ``i`` the operator records the average time ``t_i`` to
   produce an incoming tuple from the children; a decrease of more than
   ``threshold`` (paper: 25 %) re-runs the add stage, an increase either
   stops adaptation or runs a *drop stage* removing one child and its
   subtree, and a small change stops adaptation.

All decisions are recorded in the shared trace (kinds ``init_stage``,
``cycle``, ``add_stage``, ``drop_stage``, ``adapt_stop``) so tests and the
Figs 18-20 bench can replay the dynamics.
"""

from __future__ import annotations

import math

from repro.algebra.interpreter import ExecutionContext
from repro.algebra.plan import AdaptationParams, PlanFunction
from repro.parallel.costs import ProcessCosts
from repro.parallel.ff_applyp import ChildPool
from repro.parallel.messages import CallFailed, EndOfCall, ResultTuple, Shutdown


class AFFPool(ChildPool):
    """The adaptive pool behind one ``AFF_APPLYP`` node."""

    def __init__(
        self,
        ctx: ExecutionContext,
        plan_function: PlanFunction,
        costs: ProcessCosts,
        params: AdaptationParams,
        *,
        max_stages: int = 50,
    ) -> None:
        super().__init__(ctx, plan_function, costs)
        self.params = params
        self._max_stages = max_stages
        self._stages = 0
        self._adapting = True
        self._had_first_cycle = False
        self._previous_time_per_tuple: float | None = None
        self._cycle_started_at = 0.0
        self._eoc_in_cycle = 0
        self._results_in_cycle = 0
        self._service_in_cycle = 0.0
        self._failed_in_cycle = 0

    def _obs_instant(self, name: str, **attrs) -> None:
        """Mirror an adaptation decision into the span store, so traces
        show *why* the tree changed shape next to *when* it did."""
        obs = self.ctx.obs
        if obs.enabled:
            obs.instant(
                name,
                category="adapt",
                parent=self._inv_span,
                process=self.ctx.process_name,
                at=self.ctx.kernel.now(),
                plan_function=self.plan_function.name,
                **attrs,
            )

    # -- lifecycle hooks --------------------------------------------------------

    async def on_first_use(self) -> None:
        await self.spawn_children(self.params.init_fanout)
        self._cycle_started_at = self.ctx.kernel.now()
        self.ctx.trace.record(
            self._cycle_started_at,
            "init_stage",
            process=self.ctx.process_name,
            plan_function=self.plan_function.name,
            children=len(self.children),
        )
        self._obs_instant("init_stage", children=len(self.children))

    def on_rebind(self) -> None:
        """Restart the monitoring clock for the adopting query.

        The adapted tree itself is the asset being reused, so adaptation
        state (``_adapting``, fanout) carries over; but cycle accounting
        must not straddle queries — a cycle clock left at the previous
        query's end would make the first warm cycle look arbitrarily slow.
        """
        self._cycle_started_at = self.ctx.kernel.now()
        self._eoc_in_cycle = 0
        self._results_in_cycle = 0
        self._service_in_cycle = 0.0
        self._failed_in_cycle = 0

    def on_result(self, message: ResultTuple) -> None:
        self._results_in_cycle += 1

    async def on_end_of_call(self, message: EndOfCall) -> None:
        self._eoc_in_cycle += 1
        self._service_in_cycle += message.service_time
        if self._eoc_in_cycle < len(self.children):
            return
        await self._finish_cycle()

    async def on_call_failed(self, message: CallFailed) -> None:
        """A failed call still completes a monitoring slot.

        It counts toward cycle completion (the child *is* done with the
        call) but is tracked separately, so a flaky child that fails fast
        is not misread as a fast one by the adaptation heuristic.
        """
        self._eoc_in_cycle += 1
        self._failed_in_cycle += 1
        if self._eoc_in_cycle < len(self.children):
            return
        await self._finish_cycle()

    # -- monitoring cycles --------------------------------------------------------

    async def _finish_cycle(self) -> None:
        kernel = self.ctx.kernel
        now = kernel.now()
        duration = now - self._cycle_started_at
        tuples = self._results_in_cycle
        failed = self._failed_in_cycle
        # Only successful calls carry service time; averaging over the
        # failed ones too would make a flaky child look fast.
        calls = self._eoc_in_cycle - failed
        time_per_tuple = duration / tuples if tuples else math.inf
        # Mean child-side occupancy per call — distinguishes slow calls
        # (high mean_service_time) from large results (high tuples).
        mean_service_time = self._service_in_cycle / calls if calls else 0.0
        self.ctx.trace.record(
            now,
            "cycle",
            process=self.ctx.process_name,
            plan_function=self.plan_function.name,
            children=len(self.children),
            tuples=tuples,
            time_per_tuple=time_per_tuple,
            mean_service_time=mean_service_time,
            **({"failed": failed} if failed else {}),
        )
        self._obs_instant(
            "cycle",
            children=len(self.children),
            tuples=tuples,
            time_per_tuple=time_per_tuple,
            mean_service_time=mean_service_time,
        )
        self._eoc_in_cycle = 0
        self._results_in_cycle = 0
        self._service_in_cycle = 0.0
        self._failed_in_cycle = 0
        self._cycle_started_at = now

        if not self._adapting:
            return
        if not self._had_first_cycle:
            # Step 2: after the first monitoring cycle, add p children.
            self._had_first_cycle = True
            self._previous_time_per_tuple = time_per_tuple
            await self._add_stage()
            return

        previous = self._previous_time_per_tuple
        self._previous_time_per_tuple = time_per_tuple
        if previous is None or not math.isfinite(previous):
            return
        if time_per_tuple < previous * (1.0 - self.params.threshold):
            await self._add_stage()
        elif time_per_tuple > previous:
            if self.params.drop_stage:
                await self._drop_stage()
            else:
                self._stop("time per tuple increased")
        else:
            self._stop("time per tuple stabilized")

    def _stop(self, reason: str) -> None:
        self._adapting = False
        self.ctx.trace.record(
            self.ctx.kernel.now(),
            "adapt_stop",
            process=self.ctx.process_name,
            plan_function=self.plan_function.name,
            children=len(self.children),
            reason=reason,
        )
        self._obs_instant("adapt_stop", children=len(self.children), reason=reason)

    async def _add_stage(self) -> None:
        self._stages += 1
        if self._stages > self._max_stages:
            self._stop("stage limit reached")
            return
        room = self.params.max_fanout - len(self.children)
        to_add = min(self.params.p, room)
        if to_add <= 0:
            self._stop("maximum fanout reached")
            return
        await self.spawn_children(to_add, adaptive=True)
        self.ctx.trace.record(
            self.ctx.kernel.now(),
            "add_stage",
            process=self.ctx.process_name,
            plan_function=self.plan_function.name,
            added=to_add,
            children=len(self.children),
        )
        self._obs_instant("add_stage", added=to_add, children=len(self.children))

    async def _drop_stage(self) -> None:
        self._stages += 1
        if self._stages > self._max_stages:
            self._stop("stage limit reached")
            return
        if len(self.children) <= self.params.init_fanout:
            self._stop("cannot drop below the initial tree")
            return
        victim = self.children[-1]
        # Any partial batch buffered for the victim must go out ahead of
        # the shutdown (the downlink is FIFO), or its rows would be lost.
        self.batcher.flush(victim, "drop_stage")
        self.children.remove(victim)
        self._by_name.pop(victim.endpoints.name, None)
        if victim.inflight:
            # Its remaining in-flight calls are still current and must be
            # allowed to resolve; keep the slot findable until they do.
            self._detached[victim.endpoints.name] = victim
        self.total_dropped += 1
        # The child finishes any in-flight call (its downlink is FIFO),
        # then reads the shutdown and tears down its own subtree.
        victim.endpoints.downlink.send(Shutdown("dropped by adaptation"))
        self.ctx.trace.record(
            self.ctx.kernel.now(),
            "drop_stage",
            process=self.ctx.process_name,
            plan_function=self.plan_function.name,
            dropped=victim.endpoints.name,
            children=len(self.children),
        )
        self._obs_instant(
            "drop_stage",
            dropped=victim.endpoints.name,
            children=len(self.children),
        )
