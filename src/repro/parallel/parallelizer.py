"""The parallelizer and plan rewriter (paper Fig 5, Sec. IV).

Takes a central plan and:

1. identifies the parallelizable OWF applies — those whose arguments are
   fed from the parameter stream (OWFs with no input parameters, like
   ``GetAllStates``, are not considered);
2. splits each dependent chain into *sections*, one per parallelizable
   OWF, the bottom section staying in the coordinator;
3. generates a *plan function* per section (PF1/PF2 of Figs 7/8,
   PF3/PF4 of Figs 11/12) whose body re-roots the section's operators on
   a parameter-tuple leaf;
4. rewrites the query into nested ``FF_APPLYP``/``AFF_APPLYP`` operators:
   the plan function shipped to level *k* contains the operator that
   ships level *k+1*'s plan function, which is how every process in the
   tree of Fig 4 comes to run its own parallel operator.

A fanout of ``0`` at a split point *fuses* that section into the previous
plan function — the paper's flat tree (Fig 14), where both OWFs execute in
the same level-one plan function.

Bushy plans (the paper's Sec. VII future work, implemented here): each
branch of a :class:`~repro.algebra.plan.JoinNode` is parallelized
independently and the join — like ``DISTINCT``/``ORDER BY``/``LIMIT`` and
any other blocking operator — stays in the coordinator.  With manual
fanouts, the vector covers all branches' sections in left-to-right plan
order; ``AFF_APPLYP`` needs no vector at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import columns_of
from repro.algebra.plan import (
    AdaptationParams,
    AFFApplyNode,
    AggregateNode,
    ApplyNode,
    DistinctNode,
    FFApplyNode,
    FilterNode,
    JoinNode,
    LimitNode,
    MapNode,
    ParamNode,
    PlanFunction,
    PlanNode,
    ProjectNode,
    SingletonNode,
    SortNode,
    UnionNode,
)
from repro.fdb.functions import FunctionKind, FunctionRegistry
from repro.util.errors import PlanError

# Blocking / global operators: always execute in the coordinator.
_GLOBAL_NODES = (SortNode, LimitNode, DistinctNode, AggregateNode)


@dataclass
class Section:
    """One parallelizable section: its input schema and operator chain.

    ``nodes`` are listed bottom-up (first node consumes the parameter
    tuple); the first node is the section's OWF apply.
    """

    index: int
    input_schema: tuple[str, ...]
    nodes: list[PlanNode]

    @property
    def name(self) -> str:
        return f"PF{self.index}"


def _linearize(plan: PlanNode) -> list[PlanNode]:
    """Linear chains only; returns nodes bottom-up."""
    chain: list[PlanNode] = []
    node = plan
    while True:
        children = node.children()
        chain.append(node)
        if not children:
            break
        if len(children) != 1:
            raise PlanError("plan is not a linear chain")
        node = children[0]
    chain.reverse()
    if not isinstance(chain[0], SingletonNode):
        raise PlanError("chain must be rooted in a singleton")
    return chain


def _rebase(node: PlanNode, new_child: PlanNode) -> PlanNode:
    """A copy of ``node`` reading from ``new_child``."""
    if isinstance(node, ApplyNode):
        return ApplyNode(new_child, node.function, node.arguments, node.out_columns)
    if isinstance(node, MapNode):
        return MapNode(new_child, node.expression, node.out_column)
    if isinstance(node, FilterNode):
        return FilterNode(new_child, node.op, node.left, node.right)
    if isinstance(node, ProjectNode):
        return ProjectNode(new_child, node.items)
    if isinstance(node, DistinctNode):
        return DistinctNode(new_child)
    if isinstance(node, SortNode):
        return SortNode(new_child, node.keys)
    if isinstance(node, LimitNode):
        return LimitNode(new_child, node.count)
    if isinstance(node, AggregateNode):
        return AggregateNode(new_child, node.items)
    raise PlanError(f"cannot rebase plan node {node.label()!r}")


def _is_parallelizable(node: PlanNode, registry: FunctionRegistry) -> bool:
    """An OWF apply fed by a parameter stream (Sec. IV)."""
    if not isinstance(node, ApplyNode):
        return False
    function = registry.resolve(node.function)
    if function.kind is not FunctionKind.OWF:
        return False
    return any(columns_of(argument) for argument in node.arguments)


def split_sections(
    plan: PlanNode, registry: FunctionRegistry
) -> tuple[list[PlanNode], list[Section], list[PlanNode]]:
    """Split a linear central plan into (coordinator chain, sections,
    coordinator post-processing chain).

    The post-processing chain holds the trailing blocking operators
    (sort/limit/distinct) that must never be shipped into a plan function.
    """
    chain = _linearize(plan)
    post: list[PlanNode] = []
    while chain and isinstance(chain[-1], _GLOBAL_NODES):
        post.insert(0, chain.pop())
    boundaries = [
        position
        for position, node in enumerate(chain)
        if _is_parallelizable(node, registry)
    ]
    coordinator = chain[: boundaries[0]] if boundaries else chain
    sections: list[Section] = []
    for section_number, start in enumerate(boundaries, start=1):
        end = (
            boundaries[section_number]
            if section_number < len(boundaries)
            else len(chain)
        )
        sections.append(
            Section(
                index=section_number,
                input_schema=chain[start].children()[0].schema,
                nodes=chain[start:end],
            )
        )
    return coordinator, sections, post


def count_sections(plan: PlanNode, registry: FunctionRegistry) -> int:
    """Total parallelizable sections across the whole (possibly bushy) plan."""
    if isinstance(plan, JoinNode):
        return count_sections(plan.left, registry) + count_sections(
            plan.right, registry
        )
    if isinstance(plan, UnionNode):
        return sum(count_sections(branch, registry) for branch in plan.inputs)
    total = 0
    node = plan
    while True:
        if isinstance(node, (JoinNode, UnionNode)):
            return total + count_sections(node, registry)
        if _is_parallelizable(node, registry):
            total += 1
        children = node.children()
        if not children:
            return total
        node = children[0]


def _rebuild(nodes: list[PlanNode], root: PlanNode) -> PlanNode:
    plan = root
    for node in nodes:
        plan = _rebase(node, plan)
    return plan


def _fuse_sections(
    sections: list[Section], fanouts: list[int]
) -> tuple[list[Section], list[int]]:
    """Apply flat-tree fusion: a fanout of 0 merges its section into the
    previous one (both OWFs then run in the same plan function)."""
    if not sections:
        return [], []
    if fanouts[0] == 0:
        raise PlanError("the first fanout of a chain cannot be 0")
    fused_sections: list[Section] = []
    fused_fanouts: list[int] = []
    for section, fanout in zip(sections, fanouts):
        if fanout == 0:
            previous = fused_sections[-1]
            previous.nodes = previous.nodes + section.nodes
        else:
            fused_sections.append(
                Section(section.index, section.input_schema, list(section.nodes))
            )
            fused_fanouts.append(fanout)
    return fused_sections, fused_fanouts


class _FanoutCursor:
    """Deals the fanout vector out to chains in plan order."""

    def __init__(self, fanouts: list[int] | None) -> None:
        self.fanouts = fanouts
        self.position = 0

    def take(self, count: int) -> list[int]:
        if self.fanouts is None:
            return []
        if self.position + count > len(self.fanouts):
            raise PlanError(
                f"fanout vector of length {len(self.fanouts)} is too short: "
                f"the plan has more parallelizable sections"
            )
        taken = self.fanouts[self.position : self.position + count]
        self.position += count
        return taken

    def assert_exhausted(self) -> None:
        if self.fanouts is not None and self.position != len(self.fanouts):
            raise PlanError(
                f"fanout vector of length {len(self.fanouts)} does not match "
                f"{self.position} parallelizable sections"
            )


class _Rewriter:
    def __init__(
        self,
        registry: FunctionRegistry,
        cursor: _FanoutCursor,
        adaptation: AdaptationParams | None,
    ) -> None:
        self.registry = registry
        self.cursor = cursor
        self.adaptation = adaptation
        self._pf_counter = 0  # unique PF names across bushy branches

    def rewrite(self, plan: PlanNode) -> PlanNode:
        # Peel the single-child spine down to a leaf or a join.
        spine: list[PlanNode] = []
        current = plan
        while True:
            children = current.children()
            if len(children) != 1:
                break
            spine.append(current)
            current = children[0]
        if isinstance(current, (JoinNode, UnionNode)):
            for node in spine:
                if _is_parallelizable(node, self.registry):
                    raise PlanError(
                        "parallelizable call above a join or union "
                        "is not supported"
                    )
            if isinstance(current, JoinNode):
                new_node: PlanNode = JoinNode(
                    left=self.rewrite(current.left),
                    right=self.rewrite(current.right),
                    conditions=current.conditions,
                )
            else:
                new_node = UnionNode(
                    tuple(self.rewrite(branch) for branch in current.inputs)
                )
            return _rebuild(list(reversed(spine)), new_node)
        # A pure chain rooted in the singleton.
        return self._rewrite_chain(plan)

    def _rewrite_chain(self, plan: PlanNode) -> PlanNode:
        coordinator_nodes, sections, post = split_sections(plan, self.registry)
        if not sections:
            return plan
        # Unique plan-function names across all branches of a bushy plan.
        for section in sections:
            self._pf_counter += 1
            section.index = self._pf_counter

        if self.adaptation is None:
            fanouts = self.cursor.take(len(sections))
            sections, effective = _fuse_sections(sections, fanouts)

            def make_operator(position: int, body: PlanNode, shipped: PlanFunction) -> PlanNode:
                return FFApplyNode(
                    child=body, plan_function=shipped, fanout=effective[position]
                )

            top_fanout = effective[0]
        else:

            def make_operator(position: int, body: PlanNode, shipped: PlanFunction) -> PlanNode:
                return AFFApplyNode(
                    child=body, plan_function=shipped, params=self.adaptation
                )

            top_fanout = None

        shipped = self._nest(sections, make_operator)
        coordinator = _rebuild(coordinator_nodes[1:], SingletonNode())
        if self.adaptation is None:
            operator: PlanNode = FFApplyNode(
                child=coordinator, plan_function=shipped, fanout=top_fanout
            )
        else:
            operator = AFFApplyNode(
                child=coordinator, plan_function=shipped, params=self.adaptation
            )
        return _rebuild(post, operator)

    def _nest(self, sections: list[Section], make_operator) -> PlanFunction:
        """Build the nested plan functions, innermost (deepest) first."""
        shipped: PlanFunction | None = None
        for position in range(len(sections) - 1, -1, -1):
            section = sections[position]
            body = _rebuild(section.nodes, ParamNode(schema=section.input_schema))
            if shipped is not None:
                body = make_operator(position + 1, body, shipped)
            shipped = PlanFunction(
                name=section.name, param_schema=section.input_schema, body=body
            )
        if shipped is None:
            raise PlanError("no parallelizable sections")
        return shipped


def parallelize(
    plan: PlanNode,
    registry: FunctionRegistry,
    fanouts: list[int] | None = None,
    adaptation: AdaptationParams | None = None,
    *,
    obs=None,
    obs_parent: int = -1,
) -> PlanNode:
    """Rewrite a central plan into a parallel one.

    Exactly one of ``fanouts`` (manual ``FF_APPLYP`` tree, one entry per
    parallelizable section in left-to-right plan order, 0 = fuse into the
    previous level) or ``adaptation`` (``AFF_APPLYP``) must be given.  A
    plan with no parallelizable section is returned unchanged.  ``obs``
    (a :class:`repro.obs.TraceRecorder`) wraps the plan-function
    generation in a compile-phase span under ``obs_parent``.
    """
    if (fanouts is None) == (adaptation is None):
        raise PlanError("specify exactly one of fanouts/adaptation")
    total = count_sections(plan, registry)
    if total == 0:
        if fanouts:
            raise PlanError(
                f"fanout vector of length {len(fanouts)} does not match "
                "0 parallelizable sections"
            )
        return plan
    if fanouts is not None and len(fanouts) != total:
        raise PlanError(
            f"fanout vector of length {len(fanouts)} does not match "
            f"{total} parallelizable sections"
        )
    cursor = _FanoutCursor(list(fanouts) if fanouts is not None else None)
    rewriter = _Rewriter(registry, cursor, adaptation)
    span = -1
    if obs is not None and obs.enabled:
        span = obs.start(
            "plan_functions",
            category="compile",
            parent=obs_parent,
            process="compiler",
            sections=total,
        )
    try:
        rewritten = rewriter.rewrite(plan)
    finally:
        if span != -1:
            obs.finish(span, plan_functions=rewriter._pf_counter)
    cursor.assert_exhausted()
    return rewritten
