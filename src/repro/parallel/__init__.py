"""Parallel query execution: process trees, ``FF_APPLYP`` and ``AFF_APPLYP``.

This subpackage implements the paper's contribution:

* :mod:`repro.parallel.parallelizer` — rewrites a central plan into a
  parallel one by splitting it into sections at parallelizable OWFs,
  generating plan functions (PF1-PF4 of Figs 7/8/11/12) and nesting them
  under ``FF_APPLYP``/``AFF_APPLYP`` operators (Figs 9/13);
* :mod:`repro.parallel.process` — the child query process: receives a
  shipped plan function, then executes it for one parameter tuple at a
  time, streaming results and end-of-call messages back (Sec. III.A);
* :mod:`repro.parallel.ff_applyp` — the ``FF_APPLYP`` operator runtime:
  first-finished dispatch of parameter tuples over a persistent pool of
  children;
* :mod:`repro.parallel.aff_applyp` — the adaptive ``AFF_APPLYP`` runtime:
  binary init stage, monitoring cycles, add and drop stages (Sec. V.A);
* :mod:`repro.parallel.executor` — wires the parallel handler into the
  plan interpreter and owns pool shutdown;
* :mod:`repro.parallel.tree` — fanout vectors and process-tree statistics.
"""

from repro.parallel.baseline import run_level_synchronous
from repro.parallel.costs import ProcessCosts
from repro.parallel.executor import ParallelExecutor
from repro.parallel.faults import (
    FaultInjection,
    FaultStats,
    fault_stats_from_trace,
)
from repro.parallel.parallelizer import parallelize, split_sections
from repro.parallel.tree import FanoutVector, TreeStats, tree_stats_from_trace
from repro.parallel.visualize import (
    build_process_tree,
    peak_concurrency,
    process_utilization,
    render_process_tree,
    render_utilization,
)

__all__ = [
    "run_level_synchronous",
    "ProcessCosts",
    "ParallelExecutor",
    "FaultInjection",
    "FaultStats",
    "fault_stats_from_trace",
    "parallelize",
    "split_sections",
    "FanoutVector",
    "TreeStats",
    "tree_stats_from_trace",
    "build_process_tree",
    "peak_concurrency",
    "process_utilization",
    "render_process_tree",
    "render_utilization",
]
