"""``FF_APPLYP`` — First Finished Apply in Parallel (Sec. III.A).

The operator keeps a persistent pool of child query processes.  On first
use it spawns ``fanout`` children and ships each the plan function; then,
per invocation, it streams parameter tuples to idle children (one tuple
per child in the first round, then one new tuple per end-of-call — the
first-finished policy) and emits result rows the moment any child delivers
them.

The input stream is drained by a pump task into the operator's inbox, so
one event loop serves input arrival, results, and end-of-call messages
without needing a select primitive.

On top of the paper's protocol sits a pool-level fault-tolerance layer
(``ProcessCosts.on_error``):

* every dispatched parameter row is tracked in the target child's
  ``inflight`` map (sequence number -> row) until its end-of-call;
* a :class:`CallFailed` report resolves the row per policy — redeliver it
  to another child (``retry``), drop and count it (``skip``), or abort
  (``fail``, the seed default);
* a per-child death watcher turns an unexpected process exit into a
  :class:`ChildDied` message; under ``retry``/``skip`` the pool spawns a
  replacement child (re-shipping the plan function) and writes off the
  dead child's in-flight rows per the same policy;
* a per-pool circuit breaker escalates to ``fail`` once the invocation's
  failure rate crosses ``breaker_threshold``;
* invocations are epoch-stamped so a persistent pool whose previous
  invocation failed drops that invocation's stale messages instead of
  replaying them, and per-invocation dispatch state is reset on the error
  exit of :meth:`ChildPool.run`.

With the defaults (``on_error="fail"``, no fault injection) none of this
changes a single message or trace event relative to the paper protocol.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import AsyncIterator

from repro.algebra.interpreter import ExecutionContext
from repro.algebra.plan import PlanFunction
from repro.cache import CacheStats, stable_hash
from repro.parallel.batching import BatchController
from repro.parallel.costs import ProcessCosts
from repro.parallel.messages import (
    CallFailed,
    ChildDied,
    ChildError,
    EndOfCall,
    InputAvailable,
    InputExhausted,
    InputFailed,
    ReadyToReceive,
    ResultBatch,
    ResultTuple,
    ShipPlanFunction,
    Shutdown,
)
from repro.parallel.process import ChildEndpoints, child_main
from repro.runtime.base import ProcessHandle
from repro.util.errors import PlanError, ReproError


@dataclass(eq=False)
class _Child:
    """One pool slot.  ``eq=False`` keeps comparison by identity: the pool
    mixes ``in``/``remove`` (which would use ``__eq__``) with ``is`` checks,
    and value equality between distinct slots would corrupt ``_idle``."""

    endpoints: ChildEndpoints
    handle: ProcessHandle
    outstanding: int = 0  # parameter tuples shipped but not end-of-called
    added_by_adaptation: bool = False
    # Rows shipped to this child and not yet resolved: seq -> parameter
    # row.  Source of truth for redelivery after a failure or death, and
    # for telling current messages from stale ones.
    inflight: dict[int, tuple] = field(default_factory=dict)
    # The derived context the child process runs under.  ``child_main``
    # holds the same object, so mutating its fields (trace, recorder)
    # re-homes a warm child into a new query — see :meth:`ChildPool.rebind`.
    ctx: ExecutionContext | None = None


class ChildPool:
    """Pool of child query processes below one FF/AFF operator instance."""

    def __init__(
        self,
        ctx: ExecutionContext,
        plan_function: PlanFunction,
        costs: ProcessCosts,
    ) -> None:
        self.ctx = ctx
        self.plan_function = plan_function
        self._plan_function_dict = plan_function.to_dict()
        self.costs = costs
        self.inbox = ctx.kernel.channel(
            f"{ctx.process_name}/{plan_function.name}/inbox",
            latency=costs.message_latency,
        )
        self.children: list[_Child] = []
        self._idle: deque[_Child] = deque()
        self._by_name: dict[str, _Child] = {}
        # Children dropped by adaptation that still have in-flight calls:
        # their remaining messages are current (must resolve), but they
        # take no new work.
        self._detached: dict[str, _Child] = {}
        self._pending: deque[tuple] = deque()
        self._seq = 0
        self._rotation = 0  # next child index under round-robin dispatch
        self._closed = False
        self._epoch = 0  # invocation counter; stamps pump messages
        self.total_spawned = 0
        self.total_dropped = 0
        self.total_respawns = 0
        self.failed_calls = 0
        self.skipped_rows = 0
        # Per-invocation failure accounting (redelivery budgets + breaker).
        self._fail_counts: dict[str, int] = {}
        self._ok_in_invocation = 0
        self._failed_in_invocation = 0
        self.batcher = BatchController(self)
        # Observability (repro.obs): id of the current invocation's span.
        # Stamped onto every downlink message so child-side call spans can
        # link back across the process boundary; -1 = tracing off.
        self._inv_span = -1

    # -- child lifecycle ---------------------------------------------------------

    async def spawn_children(self, count: int, *, adaptive: bool = False) -> None:
        """Start ``count`` new children and ship them the plan function.

        The parent pays the per-child shipping cost serially; children
        start up and install concurrently ("ships in parallel").

        With a placement layer attached (``ctx.placement``, set by a
        multi-process kernel) the child runs inside an OS worker: its
        downlink/handle are remote proxies and ``ctx`` stays ``None``
        (the real context lives in the worker), but every pool-side
        protocol step below is identical.
        """
        kernel = self.ctx.kernel
        placement = self.ctx.placement
        for _ in range(count):
            name = self.ctx.next_process_name()
            if placement is not None:
                endpoints, handle = placement.spawn_child(self, name)
                child = _Child(
                    endpoints=endpoints,
                    handle=handle,
                    added_by_adaptation=adaptive,
                )
                self._finish_spawn(child, adaptive=adaptive)
                await kernel.sleep(self.costs.ship_function)
                self._ship_function(child, adaptive=adaptive)
                continue
            endpoints = ChildEndpoints(
                name=name,
                downlink=kernel.channel(
                    f"{name}/downlink", latency=self.costs.message_latency
                ),
                uplink=self.inbox,
            )
            child_ctx = self.ctx.for_process(name)

            async def close_nested(child_ctx=child_ctx):
                for pool in list(child_ctx.pools.values()):
                    await pool.close()

            handle = kernel.spawn(
                child_main(child_ctx, self.costs, endpoints, on_exit=close_nested),
                name=name,
            )
            child = _Child(
                endpoints=endpoints,
                handle=handle,
                added_by_adaptation=adaptive,
                ctx=child_ctx,
            )
            self._finish_spawn(child, adaptive=adaptive)
            await kernel.sleep(self.costs.ship_function)
            self._ship_function(child, adaptive=adaptive)

    def _finish_spawn(self, child: _Child, *, adaptive: bool) -> None:
        """Pool bookkeeping for a freshly spawned (local or remote) child."""
        name = child.endpoints.name
        self.children.append(child)
        self._by_name[name] = child
        self.total_spawned += 1
        self.ctx.kernel.spawn(
            self._watch_child(name, child.handle), name=f"{name}-watch"
        )

    def _ship_function(self, child: _Child, *, adaptive: bool) -> None:
        """Ship the plan function and make the child available for work."""
        child.endpoints.downlink.send(
            ShipPlanFunction(self._plan_function_dict, span=self._inv_span)
        )
        self.ctx.trace.record(
            self.ctx.kernel.now(),
            "spawn",
            parent=self.ctx.process_name,
            process=child.endpoints.name,
            plan_function=self.plan_function.name,
            adaptive=adaptive,
        )
        self._make_idle(child)

    async def _watch_child(self, name: str, handle: ProcessHandle) -> None:
        """Death watcher: report an unexpected child exit to the inbox.

        The child cannot announce its own crash, so the watcher joins the
        handle from outside.  Orderly exits (pool close, adaptation drop)
        are filtered out by ``_closed`` here and by the name lookup in the
        ``ChildDied`` handler.
        """
        reason = ""
        try:
            await handle.join()
        except BaseException as error:  # noqa: BLE001 - report any death
            text = str(error)
            reason = f"{type(error).__name__}: {text}" if text else type(error).__name__
        if not self._closed:
            self.inbox.send(ChildDied(name, reason))

    def _pipelined(self) -> bool:
        """Whether dispatch may assign several tuples to one child.

        True for ``prefetch > 1`` (the pipelined protocol) and whenever
        batching is enabled — a child must be allowed to hold a whole
        batch even at prefetch depth 1.
        """
        return self.costs.prefetch > 1 or self.batcher.enabled

    def _capacity(self, child: _Child) -> int:
        """Row capacity of a child: ``prefetch`` batches of current size."""
        return self.batcher.capacity(child)

    def _make_idle(self, child: _Child) -> None:
        """End-of-call bookkeeping: the child can take more work."""
        child.outstanding = max(0, child.outstanding - 1)
        if self._pipelined():
            # Refill up to capacity.  Without batching one end-of-call
            # frees exactly one slot, so this takes one pending tuple
            # just like the seed protocol; with batching the child must
            # be topped up to a full batch or its buffer would sit below
            # the size trigger with nothing in flight to trigger it.
            while self._pending and child.outstanding < self._capacity(child):
                self._dispatch_now(child, self._take_pending(child))
                if not self.batcher.enabled:
                    break
            return
        if self._pending:
            self._dispatch_now(child, self._take_pending(child))
        else:
            self._idle.append(child)

    def _dispatch_now(self, child: _Child, row: tuple) -> None:
        child.outstanding += 1
        self.batcher.add(child, row)

    def note_sent(self, child: _Child, seq: int, row: tuple) -> None:
        """Record a shipped row as in flight (called at seq assignment)."""
        child.inflight[seq] = row

    def _affinity_target(self, row: tuple) -> _Child:
        """The child a tuple hashes to under ``hash_affinity`` dispatch."""
        return self.children[stable_hash(row) % len(self.children)]

    def _take_pending(self, child: _Child) -> tuple:
        """Pop the pending tuple this child should run next.

        Under ``hash_affinity``, a tuple whose affinity target is this
        child is preferred, so keys keep landing on the child that has
        them cached; otherwise (and for all other policies) FIFO order.
        """
        if self.costs.dispatch == "hash_affinity" and len(self.children) > 1:
            for index, row in enumerate(self._pending):
                if self._affinity_target(row) is child:
                    del self._pending[index]
                    return row
        return self._pending.popleft()

    async def _dispatch(self, row: tuple) -> None:
        """Ship one parameter tuple (parent pays the shipping cost)."""
        await self.ctx.kernel.sleep(self.costs.ship_param)
        if self.costs.dispatch == "round_robin":
            # Ablation baseline: deal tuples out in fixed rotation without
            # waiting for end-of-call; a slow child accumulates a queue.
            child = self.children[self._rotation % len(self.children)]
            self._rotation += 1
            self._dispatch_now(child, row)
            return
        if self.costs.dispatch == "hash_affinity" and self.children:
            # Cache-affinity placement: route the tuple to the child its
            # key hashes to, so identical keys hit that child's local
            # call cache.  A saturated target falls back to the policies
            # below — first-finished placement beats a growing queue.
            target = self._affinity_target(row)
            if target.outstanding < self._capacity(target):
                try:
                    self._idle.remove(target)
                except ValueError:
                    pass
                self._dispatch_now(target, row)
                return
        if self._pipelined():
            # Pipelined dispatch: the least-loaded child with room takes
            # the tuple (first-finished generalized to depth > 1).
            candidates = [
                child
                for child in self.children
                if child.outstanding < self._capacity(child)
            ]
            if candidates:
                self._dispatch_now(
                    min(candidates, key=lambda child: child.outstanding), row
                )
            else:
                self._pending.append(row)
            return
        while self._idle:
            child = self._idle.popleft()
            if child not in self.children:
                continue  # dropped while idle
            self._dispatch_now(child, row)
            return
        self._pending.append(row)

    # -- failure handling --------------------------------------------------------

    def _find_child(self, name: str) -> _Child | None:
        """Active or detached child by name; None once fully evicted."""
        child = self._by_name.get(name)
        if child is not None:
            return child
        return self._detached.get(name)

    def _retire_detached(self, name: str) -> None:
        """Forget a detached child once its last in-flight call resolved."""
        child = self._detached.get(name)
        if child is not None and not child.inflight:
            del self._detached[name]

    def _evict(self, name: str) -> list[tuple[int, tuple]]:
        """Remove a dead/failed child from every pool structure.

        Returns the rows the child still owed: its in-flight calls (with
        their sequence numbers) plus any rows buffered for it in the
        batcher (seq ``-1`` — never shipped).  Without the eviction, a
        later dispatch to the dead child would hang the query forever.
        """
        child = self._by_name.pop(name, None)
        if child is None:
            child = self._detached.pop(name, None)
            if child is None:
                return []
            lost = list(child.inflight.items())
            child.inflight.clear()
            return lost
        if child in self.children:
            self.children.remove(child)
        try:
            self._idle.remove(child)
        except ValueError:
            pass
        lost = list(child.inflight.items())
        child.inflight.clear()
        child.outstanding = 0
        for row in self.batcher.take_buffer(name):
            lost.append((-1, row))
        return lost

    def _register_failure(
        self, row: tuple, *, child: str, seq: int, error: str
    ) -> str:
        """Account one failed call and decide its fate per ``on_error``.

        Returns ``"retry"`` (caller redelivers the row) or ``"skip"``
        (caller writes the row off); raises :class:`ReproError` under the
        ``fail`` policy, an exhausted redelivery budget, or an open
        circuit breaker.
        """
        policy = self.costs.on_error
        self.failed_calls += 1
        self._failed_in_invocation += 1
        self.ctx.trace.record(
            self.ctx.kernel.now(),
            "call_failed",
            process=self.ctx.process_name,
            plan_function=self.plan_function.name,
            child=child,
            seq=seq,
            policy=policy,
            error=error,
        )
        if policy == "fail":
            raise ReproError(f"query process {child} failed: {error}")
        resolved = self._ok_in_invocation + self._failed_in_invocation
        if (
            resolved >= self.costs.breaker_min_calls
            and self._failed_in_invocation / resolved > self.costs.breaker_threshold
        ):
            self.ctx.trace.record(
                self.ctx.kernel.now(),
                "breaker_open",
                process=self.ctx.process_name,
                plan_function=self.plan_function.name,
                failed=self._failed_in_invocation,
                resolved=resolved,
            )
            raise ReproError(
                f"circuit breaker open for {self.plan_function.name}: "
                f"{self._failed_in_invocation} of {resolved} calls failed"
            )
        if policy == "retry":
            key = repr(row)
            attempt = self._fail_counts.get(key, 0) + 1
            self._fail_counts[key] = attempt
            if attempt > self.costs.max_redeliveries:
                raise ReproError(
                    f"parameter row {row!r} failed {attempt} times "
                    f"(max_redeliveries={self.costs.max_redeliveries}): {error}"
                )
            self.ctx.trace.record(
                self.ctx.kernel.now(),
                "redeliver",
                process=self.ctx.process_name,
                plan_function=self.plan_function.name,
                row=key,
                attempt=attempt,
                failed_child=child,
            )
            return "retry"
        self.skipped_rows += 1
        return "skip"

    async def _respawn(self, died: str, reason: str, lost_rows: int) -> None:
        """Replace a dead child (re-shipping the plan function)."""
        await self.spawn_children(1)
        replacement = self.children[-1].endpoints.name
        self.total_respawns += 1
        self.ctx.trace.record(
            self.ctx.kernel.now(),
            "respawn",
            process=self.ctx.process_name,
            plan_function=self.plan_function.name,
            died=died,
            reason=reason,
            replacement=replacement,
            lost_rows=lost_rows,
        )

    def _reset_invocation_state(self) -> None:
        """Clear per-invocation dispatch state after a failed invocation.

        A pool whose ``run()`` raised would otherwise keep stale
        ``_pending`` rows, nonzero ``outstanding`` counts, a stale
        ``_idle`` deque and buffered batches — and nested pools persist
        across invocations, so the *next* parameter stream through the
        same operator would replay stale tuples or under-dispatch.
        Synchronous on purpose: it must be safe to call from the
        ``GeneratorExit`` path of an abandoned generator.
        """
        self._pending.clear()
        self.batcher.discard()
        for child in self.children:
            child.outstanding = 0
            child.inflight.clear()
        for child in self._detached.values():
            child.inflight.clear()
        self._detached.clear()
        self._idle.clear()
        self._idle.extend(self.children)
        self._fail_counts.clear()

    def _dirty(self) -> bool:
        """Leftover per-invocation state from a failed previous run?"""
        return bool(
            self._pending
            or self._detached
            or any(child.outstanding or child.inflight for child in self.children)
        )

    # -- the operator loop ----------------------------------------------------------

    async def run(
        self, source: AsyncIterator[tuple], stop_after: int | None = None
    ) -> AsyncIterator[tuple]:
        """One invocation of the operator over one parameter stream.

        ``stop_after`` is the LIMIT-pushdown protocol: once that many
        result rows exist the pool stops dispatching new parameter tuples,
        drops everything still queued (with in-flight accounting), drains
        the calls already on the wire, and only then emits the final row —
        so the invocation ends normally with exactly ``stop_after`` rows
        and no stray messages for the pool's next use.

        When tracing is on, the whole invocation is wrapped in an
        ``invoke`` span whose id is stamped onto every downlink message
        (``self._inv_span``); the child-side per-call spans use it as
        their parent, which is what links the span tree across the
        process boundary.
        """
        obs = self.ctx.obs
        if not obs.enabled:
            async for row in self._run(source, stop_after):
                yield row
            return
        self._inv_span = obs.start(
            f"invoke:{self.plan_function.name}",
            category="invoke",
            parent=self.ctx.obs_span,
            process=self.ctx.process_name,
            at=self.ctx.kernel.now(),
            plan_function=self.plan_function.name,
            children=len(self.children),
        )
        try:
            async for row in self._run(source, stop_after):
                yield row
        finally:
            obs.finish(
                self._inv_span,
                at=self.ctx.kernel.now(),
                children=len(self.children),
            )
            self._inv_span = -1

    def _early_stop_cleanup(self) -> int:
        """Drop every parameter row not yet on the wire (LIMIT pushdown).

        Returns how many ``in_flight``-counted rows were dropped: the
        pending queue plus the per-child batch buffers (a buffered row was
        counted in ``in_flight`` and in its child's ``outstanding`` at
        dispatch time, but no message ever carried it).
        """
        dropped = len(self._pending)
        self._pending.clear()
        for child in list(self.children) + list(self._detached.values()):
            buffered = self.batcher.take_buffer(child.endpoints.name)
            if buffered:
                dropped += len(buffered)
                child.outstanding = max(0, child.outstanding - len(buffered))
        self.batcher.discard()
        return dropped

    async def _run(
        self, source: AsyncIterator[tuple], stop_after: int | None = None
    ) -> AsyncIterator[tuple]:
        if self._closed:
            raise PlanError("operator pool used after shutdown")
        if not self.children:
            await self.on_first_use()
        self._epoch += 1
        epoch = self._epoch
        if self._dirty():
            # Defensive: the previous invocation failed without running
            # its reset (e.g. its generator was never finalized).
            self._reset_invocation_state()
        self._fail_counts.clear()
        self._ok_in_invocation = 0
        self._failed_in_invocation = 0

        kernel = self.ctx.kernel
        pump = kernel.spawn(
            self._pump(source, epoch), name=f"{self.ctx.process_name}-pump"
        )
        in_flight = 0
        input_done = False
        first_round_announced = False
        # WSQ/DSQ-style ablation: materialize the parameter stream before
        # dispatching instead of streaming (costs.barrier).
        barrier_buffer: list[tuple] | None = [] if self.costs.barrier else None
        # LIMIT pushdown: rows released so far, the held-back final row,
        # and whether the early stop (stop dispatching, drain in-flight)
        # has begun.  The final row is only emitted after the drain, so
        # the invocation always ends with a quiet pool.
        emitted = 0
        final_row: tuple | None = None
        stopping = False

        def begin_stop() -> int:
            """Enter drain mode; returns dropped ``in_flight`` rows."""
            nonlocal stopping, input_done, barrier_buffer
            stopping = True
            input_done = True
            dropped = self._early_stop_cleanup()
            if barrier_buffer is not None:
                dropped += len(barrier_buffer)
                barrier_buffer = None
            self.ctx.trace.record(
                kernel.now(),
                "limit_stop",
                process=self.ctx.process_name,
                plan_function=self.plan_function.name,
                emitted=stop_after,
                dropped=dropped,
            )
            return dropped

        try:
            while True:
                if input_done and not self._pending:
                    # No more rows can join a buffer: release any partial
                    # batches so their end-of-calls can drain in_flight.
                    self.batcher.flush_all("stream_end")
                if input_done and in_flight == 0 and not self._pending:
                    break
                message = await self.inbox.recv()
                if isinstance(message, InputAvailable):
                    if message.epoch != epoch or stopping:
                        continue  # stale input, or the limit is satisfied
                    in_flight += 1
                    if barrier_buffer is not None:
                        barrier_buffer.append(message.row)
                    else:
                        await self._dispatch(message.row)
                elif isinstance(message, InputExhausted):
                    if message.epoch != epoch or stopping:
                        continue
                    input_done = True
                    if barrier_buffer is not None:
                        for row in barrier_buffer:
                            await self._dispatch(row)
                        barrier_buffer = None
                    if not first_round_announced:
                        first_round_announced = True
                        self._broadcast_ready()
                elif isinstance(message, InputFailed):
                    if message.epoch != epoch or stopping:
                        continue  # an input error after the limit is moot
                    raise ReproError(message.message)
                elif isinstance(message, ResultTuple):
                    if message.seq >= 0:
                        owner = self._find_child(message.child)
                        if owner is None or message.seq not in owner.inflight:
                            continue  # row of a call already written off
                    self.batcher.counters.result_tuples += 1
                    self.on_result(message)
                    if stopping:
                        continue  # drained row beyond the limit
                    emitted += 1
                    if stop_after is not None and emitted >= stop_after:
                        final_row = message.row
                        in_flight -= begin_stop()
                    else:
                        yield message.row
                elif isinstance(message, ResultBatch):
                    owner = self._find_child(message.child)
                    if owner is None:
                        continue  # whole batch stale (child evicted)
                    self.batcher.counters.result_batches += 1
                    self.batcher.counters.batched_results += len(message.rows)
                    # Replay the batch as the per-call interleaving of the
                    # per-tuple protocol: each call's rows, then its
                    # end-of-call, in execution order.
                    cursor = 0
                    for end_of_call in message.end_of_calls:
                        rows = message.rows[cursor : cursor + end_of_call.rows]
                        cursor += end_of_call.rows
                        if end_of_call.seq not in owner.inflight:
                            continue  # call of a failed previous run
                        owner.inflight.pop(end_of_call.seq)
                        self._ok_in_invocation += 1
                        for row in rows:
                            self.on_result(
                                ResultTuple(message.child, row, end_of_call.seq)
                            )
                            if stopping:
                                continue
                            emitted += 1
                            if stop_after is not None and emitted >= stop_after:
                                final_row = row
                                in_flight -= begin_stop()
                            else:
                                yield row
                        in_flight -= 1
                        self.batcher.observe(end_of_call)
                        if owner in self.children:
                            self._make_idle(owner)
                        if not stopping:
                            await self.on_end_of_call(end_of_call)
                    self._retire_detached(message.child)
                    for row in message.rows[cursor:]:
                        # Rows of a call that errored mid-way (no end-of-call;
                        # a ChildError follows in FIFO order behind this batch).
                        self.on_result(ResultTuple(message.child, row))
                        if stopping:
                            continue
                        emitted += 1
                        if stop_after is not None and emitted >= stop_after:
                            final_row = row
                            in_flight -= begin_stop()
                        else:
                            yield row
                elif isinstance(message, EndOfCall):
                    owner = self._find_child(message.child)
                    if owner is None or message.seq not in owner.inflight:
                        continue  # call of a failed previous run
                    owner.inflight.pop(message.seq)
                    self._retire_detached(message.child)
                    self._ok_in_invocation += 1
                    self.batcher.counters.end_of_calls += 1
                    in_flight -= 1
                    self.batcher.observe(message)
                    if owner in self.children:
                        self._make_idle(owner)
                    if not stopping:
                        await self.on_end_of_call(message)
                elif isinstance(message, CallFailed):
                    owner = self._find_child(message.child)
                    if owner is None or message.seq not in owner.inflight:
                        continue  # failure of a call already written off
                    row = owner.inflight.pop(message.seq)
                    self._retire_detached(message.child)
                    if stopping:
                        # The limit is satisfied: write the call off with
                        # no retry and no abort — its rows are not needed.
                        in_flight -= 1
                        if owner in self.children:
                            self._make_idle(owner)
                        continue
                    action = self._register_failure(
                        row, child=message.child, seq=message.seq,
                        error=message.message,
                    )
                    await self.on_call_failed(message)
                    if action == "retry":
                        # Redeliver before freeing the failing child's
                        # slot, so another child is preferred.
                        await self._dispatch(row)
                    else:
                        in_flight -= 1
                    if owner in self.children:
                        self._make_idle(owner)
                elif isinstance(message, ChildDied):
                    if self._find_child(message.child) is None:
                        continue  # orderly exit (drop/close) or already evicted
                    detached = message.child in self._detached
                    lost = self._evict(message.child)
                    if stopping:
                        # Draining: the dead child's in-flight calls are
                        # simply written off; no respawn, no abort.
                        in_flight -= len(lost)
                        continue
                    if self.costs.on_error == "fail":
                        raise ReproError(
                            f"query process {message.child} died"
                            + (f": {message.reason}" if message.reason else "")
                        )
                    if not detached:
                        await self._respawn(
                            message.child, message.reason, len(lost)
                        )
                    for seq, row in lost:
                        action = self._register_failure(
                            row, child=message.child, seq=seq,
                            error="query process died"
                            + (f": {message.reason}" if message.reason else ""),
                        )
                        if action == "retry":
                            await self._dispatch(row)
                        else:
                            in_flight -= 1
                elif isinstance(message, ChildError):
                    if self._find_child(message.child) is None:
                        continue  # stale error of a failed previous run
                    # Even under on_error="fail" the dead child must leave
                    # the pool structures, or reusing the (persistent)
                    # pool would dispatch to a process nobody runs.
                    lost = self._evict(message.child)
                    if stopping:
                        in_flight -= len(lost)
                        continue
                    raise ReproError(
                        f"query process {message.child} failed: {message.message}"
                    )
                if not first_round_announced and in_flight >= len(self.children):
                    first_round_announced = True
                    self._broadcast_ready()
            if final_row is not None:
                yield final_row
        except BaseException:
            # Includes GeneratorExit of an abandoned invocation: leave the
            # persistent pool ready for its next parameter stream.
            if epoch == self._epoch and not self._closed:
                self._reset_invocation_state()
            raise
        finally:
            pump.cancel()

    async def _pump(self, source: AsyncIterator[tuple], epoch: int) -> None:
        try:
            async for row in source:
                self.inbox.send(InputAvailable(row, epoch))
        except ReproError as error:
            self.inbox.send(InputFailed(str(error), epoch))
            return
        self.inbox.send(InputExhausted(epoch))

    def _broadcast_ready(self) -> None:
        for child in self.children:
            child.endpoints.downlink.send(ReadyToReceive())

    # -- warm reuse across queries -------------------------------------------------

    def rebind(self, ctx: ExecutionContext) -> None:
        """Re-home this warm pool (and its subtree) into a new query.

        A pool leased from the engine's registry still holds the child
        processes of the query that built it.  ``child_main`` keeps a
        reference to the *same* context object the pool derived at spawn
        time, so pointing that object's per-query fields (trace, call
        recorder, cache registry, retry policy) at the new query's values
        is all it takes for the children's future work to be attributed
        to the new query.  Warm child caches keep their entries — that is
        the point of reuse — but get fresh counters so hit rates are
        per-query.
        """
        self.ctx = ctx
        for child in self.children:
            self._rebind_child(child)
        if ctx.placement is not None:
            # Remote children (ctx is None here) are re-homed inside
            # their workers: new retry policy, fresh cache counters,
            # fresh span recorder.
            ctx.placement.rebind_pool(self)
        self.on_rebind()

    def _rebind_child(self, child: _Child) -> None:
        child_ctx = child.ctx
        if child_ctx is None:  # pool predates warm reuse; nothing to re-home
            return
        child_ctx.trace = self.ctx.trace
        child_ctx.call_recorder = self.ctx.call_recorder
        child_ctx.retries = self.ctx.retries
        child_ctx.retry_backoff = self.ctx.retry_backoff
        child_ctx.cache_registry = self.ctx.cache_registry
        child_ctx._name_counter = self.ctx._name_counter
        child_ctx.obs = self.ctx.obs
        child_ctx.obs_span = self.ctx.obs_span
        child_ctx.shared = self.ctx.shared
        if child_ctx.cache is not None:
            child_ctx.cache.stats = CacheStats()
            self.ctx.cache_registry.append(child_ctx.cache)
        for pool in child_ctx.pools.values():
            pool.rebind(child_ctx)

    def harvest_messages(self) -> None:
        """Record and zero the subtree's message counters for this query.

        A one-query pool reports its counters once, at :meth:`close`; a
        resident pool instead reports at release time so each query's
        ``pool_messages`` trace events carry only that query's traffic.
        """
        if self.batcher.counters.any():
            self.ctx.trace.record(
                self.ctx.kernel.now(),
                "pool_messages",
                process=self.ctx.process_name,
                plan_function=self.plan_function.name,
                **self.batcher.counters.as_dict(),
            )
            self.batcher.counters.reset()
        for child in self.children:
            if child.ctx is None:
                continue
            for pool in child.ctx.pools.values():
                pool.harvest_messages()

    # -- hooks overridden by the adaptive pool -----------------------------------------

    async def on_first_use(self) -> None:
        raise PlanError("ChildPool.on_first_use must be provided by a subclass")

    def on_rebind(self) -> None:
        """Per-pool reset when leased into a new query; FF needs none."""

    def on_result(self, message: ResultTuple) -> None:
        """Monitoring hook; the plain FF pool does nothing here."""

    async def on_end_of_call(self, message: EndOfCall) -> None:
        """Adaptation hook; the plain FF pool does nothing here."""

    async def on_call_failed(self, message: CallFailed) -> None:
        """Monitoring hook for failed calls; the plain FF pool ignores it."""

    # -- shutdown ------------------------------------------------------------------

    async def close(self) -> None:
        """Send shutdown to all children and wait for the subtree to exit."""
        if self._closed:
            return
        self._closed = True
        # An abandoned query may leave partial batches behind; they are
        # discarded exactly like the per-tuple protocol's pending queue.
        self.batcher.discard()
        for child in self.children:
            child.endpoints.downlink.send(Shutdown())
        for child in self.children:
            await child.handle.join()
        self.children.clear()
        self._idle.clear()
        self._by_name.clear()
        self._detached.clear()
        if self.batcher.counters.any():
            self.ctx.trace.record(
                self.ctx.kernel.now(),
                "pool_messages",
                process=self.ctx.process_name,
                plan_function=self.plan_function.name,
                **self.batcher.counters.as_dict(),
            )


class FFPool(ChildPool):
    """The non-adaptive pool: a fixed, manually chosen fanout."""

    def __init__(
        self,
        ctx: ExecutionContext,
        plan_function: PlanFunction,
        costs: ProcessCosts,
        fanout: int,
    ) -> None:
        super().__init__(ctx, plan_function, costs)
        self.fanout = fanout

    async def on_first_use(self) -> None:
        await self.spawn_children(self.fanout)
