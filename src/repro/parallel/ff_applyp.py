"""``FF_APPLYP`` — First Finished Apply in Parallel (Sec. III.A).

The operator keeps a persistent pool of child query processes.  On first
use it spawns ``fanout`` children and ships each the plan function; then,
per invocation, it streams parameter tuples to idle children (one tuple
per child in the first round, then one new tuple per end-of-call — the
first-finished policy) and emits result rows the moment any child delivers
them.

The input stream is drained by a pump task into the operator's inbox, so
one event loop serves input arrival, results, and end-of-call messages
without needing a select primitive.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import AsyncIterator

from repro.algebra.interpreter import ExecutionContext
from repro.algebra.plan import PlanFunction
from repro.cache import stable_hash
from repro.parallel.batching import BatchController
from repro.parallel.costs import ProcessCosts
from repro.parallel.messages import (
    ChildError,
    EndOfCall,
    InputAvailable,
    InputExhausted,
    InputFailed,
    ReadyToReceive,
    ResultBatch,
    ResultTuple,
    ShipPlanFunction,
    Shutdown,
)
from repro.parallel.process import ChildEndpoints, child_main
from repro.runtime.base import ProcessHandle
from repro.util.errors import PlanError, ReproError


@dataclass
class _Child:
    endpoints: ChildEndpoints
    handle: ProcessHandle
    outstanding: int = 0  # parameter tuples shipped but not end-of-called
    added_by_adaptation: bool = False


class ChildPool:
    """Pool of child query processes below one FF/AFF operator instance."""

    def __init__(
        self,
        ctx: ExecutionContext,
        plan_function: PlanFunction,
        costs: ProcessCosts,
    ) -> None:
        self.ctx = ctx
        self.plan_function = plan_function
        self._plan_function_dict = plan_function.to_dict()
        self.costs = costs
        self.inbox = ctx.kernel.channel(
            f"{ctx.process_name}/{plan_function.name}/inbox",
            latency=costs.message_latency,
        )
        self.children: list[_Child] = []
        self._idle: deque[_Child] = deque()
        self._by_name: dict[str, _Child] = {}
        self._pending: deque[tuple] = deque()
        self._seq = 0
        self._rotation = 0  # next child index under round-robin dispatch
        self._closed = False
        self.total_spawned = 0
        self.total_dropped = 0
        self.batcher = BatchController(self)

    # -- child lifecycle ---------------------------------------------------------

    async def spawn_children(self, count: int, *, adaptive: bool = False) -> None:
        """Start ``count`` new children and ship them the plan function.

        The parent pays the per-child shipping cost serially; children
        start up and install concurrently ("ships in parallel").
        """
        kernel = self.ctx.kernel
        for _ in range(count):
            name = self.ctx.next_process_name()
            endpoints = ChildEndpoints(
                name=name,
                downlink=kernel.channel(
                    f"{name}/downlink", latency=self.costs.message_latency
                ),
                uplink=self.inbox,
            )
            child_ctx = self.ctx.for_process(name)

            async def close_nested(child_ctx=child_ctx):
                for pool in list(child_ctx.pools.values()):
                    await pool.close()

            handle = kernel.spawn(
                child_main(child_ctx, self.costs, endpoints, on_exit=close_nested),
                name=name,
            )
            child = _Child(endpoints=endpoints, handle=handle, added_by_adaptation=adaptive)
            self.children.append(child)
            self._by_name[name] = child
            self.total_spawned += 1
            await kernel.sleep(self.costs.ship_function)
            endpoints.downlink.send(ShipPlanFunction(self._plan_function_dict))
            self.ctx.trace.record(
                kernel.now(),
                "spawn",
                parent=self.ctx.process_name,
                process=name,
                plan_function=self.plan_function.name,
                adaptive=adaptive,
            )
            self._make_idle(child)

    def _pipelined(self) -> bool:
        """Whether dispatch may assign several tuples to one child.

        True for ``prefetch > 1`` (the pipelined protocol) and whenever
        batching is enabled — a child must be allowed to hold a whole
        batch even at prefetch depth 1.
        """
        return self.costs.prefetch > 1 or self.batcher.enabled

    def _capacity(self, child: _Child) -> int:
        """Row capacity of a child: ``prefetch`` batches of current size."""
        return self.batcher.capacity(child)

    def _make_idle(self, child: _Child) -> None:
        """End-of-call bookkeeping: the child can take more work."""
        child.outstanding = max(0, child.outstanding - 1)
        if self._pipelined():
            # Refill up to capacity.  Without batching one end-of-call
            # frees exactly one slot, so this takes one pending tuple
            # just like the seed protocol; with batching the child must
            # be topped up to a full batch or its buffer would sit below
            # the size trigger with nothing in flight to trigger it.
            while self._pending and child.outstanding < self._capacity(child):
                self._dispatch_now(child, self._take_pending(child))
                if not self.batcher.enabled:
                    break
            return
        if self._pending:
            self._dispatch_now(child, self._take_pending(child))
        else:
            self._idle.append(child)

    def _dispatch_now(self, child: _Child, row: tuple) -> None:
        child.outstanding += 1
        self.batcher.add(child, row)

    def _affinity_target(self, row: tuple) -> _Child:
        """The child a tuple hashes to under ``hash_affinity`` dispatch."""
        return self.children[stable_hash(row) % len(self.children)]

    def _take_pending(self, child: _Child) -> tuple:
        """Pop the pending tuple this child should run next.

        Under ``hash_affinity``, a tuple whose affinity target is this
        child is preferred, so keys keep landing on the child that has
        them cached; otherwise (and for all other policies) FIFO order.
        """
        if self.costs.dispatch == "hash_affinity" and len(self.children) > 1:
            for index, row in enumerate(self._pending):
                if self._affinity_target(row) is child:
                    del self._pending[index]
                    return row
        return self._pending.popleft()

    async def _dispatch(self, row: tuple) -> None:
        """Ship one parameter tuple (parent pays the shipping cost)."""
        await self.ctx.kernel.sleep(self.costs.ship_param)
        if self.costs.dispatch == "round_robin":
            # Ablation baseline: deal tuples out in fixed rotation without
            # waiting for end-of-call; a slow child accumulates a queue.
            child = self.children[self._rotation % len(self.children)]
            self._rotation += 1
            self._dispatch_now(child, row)
            return
        if self.costs.dispatch == "hash_affinity" and self.children:
            # Cache-affinity placement: route the tuple to the child its
            # key hashes to, so identical keys hit that child's local
            # call cache.  A saturated target falls back to the policies
            # below — first-finished placement beats a growing queue.
            target = self._affinity_target(row)
            if target.outstanding < self._capacity(target):
                try:
                    self._idle.remove(target)
                except ValueError:
                    pass
                self._dispatch_now(target, row)
                return
        if self._pipelined():
            # Pipelined dispatch: the least-loaded child with room takes
            # the tuple (first-finished generalized to depth > 1).
            candidates = [
                child
                for child in self.children
                if child.outstanding < self._capacity(child)
            ]
            if candidates:
                self._dispatch_now(
                    min(candidates, key=lambda child: child.outstanding), row
                )
            else:
                self._pending.append(row)
            return
        while self._idle:
            child = self._idle.popleft()
            if child not in self.children:
                continue  # dropped while idle
            self._dispatch_now(child, row)
            return
        self._pending.append(row)

    # -- the operator loop ----------------------------------------------------------

    async def run(self, source: AsyncIterator[tuple]) -> AsyncIterator[tuple]:
        """One invocation of the operator over one parameter stream."""
        if self._closed:
            raise PlanError("operator pool used after shutdown")
        if not self.children:
            await self.on_first_use()

        kernel = self.ctx.kernel
        pump = kernel.spawn(
            self._pump(source), name=f"{self.ctx.process_name}-pump"
        )
        in_flight = 0
        input_done = False
        first_round_announced = False
        # WSQ/DSQ-style ablation: materialize the parameter stream before
        # dispatching instead of streaming (costs.barrier).
        barrier_buffer: list[tuple] | None = [] if self.costs.barrier else None
        try:
            while True:
                if input_done and not self._pending:
                    # No more rows can join a buffer: release any partial
                    # batches so their end-of-calls can drain in_flight.
                    self.batcher.flush_all("stream_end")
                if input_done and in_flight == 0 and not self._pending:
                    break
                message = await self.inbox.recv()
                if isinstance(message, InputAvailable):
                    in_flight += 1
                    if barrier_buffer is not None:
                        barrier_buffer.append(message.row)
                    else:
                        await self._dispatch(message.row)
                elif isinstance(message, InputExhausted):
                    input_done = True
                    if barrier_buffer is not None:
                        for row in barrier_buffer:
                            await self._dispatch(row)
                        barrier_buffer = None
                    if not first_round_announced:
                        first_round_announced = True
                        self._broadcast_ready()
                elif isinstance(message, InputFailed):
                    raise ReproError(message.message)
                elif isinstance(message, ResultTuple):
                    self.batcher.counters.result_tuples += 1
                    self.on_result(message)
                    yield message.row
                elif isinstance(message, ResultBatch):
                    self.batcher.counters.result_batches += 1
                    self.batcher.counters.batched_results += len(message.rows)
                    # Replay the batch as the per-call interleaving of the
                    # per-tuple protocol: each call's rows, then its
                    # end-of-call, in execution order.
                    cursor = 0
                    for end_of_call in message.end_of_calls:
                        for row in message.rows[cursor : cursor + end_of_call.rows]:
                            self.on_result(ResultTuple(message.child, row))
                            yield row
                        cursor += end_of_call.rows
                        in_flight -= 1
                        self.batcher.observe(end_of_call)
                        child = self._by_name.get(end_of_call.child)
                        if child is not None and child in self.children:
                            self._make_idle(child)
                        await self.on_end_of_call(end_of_call)
                    for row in message.rows[cursor:]:
                        # Rows of a call that errored mid-way (no end-of-call;
                        # a ChildError follows in FIFO order behind this batch).
                        self.on_result(ResultTuple(message.child, row))
                        yield row
                elif isinstance(message, EndOfCall):
                    self.batcher.counters.end_of_calls += 1
                    in_flight -= 1
                    self.batcher.observe(message)
                    child = self._by_name.get(message.child)
                    if child is not None and child in self.children:
                        self._make_idle(child)
                    await self.on_end_of_call(message)
                elif isinstance(message, ChildError):
                    raise ReproError(
                        f"query process {message.child} failed: {message.message}"
                    )
                if not first_round_announced and in_flight >= len(self.children):
                    first_round_announced = True
                    self._broadcast_ready()
        finally:
            pump.cancel()

    async def _pump(self, source: AsyncIterator[tuple]) -> None:
        try:
            async for row in source:
                self.inbox.send(InputAvailable(row))
        except ReproError as error:
            self.inbox.send(InputFailed(str(error)))
            return
        self.inbox.send(InputExhausted())

    def _broadcast_ready(self) -> None:
        for child in self.children:
            child.endpoints.downlink.send(ReadyToReceive())

    # -- hooks overridden by the adaptive pool -----------------------------------------

    async def on_first_use(self) -> None:
        raise PlanError("ChildPool.on_first_use must be provided by a subclass")

    def on_result(self, message: ResultTuple) -> None:
        """Monitoring hook; the plain FF pool does nothing here."""

    async def on_end_of_call(self, message: EndOfCall) -> None:
        """Adaptation hook; the plain FF pool does nothing here."""

    # -- shutdown ------------------------------------------------------------------

    async def close(self) -> None:
        """Send shutdown to all children and wait for the subtree to exit."""
        if self._closed:
            return
        self._closed = True
        # An abandoned query may leave partial batches behind; they are
        # discarded exactly like the per-tuple protocol's pending queue.
        self.batcher.discard()
        for child in self.children:
            child.endpoints.downlink.send(Shutdown())
        for child in self.children:
            await child.handle.join()
        self.children.clear()
        self._idle.clear()
        self._by_name.clear()
        if self.batcher.counters.any():
            self.ctx.trace.record(
                self.ctx.kernel.now(),
                "pool_messages",
                process=self.ctx.process_name,
                plan_function=self.plan_function.name,
                **self.batcher.counters.as_dict(),
            )


class FFPool(ChildPool):
    """The non-adaptive pool: a fixed, manually chosen fanout."""

    def __init__(
        self,
        ctx: ExecutionContext,
        plan_function: PlanFunction,
        costs: ProcessCosts,
        fanout: int,
    ) -> None:
        super().__init__(ctx, plan_function, costs)
        self.fanout = fanout

    async def on_first_use(self) -> None:
        await self.spawn_children(self.fanout)
