"""The child query process.

A query process is spawned by an ``FF_APPLYP``/``AFF_APPLYP`` operator in
its parent.  It first receives its plan function definition (once, before
execution — Sec. III), installs it, then loops: receive a parameter tuple,
execute the plan function for it, stream the result tuples back, send an
end-of-call message, repeat.  A ``Shutdown`` message ends the process,
cascading to any children of nested operators via the executor's pools.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.interpreter import ExecutionContext, iterate_plan
from repro.algebra.plan import PlanFunction
from repro.parallel.costs import ProcessCosts
from repro.parallel.messages import (
    ChildError,
    EndOfCall,
    ParamBatch,
    ParamTuple,
    ResultBatch,
    ResultTuple,
    ShipPlanFunction,
    Shutdown,
)
from repro.runtime.base import Channel
from repro.util.errors import ReproError


@dataclass
class ChildEndpoints:
    """The channels wiring one child into its parent's operator."""

    name: str
    downlink: Channel  # parent -> this child
    uplink: Channel  # this child -> parent (shared inbox)
    calls_handled: int = 0
    rows_emitted: int = 0


async def child_main(
    ctx: ExecutionContext,
    costs: ProcessCosts,
    endpoints: ChildEndpoints,
    on_exit=None,
) -> None:
    """Body of a query process (one level of the tree of Fig 4)."""
    kernel = ctx.kernel
    await kernel.sleep(costs.startup)

    first = await endpoints.downlink.recv()
    if isinstance(first, Shutdown):
        return
    if not isinstance(first, ShipPlanFunction):
        endpoints.uplink.send(
            ChildError(endpoints.name, f"expected a plan function, got {first!r}")
        )
        return
    plan_function = PlanFunction.from_dict(first.plan_function)
    await kernel.sleep(costs.install)
    ctx.trace.record(
        kernel.now(),
        "install",
        process=endpoints.name,
        plan_function=plan_function.name,
    )

    try:
        while True:
            message = await endpoints.downlink.recv()
            if isinstance(message, Shutdown):
                break
            if isinstance(message, ParamTuple):
                rows_for_call = 0
                started = kernel.now()
                try:
                    async for row in iterate_plan(
                        plan_function.body, ctx, param_row=message.row
                    ):
                        await kernel.sleep(costs.result_tuple)
                        endpoints.uplink.send(ResultTuple(endpoints.name, row))
                        rows_for_call += 1
                except ReproError as error:
                    endpoints.uplink.send(ChildError(endpoints.name, str(error)))
                    break
                endpoints.calls_handled += 1
                endpoints.rows_emitted += rows_for_call
                endpoints.uplink.send(
                    EndOfCall(
                        endpoints.name,
                        message.seq,
                        rows_for_call,
                        service_time=kernel.now() - started,
                    )
                )
            elif isinstance(message, ParamBatch):
                # Drain the whole batch as successive calls, buffering the
                # result rows; everything goes back up in one ResultBatch
                # (one message transit) with per-call EndOfCall metadata.
                batch_rows: list[tuple] = []
                end_of_calls: list[EndOfCall] = []
                error_text: str | None = None
                for offset, param_row in enumerate(message.rows):
                    rows_for_call = 0
                    started = kernel.now()
                    try:
                        async for row in iterate_plan(
                            plan_function.body, ctx, param_row=param_row
                        ):
                            await kernel.sleep(costs.result_tuple)
                            batch_rows.append(row)
                            rows_for_call += 1
                    except ReproError as error:
                        error_text = str(error)
                        break
                    endpoints.calls_handled += 1
                    endpoints.rows_emitted += rows_for_call
                    end_of_calls.append(
                        EndOfCall(
                            endpoints.name,
                            message.seq_start + offset,
                            rows_for_call,
                            service_time=kernel.now() - started,
                        )
                    )
                if batch_rows or end_of_calls:
                    endpoints.uplink.send(
                        ResultBatch(
                            endpoints.name,
                            tuple(batch_rows),
                            tuple(end_of_calls),
                        )
                    )
                if error_text is not None:
                    endpoints.uplink.send(ChildError(endpoints.name, error_text))
                    break
            # ReadyToReceive and friends need no child action
    finally:
        if on_exit is not None:
            await on_exit()
        ctx.trace.record(
            kernel.now(),
            "process_exit",
            process=endpoints.name,
            calls=endpoints.calls_handled,
            rows=endpoints.rows_emitted,
        )
