"""The child query process.

A query process is spawned by an ``FF_APPLYP``/``AFF_APPLYP`` operator in
its parent.  It first receives its plan function definition (once, before
execution — Sec. III), installs it, then loops: receive a parameter tuple,
execute the plan function for it, stream the result tuples back, send an
end-of-call message, repeat.  A ``Shutdown`` message ends the process,
cascading to any children of nested operators via the executor's pools.

Failure semantics follow ``ProcessCosts.on_error``:

* ``fail`` (the paper's behavior, the default): the first ``ReproError``
  of a call is reported as a :class:`ChildError` and the process exits —
  the parent aborts the query.
* ``retry``/``skip``: a failed call is reported as a :class:`CallFailed`
  (sequence number, parameter row, error text) and the process *keeps
  serving*; the parent decides what happens to the row.  To make
  redelivery safe, a call's result rows are buffered child-side and only
  shipped after the call succeeded — a failed call therefore contributes
  no output, so re-running it cannot duplicate rows.

``ProcessCosts.faults`` optionally injects deterministic per-call failures
and process crashes (see :mod:`repro.parallel.faults`); a crash escapes
the receive loop entirely, and the parent's death watcher notices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.interpreter import ExecutionContext, iterate_plan
from repro.algebra.plan import PlanFunction
from repro.parallel.costs import ProcessCosts
from repro.parallel.messages import (
    CallFailed,
    ChildError,
    EndOfCall,
    ParamBatch,
    ParamTuple,
    ResultBatch,
    ResultTuple,
    ShipPlanFunction,
    Shutdown,
)
from repro.runtime.base import Channel
from repro.util.errors import ReproError


@dataclass
class ChildEndpoints:
    """The channels wiring one child into its parent's operator."""

    name: str
    downlink: Channel  # parent -> this child
    uplink: Channel  # this child -> parent (shared inbox)
    calls_handled: int = 0
    rows_emitted: int = 0


async def child_main(
    ctx: ExecutionContext,
    costs: ProcessCosts,
    endpoints: ChildEndpoints,
    on_exit=None,
) -> None:
    """Body of a query process (one level of the tree of Fig 4)."""
    kernel = ctx.kernel
    await kernel.sleep(costs.startup)

    first = await endpoints.downlink.recv()
    if isinstance(first, Shutdown):
        return
    if not isinstance(first, ShipPlanFunction):
        endpoints.uplink.send(
            ChildError(endpoints.name, f"expected a plan function, got {first!r}")
        )
        return
    plan_function = PlanFunction.from_dict(first.plan_function)
    await kernel.sleep(costs.install)
    ctx.trace.record(
        kernel.now(),
        "install",
        process=endpoints.name,
        plan_function=plan_function.name,
    )

    if ctx.obs.enabled:
        ctx.obs.instant(
            "install",
            category="event",
            parent=first.span,
            process=endpoints.name,
            at=kernel.now(),
            plan_function=plan_function.name,
        )

    # ctx.obs is read per call (not captured): a warm pool leased into a
    # new query re-homes the recorder via ChildPool.rebind().
    enclosing = [-1]

    def begin_call(seq: int, parent_span: int, started: float) -> int:
        """Open the per-call span and make it the context's enclosing span
        so the web-service spans of the call (and any nested operator's
        invocation spans) nest under it."""
        obs = ctx.obs
        if not obs.enabled:
            return -1
        span = obs.start(
            f"call#{seq}",
            category="call",
            parent=parent_span,
            process=endpoints.name,
            at=started,
            seq=seq,
        )
        enclosing[0] = ctx.obs_span
        ctx.obs_span = span
        return span

    def end_call(span: int, rows: int, error: str | None = None) -> None:
        if span == -1:
            return
        ctx.obs_span = enclosing[0]
        if error is None:
            ctx.obs.finish(span, at=kernel.now(), rows=rows)
        else:
            ctx.obs.finish(span, at=kernel.now(), rows=rows, error=error)

    fail_fast = costs.on_error == "fail"
    injector = (
        costs.faults.injector_for(endpoints.name)
        if costs.faults is not None and costs.faults.active()
        else None
    )

    try:
        while True:
            message = await endpoints.downlink.recv()
            if isinstance(message, Shutdown):
                break
            if isinstance(message, ParamTuple):
                if fail_fast:
                    rows_for_call = 0
                    started = kernel.now()
                    call_span = begin_call(message.seq, message.span, started)
                    try:
                        if injector is not None:
                            injector.before_call()
                        async for row in iterate_plan(
                            plan_function.body, ctx, param_row=message.row
                        ):
                            await kernel.sleep(costs.result_tuple)
                            endpoints.uplink.send(
                                ResultTuple(endpoints.name, row, message.seq)
                            )
                            rows_for_call += 1
                    except ReproError as error:
                        end_call(call_span, rows_for_call, str(error))
                        endpoints.uplink.send(ChildError(endpoints.name, str(error)))
                        break
                    end_call(call_span, rows_for_call)
                    endpoints.calls_handled += 1
                    endpoints.rows_emitted += rows_for_call
                    endpoints.uplink.send(
                        EndOfCall(
                            endpoints.name,
                            message.seq,
                            rows_for_call,
                            service_time=kernel.now() - started,
                        )
                    )
                    continue
                # Contained-failure mode: buffer the call's rows so a
                # failed call ships nothing (redelivery stays exact),
                # report the failure, and keep serving.
                call_rows: list[tuple] = []
                started = kernel.now()
                call_span = begin_call(message.seq, message.span, started)
                try:
                    if injector is not None:
                        injector.before_call()
                    async for row in iterate_plan(
                        plan_function.body, ctx, param_row=message.row
                    ):
                        await kernel.sleep(costs.result_tuple)
                        call_rows.append(row)
                except ReproError as error:
                    end_call(call_span, len(call_rows), str(error))
                    endpoints.uplink.send(
                        CallFailed(
                            endpoints.name, message.seq, message.row, str(error)
                        )
                    )
                    continue
                end_call(call_span, len(call_rows))
                endpoints.calls_handled += 1
                endpoints.rows_emitted += len(call_rows)
                for row in call_rows:
                    endpoints.uplink.send(
                        ResultTuple(endpoints.name, row, message.seq)
                    )
                endpoints.uplink.send(
                    EndOfCall(
                        endpoints.name,
                        message.seq,
                        len(call_rows),
                        service_time=kernel.now() - started,
                    )
                )
            elif isinstance(message, ParamBatch):
                # Drain the whole batch as successive calls, buffering the
                # result rows; everything goes back up in one ResultBatch
                # (one message transit) with per-call EndOfCall metadata.
                batch_rows: list[tuple] = []
                end_of_calls: list[EndOfCall] = []
                error_text: str | None = None
                failures: list[CallFailed] = []
                for offset, param_row in enumerate(message.rows):
                    seq = message.seq_start + offset
                    call_rows = []
                    started = kernel.now()
                    call_span = begin_call(seq, message.span, started)
                    try:
                        if injector is not None:
                            injector.before_call()
                        async for row in iterate_plan(
                            plan_function.body, ctx, param_row=param_row
                        ):
                            await kernel.sleep(costs.result_tuple)
                            call_rows.append(row)
                    except ReproError as error:
                        end_call(call_span, len(call_rows), str(error))
                        if fail_fast:
                            # Seed semantics: ship the partial rows (the
                            # parent replays them as the trailing rows of
                            # the batch), then the error, then exit.
                            batch_rows.extend(call_rows)
                            error_text = str(error)
                            break
                        failures.append(
                            CallFailed(endpoints.name, seq, param_row, str(error))
                        )
                        continue
                    end_call(call_span, len(call_rows))
                    endpoints.calls_handled += 1
                    endpoints.rows_emitted += len(call_rows)
                    batch_rows.extend(call_rows)
                    end_of_calls.append(
                        EndOfCall(
                            endpoints.name,
                            seq,
                            len(call_rows),
                            service_time=kernel.now() - started,
                        )
                    )
                if batch_rows or end_of_calls:
                    endpoints.uplink.send(
                        ResultBatch(
                            endpoints.name,
                            tuple(batch_rows),
                            tuple(end_of_calls),
                        )
                    )
                for failure in failures:
                    endpoints.uplink.send(failure)
                if error_text is not None:
                    endpoints.uplink.send(ChildError(endpoints.name, error_text))
                    break
            # ReadyToReceive and friends need no child action
    finally:
        if on_exit is not None:
            await on_exit()
        ctx.trace.record(
            kernel.now(),
            "process_exit",
            process=endpoints.name,
            calls=endpoints.calls_handled,
            rows=endpoints.rows_emitted,
        )
