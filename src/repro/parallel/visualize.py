"""Process-tree and timeline views of an execution trace.

The trace every run records (spawn / install / process_exit /
service_call / adaptation events) is enough to reconstruct what the
process tree of Fig 4 actually looked like and what each process spent
its time on.  These renderers power ``QueryResult.process_tree()``, the
CLI's ``\\tree`` command and the utilization benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.trace import TraceLog


@dataclass
class ProcessNode:
    """One query process reconstructed from the trace."""

    name: str
    plan_function: str = ""
    spawned_at: float = 0.0
    exited_at: float | None = None
    calls: int = 0
    rows: int = 0
    dropped: bool = False
    children: list["ProcessNode"] = field(default_factory=list)

    def total_processes(self) -> int:
        return 1 + sum(child.total_processes() for child in self.children)


def build_process_tree(trace: TraceLog, root_name: str = "q0") -> ProcessNode:
    """Reconstruct the process tree from spawn/exit/drop events."""
    root = ProcessNode(name=root_name, plan_function="coordinator")
    nodes: dict[str, ProcessNode] = {root_name: root}
    for event in trace:
        if event.kind == "spawn":
            node = ProcessNode(
                name=event.data["process"],
                plan_function=event.data["plan_function"],
                spawned_at=event.time,
            )
            nodes[node.name] = node
            parent = nodes.get(event.data["parent"])
            if parent is not None:
                parent.children.append(node)
        elif event.kind == "process_exit":
            node = nodes.get(event.data["process"])
            if node is not None:
                node.exited_at = event.time
                node.calls = event.data.get("calls", 0)
                node.rows = event.data.get("rows", 0)
        elif event.kind == "drop_stage":
            node = nodes.get(event.data["dropped"])
            if node is not None:
                node.dropped = True
    return root


def render_process_tree(trace: TraceLog, root_name: str = "q0") -> str:
    """ASCII rendering of the process tree (Fig 4 style)."""
    root = build_process_tree(trace, root_name)
    lines: list[str] = []

    def visit(node: ProcessNode, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(f"{node.name} (coordinator)")
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            suffix = " [dropped]" if node.dropped else ""
            lines.append(
                f"{prefix}{connector}{node.name} [{node.plan_function}] "
                f"calls={node.calls} rows={node.rows}{suffix}"
            )
            child_prefix = prefix + ("   " if is_last else "│  ")
        for index, child in enumerate(node.children):
            visit(child, child_prefix, index == len(node.children) - 1, False)

    visit(root, "", True, True)
    return "\n".join(lines)


@dataclass
class ProcessUtilization:
    """How one process spent its lifetime."""

    name: str
    lifetime: float
    busy: float
    calls: int

    @property
    def utilization(self) -> float:
        if self.lifetime <= 0:
            return 0.0
        return min(1.0, self.busy / self.lifetime)


def process_utilization(
    trace: TraceLog, *, end_time: float | None = None
) -> dict[str, ProcessUtilization]:
    """Per-process busy fraction: service-call time over process lifetime.

    Requires the ``service_call`` events the OWF wrapper records.  The
    coordinator (q0) is included; its lifetime spans the whole run.
    """
    spawned: dict[str, float] = {"q0": 0.0}
    exited: dict[str, float] = {}
    busy: dict[str, float] = {}
    calls: dict[str, int] = {}
    last_event = 0.0
    for event in trace:
        last_event = max(last_event, event.time)
        if event.kind == "spawn":
            spawned[event.data["process"]] = event.time
        elif event.kind == "process_exit":
            exited[event.data["process"]] = event.time
        elif event.kind == "service_call":
            process = event.data["process"]
            busy[process] = busy.get(process, 0.0) + event.data["duration"]
            calls[process] = calls.get(process, 0) + 1
    horizon = end_time if end_time is not None else last_event
    report: dict[str, ProcessUtilization] = {}
    for name, started in spawned.items():
        ended = exited.get(name, horizon)
        report[name] = ProcessUtilization(
            name=name,
            lifetime=max(0.0, ended - started),
            busy=busy.get(name, 0.0),
            calls=calls.get(name, 0),
        )
    return report


def peak_concurrency(trace: TraceLog, operation: str | None = None) -> int:
    """Maximum number of overlapping service calls (optionally one op)."""
    points: list[tuple[float, int]] = []
    for event in trace.events("service_call"):
        if operation is not None and event.data["operation"] != operation:
            continue
        start = event.time - event.data["duration"]
        points.append((start, 1))
        points.append((event.time, -1))
    points.sort()
    peak = current = 0
    for _, delta in points:
        current += delta
        peak = max(peak, current)
    return peak


def render_gantt(
    trace: TraceLog,
    *,
    width: int = 72,
    max_processes: int = 20,
    operation: str | None = None,
) -> str:
    """Text gantt of service-call activity per process.

    Each row is one query process; ``#`` cells mark instants where the
    process had a web-service call in flight.  Useful for *seeing* the
    pipelining of a small run; large runs should prefer
    :func:`process_utilization`.
    """
    calls: dict[str, list[tuple[float, float]]] = {}
    horizon = 0.0
    for event in trace.events("service_call"):
        if operation is not None and event.data["operation"] != operation:
            continue
        start = event.time - event.data["duration"]
        calls.setdefault(event.data["process"], []).append((start, event.time))
        horizon = max(horizon, event.time)
    if not calls or horizon <= 0:
        return "(no service calls recorded)"
    scale = width / horizon
    lines = [f"0 {'-' * (width - 10)} {horizon:.1f}s"]
    for process in sorted(calls)[:max_processes]:
        cells = [" "] * width
        for start, end in calls[process]:
            first = min(width - 1, int(start * scale))
            last = min(width - 1, max(first, int(end * scale) - 1))
            for position in range(first, last + 1):
                cells[position] = "#"
        lines.append(f"{process:>6} |{''.join(cells)}|")
    if len(calls) > max_processes:
        lines.append(f"... ({len(calls) - max_processes} more processes)")
    return "\n".join(lines)


def render_utilization(trace: TraceLog, *, top: int = 12) -> str:
    """Text report of the busiest processes."""
    report = process_utilization(trace)
    ordered = sorted(report.values(), key=lambda u: u.busy, reverse=True)[:top]
    lines = [f"{'process':<8} {'calls':>6} {'busy(s)':>9} {'life(s)':>9} {'util':>6}"]
    for entry in ordered:
        lines.append(
            f"{entry.name:<8} {entry.calls:>6} {entry.busy:>9.1f} "
            f"{entry.lifetime:>9.1f} {entry.utilization:>6.0%}"
        )
    return "\n".join(lines)
