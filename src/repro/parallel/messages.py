"""The inter-process message protocol of ``FF_APPLYP`` (Sec. III.A).

Downlink (parent -> child):
    :class:`ShipPlanFunction`, :class:`ParamTuple`, :class:`ParamBatch`,
    :class:`Shutdown`.
Uplink (child -> parent, one shared inbox per operator instance):
    :class:`ResultTuple`, :class:`ResultBatch`, :class:`EndOfCall`,
    :class:`CallFailed`, :class:`ChildError`.
Internal to the parent's event loop (from its input pump task):
    :class:`InputAvailable`, :class:`InputExhausted`, :class:`InputFailed`;
    and from the per-child death watchers: :class:`ChildDied`.

Plan functions travel as serialized dicts — the receiving process
re-hydrates its own copy, which is what makes the code shipping real.

The per-tuple messages (:class:`ParamTuple`/:class:`ResultTuple`) are the
paper's protocol; the batch messages are the micro-batched extension that
amortizes ``message_latency`` over several calls (one message transit per
batch, per-row ship costs unchanged).  With ``ProcessCosts.batch_size=1``
only the per-tuple messages are ever sent — seed behavior, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ShipPlanFunction:
    plan_function: dict  # serialized PlanFunction
    # Observability (repro.obs): id of the sender-side span this message
    # belongs to, so child-side spans can link back to the invocation that
    # produced them across the process boundary.  -1 = tracing off.
    span: int = -1


@dataclass(frozen=True)
class ParamTuple:
    seq: int
    row: tuple
    span: int = -1  # sender-side invocation span (repro.obs); -1 = off


@dataclass(frozen=True)
class ParamBatch:
    """Several parameter tuples in one downlink message.

    Row ``i`` carries sequence number ``seq_start + i``; the child executes
    the rows as successive calls in order.
    """

    seq_start: int
    rows: tuple[tuple, ...]
    span: int = -1  # sender-side invocation span (repro.obs); -1 = off


@dataclass(frozen=True)
class Shutdown:
    reason: str = "query finished"


@dataclass(frozen=True)
class ReadyToReceive:
    """Broadcast after the first round of parameter tuples (Sec. III.A)."""


@dataclass(frozen=True)
class ResultTuple:
    child: str
    row: tuple
    # Sequence number of the call that produced the row, so the parent can
    # discard rows of calls it has already written off (a failed previous
    # invocation of a persistent pool).  -1 = unknown (hand-built
    # messages); such rows are always accepted.
    seq: int = -1


@dataclass(frozen=True)
class ResultBatch:
    """All result rows of one executed :class:`ParamBatch`, plus the
    per-call :class:`EndOfCall` metadata, in one uplink message.

    ``rows`` concatenates the calls' outputs in execution order;
    ``end_of_calls`` has one entry per parameter tuple of the batch, so
    monitoring stays per-call exact even though messaging is batched.
    """

    child: str
    rows: tuple[tuple, ...]
    end_of_calls: tuple["EndOfCall", ...]


@dataclass(frozen=True)
class EndOfCall:
    child: str
    seq: int
    rows: int  # tuples the call produced (monitoring input for AFF)
    # Child-side occupancy of the call in model seconds (plan-function
    # execution including per-row result shipping CPU).  Lets monitoring
    # distinguish slow calls from large results, and feeds the adaptive
    # batch controller.  0.0 when unknown (e.g. hand-built messages).
    service_time: float = 0.0


@dataclass(frozen=True)
class ChildError:
    child: str
    message: str


@dataclass(frozen=True)
class CallFailed:
    """One call failed, but the child keeps serving (``on_error != "fail"``).

    Carries everything the parent needs to handle the failure under its
    policy: the call's sequence number, the parameter row (for
    redelivery), and the error text.  No partial result rows of the call
    were shipped — the child buffers a call's rows until it succeeds, so
    redelivery cannot duplicate output.
    """

    child: str
    seq: int
    row: tuple
    message: str


@dataclass(frozen=True)
class ChildDied:
    """A query process exited without being told to shut down.

    Sent to the parent's inbox by the per-child death watcher, never by
    the child itself, so it arrives even when the child crashed without a
    final message.
    """

    child: str
    reason: str = ""


@dataclass(frozen=True)
class InputAvailable:
    row: tuple
    # Invocation epoch of the pump that sent the message.  A persistent
    # pool whose previous invocation failed can find that invocation's
    # input messages still in its inbox; the epoch lets the next
    # invocation drop them instead of replaying stale tuples.
    epoch: int = 0


@dataclass(frozen=True)
class InputExhausted:
    epoch: int = 0


@dataclass(frozen=True)
class InputFailed:
    message: str
    epoch: int = 0
