"""The inter-process message protocol of ``FF_APPLYP`` (Sec. III.A).

Downlink (parent -> child):
    :class:`ShipPlanFunction`, :class:`ParamTuple`, :class:`Shutdown`.
Uplink (child -> parent, one shared inbox per operator instance):
    :class:`ResultTuple`, :class:`EndOfCall`, :class:`ChildError`.
Internal to the parent's event loop (from its input pump task):
    :class:`InputAvailable`, :class:`InputExhausted`, :class:`InputFailed`.

Plan functions travel as serialized dicts — the receiving process
re-hydrates its own copy, which is what makes the code shipping real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class ShipPlanFunction:
    plan_function: dict  # serialized PlanFunction


@dataclass(frozen=True)
class ParamTuple:
    seq: int
    row: tuple


@dataclass(frozen=True)
class Shutdown:
    reason: str = "query finished"


@dataclass(frozen=True)
class ReadyToReceive:
    """Broadcast after the first round of parameter tuples (Sec. III.A)."""


@dataclass(frozen=True)
class ResultTuple:
    child: str
    row: tuple


@dataclass(frozen=True)
class EndOfCall:
    child: str
    seq: int
    rows: int  # tuples the call produced (monitoring input for AFF)


@dataclass(frozen=True)
class ChildError:
    child: str
    message: str


@dataclass(frozen=True)
class InputAvailable:
    row: tuple


@dataclass(frozen=True)
class InputExhausted:
    pass


@dataclass(frozen=True)
class InputFailed:
    message: str
