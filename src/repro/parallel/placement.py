"""Placement of child query processes onto OS worker processes.

The local kernels run every child of a query-process tree as a coroutine
in the coordinator's event loop.  Under a
:class:`~repro.runtime.multiprocess.ProcessKernel` the
:class:`Placement` layer instead maps each child a pool spawns onto one
of the kernel's OS workers:

* ``ChildPool.spawn_children`` consults ``ctx.placement``; when set, the
  child's downlink becomes a :class:`RemoteDownlink` (envelopes over the
  worker's pipe) and its handle a :class:`RemoteChildHandle` resolved by
  the worker's ``ChildExited`` report — the pool's own protocol loop,
  dispatch policies, fault handling and adaptation run unchanged.
* Children are assigned to workers by a stable hash of the plan-function
  name plus a rotating cursor, so one pool's fanout spreads across the
  fleet while repeated queries land warm children on the same workers.
* Uplink messages are delivered into the owning pool's real inbox
  channel, so the single uplink ``message_latency`` is applied exactly
  once, parent-side (the worker applies the downlink latency).
* Worker-side web-service calls arrive as ``BrokerRequest`` envelopes
  and are served against the *coordinator's* broker — through the
  engine's shared tier when one is attached — so capacity semaphores,
  call statistics, multi-query sharing and fault accounting all stay
  centralized.  (A worker-side ``service_call`` trace event is still
  recorded by the child for a call the shared tier answered, so the
  event count can exceed real round trips under sharing; the counters
  in :class:`~repro.cache.CacheStats` stay exact.)
* Child-side trace events, spans and cache counters stream back and are
  folded into the owning query's trace/span store/cache registry, so
  reports and exports look the same as with in-process children.

A worker death (pipe EOF, missed heartbeats) fails the worker's children
over: their handles resolve with an error, the pools' death watchers
emit ``ChildDied``, and the normal ``on_error`` machinery respawns the
children — on the surviving workers — while the
:class:`~repro.runtime.workers.WorkerPool` respawns the worker slot.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cache import MISS, CacheStats, stable_hash
from repro.runtime.base import Channel, Kernel, ProcessHandle
from repro.runtime.wire import (
    BrokerRequest,
    BrokerResponse,
    CacheSnapshot,
    CancelChild,
    ChildExited,
    FromChild,
    RebindChild,
    SpawnChild,
    SpanBatch,
    ToChild,
    TraceEvents,
)
from repro.runtime.workers import WorkerHandle, WorkerPool
from repro.util.errors import KernelError, ReproError, ServiceFault

#: Worker-side span ids for child N start at N * SPAN_BLOCK, which keeps
#: them disjoint from the coordinator recorder's ids (allocated from 0)
#: and from every other child's, so folding the shipped spans into one
#: store never collides.
SPAN_BLOCK = 1_000_000


class _CacheMirror:
    """Parent-side stand-in for a worker-local child cache.

    Registered in the query's ``cache_registry`` so
    :func:`repro.cache.aggregate_stats` folds the remote child's counters
    (streamed back as ``CacheSnapshot`` envelopes) into the query report
    exactly like an in-process child's cache.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = CacheStats()

    def apply(self, counters: tuple) -> None:
        for field_name, value in counters:
            if hasattr(self.stats, field_name):
                setattr(self.stats, field_name, value)


@dataclass(eq=False)
class _Binding:
    """One remote child: where it lives and what owns it."""

    child_id: int
    name: str
    worker: WorkerHandle
    pool: Any  # the owning repro.parallel.ff_applyp.ChildPool
    span_base: int
    handle: "RemoteChildHandle" = None  # set right after construction
    mirror: Optional[_CacheMirror] = None
    active: bool = True


class RemoteChildHandle(ProcessHandle):
    """Process handle for a child running inside an OS worker.

    Resolved by the worker's ``ChildExited`` report (or by worker death);
    ``join`` then returns or raises like a local handle, so the pool's
    death watcher and ``close`` path work unchanged.
    """

    def __init__(self, placement: "Placement", binding: _Binding) -> None:
        self.name = binding.name
        self._placement = placement
        self._binding = binding
        self._exited = placement.kernel.event()
        self._error: Optional[str] = None

    @property
    def done(self) -> bool:
        return self._exited.is_set()

    async def join(self) -> None:
        await self._exited.wait()
        if self._error is not None:
            raise ReproError(self._error)

    def cancel(self) -> None:
        if not self._exited.is_set():
            self._placement.cancel_child(self._binding)

    def _resolve(self, error: Optional[str]) -> None:
        self._error = error
        self._exited.set()


class RemoteDownlink(Channel):
    """Downlink of a remote child: wraps messages in ``ToChild`` envelopes.

    The worker-side slot owns the real latency-bearing channel; sends to
    a child whose worker died are dropped (the pool learns of the death
    through the child's handle and writes the in-flight rows off).
    """

    def __init__(self, placement: "Placement", binding: _Binding) -> None:
        self._placement = placement
        self._binding = binding

    def send(self, message: Any) -> None:
        binding = self._binding
        if not binding.active:
            return
        self._placement.pool.send(binding.worker, ToChild(binding.child_id, message))

    async def recv(self) -> Any:
        raise KernelError("remote downlink is send-only on the coordinator")

    def pending(self) -> int:
        return 0


class Placement:
    """Maps pool children onto the worker fleet and routes their traffic."""

    def __init__(self, kernel: Kernel, pool: WorkerPool) -> None:
        self.kernel = kernel
        self.pool = pool
        pool.on_message = self._on_message
        pool.on_worker_death = self._on_worker_death
        self._bindings: dict[int, _Binding] = {}
        self._child_ids = itertools.count(1)
        self._cursors: dict[str, int] = {}
        self._functions_shipped: Any = None
        self._services_source: Any = None
        self.worker_errors: list[tuple[int, str]] = []

    # -- registration ------------------------------------------------------

    def attach(
        self,
        ctx,
        *,
        functions=None,
        services=None,
        seed: int = 0,
        fault_rate: float = 0.0,
    ) -> None:
        """Point an execution context at this placement and ship code.

        The function registry grows between queries (``importwsdl``
        registers new OWFs lazily), so it is re-serialized per attach and
        shipped only when its pickled form actually changed; services are
        shipped once per registry object.  Both are replayed automatically
        to respawned workers.
        """
        from repro.runtime.workers import serialize_functions, serialize_services

        ctx.placement = self
        if functions is not None:
            envelope = serialize_functions(functions)
            if (
                self._functions_shipped is None
                or envelope.payload != self._functions_shipped.payload
                or envelope.stubs != self._functions_shipped.stubs
            ):
                self._functions_shipped = envelope
                self.pool.register(envelope)
        if services is not None and services is not self._services_source:
            self._services_source = services
            self.pool.register(
                serialize_services(services, seed=seed, fault_rate=fault_rate)
            )

    # -- spawning ----------------------------------------------------------

    def _pick_worker(self, plan_function_name: str) -> WorkerHandle:
        alive = self.pool.alive_workers()
        if not alive:
            raise ReproError("no live worker processes to place children on")
        cursor = self._cursors.get(plan_function_name)
        if cursor is None:
            cursor = stable_hash(plan_function_name)
        self._cursors[plan_function_name] = cursor + 1
        return alive[cursor % len(alive)]

    def spawn_child(self, child_pool, name: str):
        """Place one new child of ``child_pool``; returns (endpoints, handle)."""
        from repro.parallel.process import ChildEndpoints

        self.pool.ensure_started()
        ctx = child_pool.ctx
        child_id = next(self._child_ids)
        worker = self._pick_worker(child_pool.plan_function.name)
        cache = ctx.cache
        binding = _Binding(
            child_id=child_id,
            name=name,
            worker=worker,
            pool=child_pool,
            span_base=child_id * SPAN_BLOCK,
        )
        binding.handle = RemoteChildHandle(self, binding)
        if cache is not None:
            binding.mirror = _CacheMirror(name)
            ctx.cache_registry.append(binding.mirror)
        self._bindings[child_id] = binding
        self.pool.send(
            worker,
            SpawnChild(
                child_id=child_id,
                name=name,
                costs=child_pool.costs,
                cache_config=None if cache is None else cache.config,
                retries=ctx.retries,
                retry_backoff=ctx.retry_backoff,
                tracing=ctx.obs.enabled,
                span_base=binding.span_base,
            ),
        )
        endpoints = ChildEndpoints(
            name=name,
            downlink=RemoteDownlink(self, binding),
            uplink=child_pool.inbox,
        )
        return endpoints, binding.handle

    def cancel_child(self, binding: _Binding) -> None:
        if binding.active:
            self.pool.send(binding.worker, CancelChild(binding.child_id))

    def rebind_pool(self, child_pool) -> None:
        """Remote half of ``ChildPool.rebind``: re-home warm children."""
        ctx = child_pool.ctx
        for binding in self._bindings.values():
            if binding.pool is not child_pool or not binding.active:
                continue
            if binding.mirror is not None:
                binding.mirror.stats = CacheStats()
                ctx.cache_registry.append(binding.mirror)
            self.pool.send(
                binding.worker,
                RebindChild(
                    child_id=binding.child_id,
                    retries=ctx.retries,
                    retry_backoff=ctx.retry_backoff,
                    tracing=ctx.obs.enabled,
                    span_base=binding.span_base,
                ),
            )

    # -- message routing ---------------------------------------------------

    def _on_message(self, worker: WorkerHandle, message: Any) -> None:
        if isinstance(message, FromChild):
            binding = self._bindings.get(message.child_id)
            if binding is not None:
                binding.pool.inbox.send(message.payload)
        elif isinstance(message, BrokerRequest):
            self.kernel.spawn(
                self._serve_broker(worker, message),
                name=f"broker-proxy-{message.request_id}",
            )
        elif isinstance(message, ChildExited):
            binding = self._bindings.pop(message.child_id, None)
            if binding is not None:
                binding.active = False
                binding.handle._resolve(message.error)
        elif isinstance(message, TraceEvents):
            self._fold_trace(message)
        elif isinstance(message, SpanBatch):
            self._fold_spans(message)
        elif isinstance(message, CacheSnapshot):
            binding = self._bindings.get(message.child_id)
            if binding is not None and binding.mirror is not None:
                binding.mirror.apply(message.counters)

    def _fold_trace(self, message: TraceEvents) -> None:
        binding = self._bindings.get(message.child_id)
        if binding is None:
            if message.child_id == -1:
                for _, _, data in message.events:
                    payload = dict(data)
                    self.worker_errors.append(
                        (payload.get("worker", -1), payload.get("error", ""))
                    )
            return
        trace = binding.pool.ctx.trace
        for time_stamp, kind, data in message.events:
            trace.record(time_stamp, kind, **dict(data))

    def _fold_spans(self, message: SpanBatch) -> None:
        import pickle

        binding = self._bindings.get(message.child_id)
        if binding is None:
            return
        recorder = binding.pool.ctx.obs
        if not recorder.enabled or recorder.store is None:
            return
        for span in pickle.loads(message.payload):
            recorder.store.add(span)

    async def _serve_broker(self, worker: WorkerHandle, request: BrokerRequest) -> None:
        binding = self._bindings.get(request.child_id)
        try:
            if binding is None:
                raise ReproError(
                    f"broker request from unknown child {request.child_id}"
                )
            ctx = binding.pool.ctx
            arguments = list(request.arguments)
            obs = ctx.obs if ctx.obs.enabled else None
            if ctx.shared is not None:
                value, outcome, _coalesced = await ctx.shared.call(
                    ctx.broker,
                    request.uri,
                    request.service,
                    request.operation,
                    arguments,
                    recorder=ctx.call_recorder,
                    obs=obs,
                    obs_span=request.obs_span,
                )
                if outcome != MISS:
                    # Attribution for aggregate_stats: the shared tier is
                    # engine-scoped, so per-query shared_hit/shared_wait
                    # counts come from trace events.
                    ctx.trace.record(
                        self.kernel.now(),
                        outcome,
                        process=binding.name,
                        operation=request.operation,
                    )
            else:
                value = await ctx.broker.call(
                    request.uri,
                    request.service,
                    request.operation,
                    arguments,
                    recorder=ctx.call_recorder,
                    obs=obs,
                    obs_span=request.obs_span,
                )
            reply = BrokerResponse(request.request_id, payload=value)
        except ServiceFault as fault:
            reply = BrokerResponse(
                request.request_id,
                error=("fault", str(fault), fault.retriable),
            )
        except BaseException as error:  # noqa: BLE001 - ship it back typed
            text = str(error) or type(error).__name__
            reply = BrokerResponse(
                request.request_id, error=(type(error).__name__, text, False)
            )
        self.pool.send(worker, reply)

    # -- worker death ------------------------------------------------------

    def _on_worker_death(self, worker: WorkerHandle) -> None:
        """Fail the dead worker's children over before the slot respawns."""
        dead = [
            binding
            for binding in self._bindings.values()
            if binding.worker is worker and binding.active
        ]
        for binding in dead:
            binding.active = False
            del self._bindings[binding.child_id]
            binding.handle._resolve(
                f"worker process {worker.pid} died (child {binding.name})"
            )

    # -- shutdown ----------------------------------------------------------

    def shutdown(self) -> None:
        for binding in list(self._bindings.values()):
            binding.active = False
            try:
                binding.handle._resolve("kernel shut down")
            except RuntimeError:
                pass  # loop already gone; waiters are being cancelled anyway
        self._bindings.clear()
