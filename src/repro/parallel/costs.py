"""Cost parameters of query processes and their messaging.

These model the client-side overheads the paper's experiments include:
starting query processes, shipping plan functions (code shipping),
shipping parameter tuples one by one, and streaming result tuples back.
Together with server capacities they are why ever-larger process trees
stop paying off — the interior optimum of Figs 16/17.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.parallel.faults import FaultInjection
from repro.util.errors import PlanError


@dataclass(frozen=True)
class ProcessCosts:
    """All client-side overheads, in model seconds.

    ``startup``        time for a new query process to become ready.
    ``ship_function``  parent CPU per child to serialize + send a plan
                       function (paid serially per child).
    ``install``        child time to install a received plan function.
    ``ship_param``     parent CPU per parameter tuple shipped.
    ``result_tuple``   child CPU per result tuple streamed back.
    ``message_latency``transit time of any inter-process message.
    ``dispatch``       parameter-tuple dispatch policy: ``first_finished``
                       (the paper's FF policy — the next pending tuple goes
                       to whichever child finished first), ``round_robin``
                       (tuples are dealt out in fixed rotation regardless of
                       child progress; the ablation baseline), or
                       ``hash_affinity`` (tuples are routed to a child by a
                       stable hash of the parameter tuple so repeated keys
                       land on the same child — which is what makes that
                       child's per-process call cache accumulate hits —
                       falling back to first-finished placement while the
                       affinity target is saturated).
    ``prefetch``       how many parameter tuples a child may have
                       outstanding.  1 is the paper's protocol (next tuple
                       only after end-of-call); larger values pipeline the
                       shipping latency at the cost of less adaptive
                       placement.  With batching, the per-child limit is
                       ``prefetch`` *batches* (``prefetch * batch_size``
                       tuples).
    ``batch_size``     parameter/result tuples coalesced per message.  1
                       (the default) is the paper's one-message-per-tuple
                       protocol, reproduced bit for bit; larger values
                       amortize ``message_latency`` over the batch while
                       still paying ``ship_param``/``result_tuple`` per
                       row.
    ``batch_linger``   Nagle-style deadline in model seconds: a partial
                       batch flushes at most this long after its first
                       tuple was buffered.  0 disables the timer (partial
                       batches then flush on stream end).
    ``batch_adaptive`` when True, the per-child batch size is adjusted at
                       run time from observed per-call service time vs.
                       ``message_latency``: cheap calls get large batches,
                       straggler children fall back to batch 1 so
                       first-finished placement stays adaptive.
    ``barrier``        when True, an operator materializes its whole input
                       parameter stream before dispatching — the WSQ/DSQ
                       style of handling dependent joins the paper contrasts
                       itself with (Sec. VI); WSMED's streaming default is
                       False.
    ``on_error``       per-call failure policy of an operator pool:
                       ``fail`` (the paper's behavior and the default — the
                       first failed call aborts the whole query tree),
                       ``retry`` (the failed parameter row is redelivered
                       to a surviving child up to ``max_redeliveries``
                       times, then the query fails), or ``skip`` (the
                       failed row is dropped and counted, the query
                       continues).  Under ``retry``/``skip`` a child that
                       dies is replaced by a freshly spawned one and its
                       in-flight rows are written off per the same policy.
    ``max_redeliveries`` times one parameter row may be redelivered under
                       ``on_error="retry"`` before its failure becomes a
                       query error.
    ``breaker_threshold`` per-pool circuit breaker: once at least
                       ``breaker_min_calls`` calls of one invocation have
                       resolved and more than this fraction of them
                       failed, the pool escalates to ``fail`` regardless
                       of ``on_error`` (a mostly-dead service should abort
                       the query, not grind through redeliveries).
    ``breaker_min_calls`` minimum resolved calls of one invocation before
                       the breaker may trip.
    ``faults``         optional :class:`~repro.parallel.faults.FaultInjection`
                       knobs (per-call failure / child crash probability)
                       for the simulated runtime; None injects nothing.
    """

    startup: float = 0.25
    ship_function: float = 0.05
    install: float = 0.05
    ship_param: float = 0.01
    result_tuple: float = 0.002
    message_latency: float = 0.005
    dispatch: str = "first_finished"
    prefetch: int = 1
    barrier: bool = False
    batch_size: int = 1
    batch_linger: float = 0.0
    batch_adaptive: bool = False
    on_error: str = "fail"
    max_redeliveries: int = 2
    breaker_threshold: float = 0.5
    breaker_min_calls: int = 20
    faults: FaultInjection | None = None

    def __post_init__(self) -> None:
        for name in (
            "startup",
            "ship_function",
            "install",
            "ship_param",
            "result_tuple",
            "message_latency",
        ):
            if getattr(self, name) < 0:
                raise PlanError(f"process cost {name} must be non-negative")
        if self.dispatch not in ("first_finished", "round_robin", "hash_affinity"):
            raise PlanError(f"unknown dispatch policy {self.dispatch!r}")
        if self.prefetch < 1:
            raise PlanError(f"prefetch depth must be >= 1, got {self.prefetch}")
        if self.batch_size < 1:
            raise PlanError(f"batch size must be >= 1, got {self.batch_size}")
        if self.batch_linger < 0:
            raise PlanError(
                f"batch linger must be non-negative, got {self.batch_linger}"
            )
        if self.on_error not in ("fail", "retry", "skip"):
            raise PlanError(
                f"unknown on_error policy {self.on_error!r}; "
                "use fail, retry or skip"
            )
        if self.max_redeliveries < 0:
            raise PlanError(
                f"max_redeliveries must be >= 0, got {self.max_redeliveries}"
            )
        if not 0.0 < self.breaker_threshold <= 1.0:
            raise PlanError(
                f"breaker_threshold must be in (0, 1], got {self.breaker_threshold}"
            )
        if self.breaker_min_calls < 1:
            raise PlanError(
                f"breaker_min_calls must be >= 1, got {self.breaker_min_calls}"
            )

    def scaled(self, factor: float) -> "ProcessCosts":
        """All costs multiplied by ``factor`` (pairs with profile scaling)."""
        if factor < 0:
            raise PlanError(
                f"process cost scale factor must be non-negative, got {factor}"
            )
        return replace(
            self,
            startup=self.startup * factor,
            ship_function=self.ship_function * factor,
            install=self.install * factor,
            ship_param=self.ship_param * factor,
            result_tuple=self.result_tuple * factor,
            message_latency=self.message_latency * factor,
            batch_linger=self.batch_linger * factor,
        )
