"""Wires the parallel operators into the plan interpreter.

The executor installs a ``parallel_handler`` on the execution context:
when the interpreter reaches an ``FF_APPLYP``/``AFF_APPLYP`` node it asks
the handler for the node's (per-process, persistent) pool and streams the
node's input through it.  The executor also guarantees teardown: after the
coordinator's plan finishes — successfully or not — every pool in the tree
receives shutdown and the executor waits for all query processes to exit.
"""

from __future__ import annotations

from typing import AsyncIterator

from repro.algebra.interpreter import ExecutionContext, iterate_plan
from repro.algebra.plan import AFFApplyNode, FFApplyNode, PlanNode
from repro.parallel.aff_applyp import AFFPool
from repro.parallel.costs import ProcessCosts
from repro.parallel.ff_applyp import ChildPool, FFPool
from repro.util.errors import PlanError


class ParallelExecutor:
    """Runs (possibly parallel) plans under one execution context.

    With a ``pool_registry`` (the resident engine's
    :class:`~repro.engine.pools.PoolRegistry`), coordinator-level pools
    are leased from / released to the registry instead of being built and
    torn down per query, so a warm query reuses the previous query's
    child-process trees.  Without one (the seed path) behaviour is
    unchanged: pools are created on first use and closed in ``execute``'s
    ``finally``.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        costs: ProcessCosts | None = None,
        *,
        pool_registry=None,
    ) -> None:
        self.ctx = ctx
        self.costs = costs or ProcessCosts()
        self.pool_registry = pool_registry
        # Fingerprints of registry pools this query currently holds —
        # the acquisition-ordering evidence `lease_or_wait` uses to keep
        # cross-query pool sharing deadlock-free.
        self._held_keys: list[int] = []
        # The registry epoch under which this query's plan is current.
        # The engine constructs the executor in the same kernel step
        # that compiled (or fetched) the plan, so a later condemn — a
        # definition replaced while this query runs — is visible as
        # registry.epoch moving past this snapshot.
        self._lease_epoch = pool_registry.epoch if pool_registry is not None else 0
        ctx.parallel_handler = self._handle

    def _build_pool(self, node: PlanNode, ctx: ExecutionContext) -> ChildPool:
        if isinstance(node, FFApplyNode):
            return FFPool(ctx, node.plan_function, self.costs, node.fanout)
        return AFFPool(ctx, node.plan_function, self.costs, node.params)

    def _pool_for(self, node: PlanNode, ctx: ExecutionContext) -> ChildPool:
        if not isinstance(node, (FFApplyNode, AFFApplyNode)):
            raise PlanError(f"not a parallel operator: {node.label()}")
        # Keyed on the node's stable plan-build identity, never id(node):
        # a garbage-collected node's id can be reused by the allocator and
        # would silently alias another operator's pool.
        pool = ctx.pools.get(node.node_id)
        if pool is not None:
            return pool
        # Only coordinator-level pools go through the registry: pools
        # inside child processes belong to that child's (resident)
        # subtree and already survive with it.
        registry = self.pool_registry if ctx is self.ctx else None
        if registry is not None:
            pool = registry.lease(node, self.costs, ctx)
        if pool is None:
            pool = self._build_pool(node, ctx)
            if registry is not None:
                registry.register(node, self.costs, pool, epoch=self._lease_epoch)
        ctx.pools[node.node_id] = pool
        return pool

    async def _acquire_pool(
        self, node: PlanNode, ctx: ExecutionContext
    ) -> ChildPool:
        """Like :meth:`_pool_for`, but may wait for a busy warm tree.

        Engaged only when the registry's ``share_pools`` is on (the
        sharing engine); every other configuration takes the synchronous
        seed-identical path.
        """
        registry = self.pool_registry if ctx is self.ctx else None
        if registry is None or not registry.share_pools:
            return self._pool_for(node, ctx)
        if not isinstance(node, (FFApplyNode, AFFApplyNode)):
            raise PlanError(f"not a parallel operator: {node.label()}")
        pool = ctx.pools.get(node.node_id)
        if pool is not None:
            return pool
        pool, key = await registry.lease_or_wait(
            node, self.costs, ctx, self._held_keys
        )
        if pool is None:
            pool = self._build_pool(node, ctx)
            registry.register(node, self.costs, pool, epoch=self._lease_epoch)
        self._held_keys.append(key)
        ctx.pools[node.node_id] = pool
        return pool

    async def _handle(
        self,
        node: PlanNode,
        source: AsyncIterator[tuple],
        ctx: ExecutionContext,
        stop_after: int | None = None,
    ) -> AsyncIterator[tuple]:
        pool = await self._acquire_pool(node, ctx)
        async for row in pool.run(source, stop_after=stop_after):
            yield row

    async def execute(self, plan: PlanNode) -> list[tuple]:
        """Run ``plan`` to completion in the coordinator and return rows.

        Pool shutdown runs in a ``finally`` so that failed queries do not
        leak query processes into the kernel (which would deadlock the
        simulated run loop).
        """
        rows: list[tuple] = []
        try:
            async for row in iterate_plan(plan, self.ctx):
                rows.append(row)
        finally:
            for pool in list(self.ctx.pools.values()):
                if self.pool_registry is not None and not pool._closed:
                    # Resident mode: hand the warm tree back instead of
                    # killing it.  The epoch machinery makes releasing
                    # after a failed invocation safe — the next lease's
                    # run() resets per-invocation state and drops stale
                    # messages.
                    self.pool_registry.release(pool)
                else:
                    await pool.close()
            self._held_keys.clear()
        return rows
