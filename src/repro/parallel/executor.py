"""Wires the parallel operators into the plan interpreter.

The executor installs a ``parallel_handler`` on the execution context:
when the interpreter reaches an ``FF_APPLYP``/``AFF_APPLYP`` node it asks
the handler for the node's (per-process, persistent) pool and streams the
node's input through it.  The executor also guarantees teardown: after the
coordinator's plan finishes — successfully or not — every pool in the tree
receives shutdown and the executor waits for all query processes to exit.
"""

from __future__ import annotations

from typing import AsyncIterator

from repro.algebra.interpreter import ExecutionContext, iterate_plan
from repro.algebra.plan import AFFApplyNode, FFApplyNode, PlanNode
from repro.parallel.aff_applyp import AFFPool
from repro.parallel.costs import ProcessCosts
from repro.parallel.ff_applyp import ChildPool, FFPool
from repro.util.errors import PlanError


class ParallelExecutor:
    """Runs (possibly parallel) plans under one execution context.

    With a ``pool_registry`` (the resident engine's
    :class:`~repro.engine.pools.PoolRegistry`), coordinator-level pools
    are leased from / released to the registry instead of being built and
    torn down per query, so a warm query reuses the previous query's
    child-process trees.  Without one (the seed path) behaviour is
    unchanged: pools are created on first use and closed in ``execute``'s
    ``finally``.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        costs: ProcessCosts | None = None,
        *,
        pool_registry=None,
    ) -> None:
        self.ctx = ctx
        self.costs = costs or ProcessCosts()
        self.pool_registry = pool_registry
        ctx.parallel_handler = self._handle

    def _pool_for(self, node: PlanNode, ctx: ExecutionContext) -> ChildPool:
        if not isinstance(node, (FFApplyNode, AFFApplyNode)):
            raise PlanError(f"not a parallel operator: {node.label()}")
        # Keyed on the node's stable plan-build identity, never id(node):
        # a garbage-collected node's id can be reused by the allocator and
        # would silently alias another operator's pool.
        pool = ctx.pools.get(node.node_id)
        if pool is not None:
            return pool
        # Only coordinator-level pools go through the registry: pools
        # inside child processes belong to that child's (resident)
        # subtree and already survive with it.
        registry = self.pool_registry if ctx is self.ctx else None
        if registry is not None:
            pool = registry.lease(node, self.costs, ctx)
        if pool is None:
            if isinstance(node, FFApplyNode):
                pool = FFPool(ctx, node.plan_function, self.costs, node.fanout)
            else:
                pool = AFFPool(ctx, node.plan_function, self.costs, node.params)
            if registry is not None:
                registry.register(node, self.costs, pool)
        ctx.pools[node.node_id] = pool
        return pool

    async def _handle(
        self, node: PlanNode, source: AsyncIterator[tuple], ctx: ExecutionContext
    ) -> AsyncIterator[tuple]:
        pool = self._pool_for(node, ctx)
        async for row in pool.run(source):
            yield row

    async def execute(self, plan: PlanNode) -> list[tuple]:
        """Run ``plan`` to completion in the coordinator and return rows.

        Pool shutdown runs in a ``finally`` so that failed queries do not
        leak query processes into the kernel (which would deadlock the
        simulated run loop).
        """
        rows: list[tuple] = []
        try:
            async for row in iterate_plan(plan, self.ctx):
                rows.append(row)
        finally:
            for pool in list(self.ctx.pools.values()):
                if self.pool_registry is not None and not pool._closed:
                    # Resident mode: hand the warm tree back instead of
                    # killing it.  The epoch machinery makes releasing
                    # after a failed invocation safe — the next lease's
                    # run() resets per-invocation state and drops stale
                    # messages.
                    self.pool_registry.release(pool)
                else:
                    await pool.close()
        return rows
