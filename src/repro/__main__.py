"""``python -m repro`` — the WSMED command-line shell."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
