"""SQL front end.

WSMED queries are expressed in SQL over the flattened OWF views (Figs 1
and 3 of the paper).  This subpackage provides the lexer, AST and a
recursive-descent parser for the dialect those queries use: single-block
``SELECT .. FROM .. WHERE`` with table aliases, conjunctive predicates,
comparison operators, string concatenation with ``+`` and typed literals.
"""

from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Comparison,
    Literal,
    Query,
    SelectItem,
    Star,
    TableRef,
)
from repro.sql.lexer import Token, TokenKind, tokenize
from repro.sql.parser import parse_query

__all__ = [
    "BinaryOp",
    "ColumnRef",
    "Comparison",
    "Literal",
    "Query",
    "SelectItem",
    "Star",
    "TableRef",
    "Token",
    "TokenKind",
    "tokenize",
    "parse_query",
]
