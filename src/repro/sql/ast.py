"""Abstract syntax tree of the SQL dialect, with a pretty-printer.

Every node can render itself back to SQL via ``to_sql`` — used by
``explain`` output and by parser round-trip tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.fdb.values import value_repr


@dataclass(frozen=True)
class Literal:
    """A constant: string, number or boolean."""

    value: Union[str, float, int, bool]

    def to_sql(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return value_repr(self.value)


@dataclass(frozen=True)
class ColumnRef:
    """A column reference, optionally qualified by a table alias."""

    qualifier: str | None
    name: str

    def to_sql(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class BinaryOp:
    """An arithmetic/concatenation expression (only ``+`` in this dialect)."""

    op: str
    left: "Expression"
    right: "Expression"

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} {self.op} {self.right.to_sql()}"


Expression = Union[Literal, ColumnRef, BinaryOp]

#: Aggregate function names the dialect understands (case-insensitive in
#: the source text, canonicalized to lower case here).
AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "min", "max", "avg"})


@dataclass(frozen=True)
class FuncCall:
    """An aggregate call in the select list: ``COUNT(*)``, ``SUM(x)`` ...

    ``argument`` is :class:`Star` only for ``COUNT(*)``; every other
    aggregate takes a scalar expression.
    """

    function: str  # lower-case: count | sum | min | max | avg
    argument: Union[Expression, Star]

    def to_sql(self) -> str:
        return f"{self.function.upper()}({self.argument.to_sql()})"


@dataclass(frozen=True)
class Comparison:
    """One WHERE conjunct: ``left <op> right``."""

    op: str  # '=', '<', '>', '<=', '>=', '<>'
    left: Expression
    right: Expression

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} {self.op} {self.right.to_sql()}"


@dataclass(frozen=True)
class Star:
    """``SELECT *``."""

    def to_sql(self) -> str:
        return "*"


@dataclass(frozen=True)
class SelectItem:
    """One item of the select list, optionally aliased."""

    expression: Union[Expression, "FuncCall"]
    alias: str | None = None

    def to_sql(self) -> str:
        rendered = self.expression.to_sql()
        return f"{rendered} AS {self.alias}" if self.alias else rendered


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause item: a view (OWF) name and its alias."""

    name: str
    alias: str

    def to_sql(self) -> str:
        return f"{self.name} {self.alias}" if self.alias != self.name else self.name


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key: a column reference and its direction."""

    column: ColumnRef
    ascending: bool = True

    def to_sql(self) -> str:
        return f"{self.column.to_sql()}{'' if self.ascending else ' DESC'}"


@dataclass(frozen=True)
class Query:
    """A single-block query.

    ``predicates`` holds the WHERE conjunction when the query has exactly
    one conjunctive branch (the pre-disjunction shape every consumer
    understands).  A WHERE with ``OR`` is normalized to disjunctive
    normal form in ``disjuncts`` — one tuple of comparisons per branch —
    and ``predicates`` is then empty.  ``disjuncts`` is always populated:
    a conjunctive query has exactly one branch, equal to ``predicates``.
    """

    select: tuple[SelectItem, ...] | Star
    tables: tuple[TableRef, ...]
    predicates: tuple[Comparison, ...]
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    group_by: tuple[ColumnRef, ...] = ()
    disjuncts: tuple[tuple[Comparison, ...], ...] = ()

    def __post_init__(self) -> None:
        if not self.disjuncts:
            object.__setattr__(self, "disjuncts", (self.predicates,))

    @property
    def is_disjunctive(self) -> bool:
        return len(self.disjuncts) > 1

    def to_sql(self) -> str:
        if isinstance(self.select, Star):
            select_sql = "*"
        else:
            select_sql = ", ".join(item.to_sql() for item in self.select)
        if self.distinct:
            select_sql = "DISTINCT " + select_sql
        sql = (
            f"SELECT {select_sql} FROM "
            + ", ".join(table.to_sql() for table in self.tables)
        )
        if self.is_disjunctive:
            branches = [
                "(" + " AND ".join(p.to_sql() for p in branch) + ")"
                for branch in self.disjuncts
            ]
            sql += " WHERE " + " OR ".join(branches)
        elif self.predicates:
            sql += " WHERE " + " AND ".join(p.to_sql() for p in self.predicates)
        if self.group_by:
            sql += " GROUP BY " + ", ".join(c.to_sql() for c in self.group_by)
        if self.order_by:
            sql += " ORDER BY " + ", ".join(item.to_sql() for item in self.order_by)
        if self.limit is not None:
            sql += f" LIMIT {self.limit}"
        return sql

    def alias_map(self) -> dict[str, str]:
        """alias -> view name (aliases are case-sensitive, names are not)."""
        return {table.alias: table.name for table in self.tables}
