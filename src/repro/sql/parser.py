"""Recursive-descent parser for the WSMED SQL dialect.

Grammar (conjunctive single-block queries, as in the paper's Figs 1/3)::

    query       := SELECT [DISTINCT] select_list FROM table_list
                   [WHERE conjunction] [ORDER BY order_list] [LIMIT number]
    select_list := '*' | select_item (',' select_item)*
    order_list  := column_ref [ASC|DESC] (',' column_ref [ASC|DESC])*
    select_item := expression [AS identifier | identifier]
    table_list  := table_ref (',' table_ref)*
    table_ref   := identifier [identifier]          -- name plus alias
    conjunction := comparison (AND comparison)*
    comparison  := expression op expression         -- op in = < > <= >= <>
    expression  := term ('+' term)*
    term        := literal | column_ref | '(' expression ')'
    column_ref  := identifier ['.' identifier]
"""

from __future__ import annotations

from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    Star,
    TableRef,
)
from repro.sql.lexer import Token, TokenKind, tokenize
from repro.util.errors import ParseError

_COMPARISON_OPS = ("=", "<=", ">=", "<>", "<", ">")


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.END:
            self._index += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._current
        found = token.text or "end of query"
        return ParseError(f"{message}, found {found!r}", token.line, token.column)

    def _expect_keyword(self, word: str) -> None:
        if not self._current.is_keyword(word):
            raise self._error(f"expected {word}")
        self._advance()

    def _expect_symbol(self, symbol: str) -> None:
        if not self._current.is_symbol(symbol):
            raise self._error(f"expected {symbol!r}")
        self._advance()

    def _expect_identifier(self, what: str) -> str:
        if self._current.kind is not TokenKind.IDENTIFIER:
            raise self._error(f"expected {what}")
        return self._advance().text

    # -- grammar ----------------------------------------------------------------

    def parse(self) -> Query:
        self._expect_keyword("SELECT")
        distinct = False
        if self._current.is_keyword("DISTINCT"):
            self._advance()
            distinct = True
        select = self._select_list()
        self._expect_keyword("FROM")
        tables = self._table_list()
        predicates: tuple[Comparison, ...] = ()
        if self._current.is_keyword("WHERE"):
            self._advance()
            predicates = self._conjunction()
        order_by = self._order_by()
        limit = self._limit()
        if self._current.kind is not TokenKind.END:
            raise self._error("unexpected trailing input")
        return Query(
            select=select,
            tables=tables,
            predicates=predicates,
            distinct=distinct,
            order_by=order_by,
            limit=limit,
        )

    def _order_by(self) -> tuple[OrderItem, ...]:
        if not self._current.is_keyword("ORDER"):
            return ()
        self._advance()
        self._expect_keyword("BY")
        items = [self._order_item()]
        while self._current.is_symbol(","):
            self._advance()
            items.append(self._order_item())
        return tuple(items)

    def _order_item(self) -> OrderItem:
        expression = self._term()
        if not isinstance(expression, ColumnRef):
            raise self._error("ORDER BY expects a column reference")
        ascending = True
        if self._current.is_keyword("ASC"):
            self._advance()
        elif self._current.is_keyword("DESC"):
            self._advance()
            ascending = False
        return OrderItem(expression, ascending)

    def _limit(self) -> int | None:
        if not self._current.is_keyword("LIMIT"):
            return None
        self._advance()
        token = self._current
        if token.kind is not TokenKind.NUMBER or "." in token.text:
            raise self._error("LIMIT expects an integer")
        self._advance()
        value = int(token.text)
        if value < 0:
            raise self._error("LIMIT must be non-negative")
        return value

    def _select_list(self):
        if self._current.is_symbol("*"):
            self._advance()
            return Star()
        items = [self._select_item()]
        while self._current.is_symbol(","):
            self._advance()
            items.append(self._select_item())
        return tuple(items)

    def _select_item(self) -> SelectItem:
        expression = self._expression()
        alias = None
        if self._current.is_keyword("AS"):
            self._advance()
            alias = self._expect_identifier("alias after AS")
        elif self._current.kind is TokenKind.IDENTIFIER:
            alias = self._advance().text
        return SelectItem(expression, alias)

    def _table_list(self) -> tuple[TableRef, ...]:
        tables = [self._table_ref()]
        while self._current.is_symbol(","):
            self._advance()
            tables.append(self._table_ref())
        return tuple(tables)

    def _table_ref(self) -> TableRef:
        name = self._expect_identifier("view name")
        alias = name
        if self._current.kind is TokenKind.IDENTIFIER:
            alias = self._advance().text
        return TableRef(name, alias)

    def _conjunction(self) -> tuple[Comparison, ...]:
        comparisons = [self._comparison()]
        while self._current.is_keyword("AND"):
            self._advance()
            comparisons.append(self._comparison())
        return tuple(comparisons)

    def _comparison(self) -> Comparison:
        left = self._expression()
        token = self._current
        if token.kind is not TokenKind.SYMBOL or token.text not in _COMPARISON_OPS:
            raise self._error("expected a comparison operator")
        self._advance()
        right = self._expression()
        return Comparison(token.text, left, right)

    def _expression(self) -> Expression:
        expression = self._term()
        while self._current.is_symbol("+"):
            self._advance()
            expression = BinaryOp("+", expression, self._term())
        return expression

    def _term(self) -> Expression:
        token = self._current
        if token.is_symbol("("):
            self._advance()
            inner = self._expression()
            self._expect_symbol(")")
            return inner
        if token.kind is TokenKind.STRING:
            self._advance()
            return Literal(token.text)
        if token.kind is TokenKind.NUMBER:
            self._advance()
            if "." in token.text:
                return Literal(float(token.text))
            return Literal(int(token.text))
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.kind is TokenKind.IDENTIFIER:
            first = self._advance().text
            if self._current.is_symbol("."):
                self._advance()
                second = self._expect_identifier("column name after '.'")
                return ColumnRef(first, second)
            return ColumnRef(None, first)
        raise self._error("expected an expression")


def parse_query(text: str) -> Query:
    """Parse SQL ``text`` into a :class:`~repro.sql.ast.Query`."""
    return _Parser(tokenize(text)).parse()
