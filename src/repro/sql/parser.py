"""Recursive-descent parser for the WSMED SQL dialect.

Grammar (single-block queries; Figs 1/3 plus joins, aggregates,
disjunction and GROUP BY)::

    query       := SELECT [DISTINCT] select_list FROM table_list
                   [WHERE disjunction] [GROUP BY column_list]
                   [ORDER BY order_list] [LIMIT number]
    select_list := '*' | select_item (',' select_item)*
    select_item := (expression | aggregate) [AS identifier | identifier]
    aggregate   := (COUNT|SUM|MIN|MAX|AVG) '(' ('*' | expression) ')'
    order_list  := column_ref [ASC|DESC] (',' column_ref [ASC|DESC])*
    column_list := column_ref (',' column_ref)*
    table_list  := table_ref ((',' table_ref) | join)*
    table_ref   := identifier [identifier]          -- name plus alias
    join        := JOIN table_ref ON comparison (AND comparison)*
    disjunction := conjunction (OR conjunction)*
    conjunction := bool_primary (AND bool_primary)*
    bool_primary:= '(' disjunction ')' | comparison
    comparison  := expression op expression         -- op in = < > <= >= <>
    expression  := term ('+' term)*
    term        := literal | column_ref | '(' expression ')'
    column_ref  := identifier ['.' identifier]

A WHERE with ``OR`` is normalized to disjunctive normal form at parse
time; the branches land in :attr:`Query.disjuncts`.  ``JOIN ... ON`` is
pure sugar: the ON comparisons are conjoined into every branch, exactly
as if they had been written in the WHERE clause.
"""

from __future__ import annotations

from repro.sql.ast import (
    AGGREGATE_FUNCTIONS,
    BinaryOp,
    ColumnRef,
    Comparison,
    Expression,
    FuncCall,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    Star,
    TableRef,
)
from repro.sql.lexer import Token, TokenKind, tokenize
from repro.util.errors import ParseError

_COMPARISON_OPS = ("=", "<=", ">=", "<>", "<", ">")

#: Upper bound on WHERE branches after DNF normalization; a query over
#: web services with more disjunctive branches than this is almost
#: certainly a mistake, and the plan would be a union that large.
_MAX_DISJUNCTS = 64


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.END:
            self._index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> ParseError:
        """A positioned error at ``token`` (default: the current token).

        Callers that have already consumed the offending token pass it
        explicitly so the reported line/column point at the construct
        itself, not at whatever happens to follow it.
        """
        token = token if token is not None else self._current
        found = token.text or "end of query"
        return ParseError(f"{message}, found {found!r}", token.line, token.column)

    def _expect_keyword(self, word: str) -> None:
        if not self._current.is_keyword(word):
            raise self._error(f"expected {word}")
        self._advance()

    def _expect_symbol(self, symbol: str) -> None:
        if not self._current.is_symbol(symbol):
            raise self._error(f"expected {symbol!r}")
        self._advance()

    def _expect_identifier(self, what: str) -> str:
        if self._current.kind is not TokenKind.IDENTIFIER:
            raise self._error(f"expected {what}")
        return self._advance().text

    # -- grammar ----------------------------------------------------------------

    def parse(self) -> Query:
        self._expect_keyword("SELECT")
        distinct = False
        if self._current.is_keyword("DISTINCT"):
            self._advance()
            distinct = True
        select = self._select_list()
        self._expect_keyword("FROM")
        tables, join_conditions = self._table_list()
        branches: list[list[Comparison]] = [[]]
        if self._current.is_keyword("WHERE"):
            where_token = self._current
            self._advance()
            branches = self._disjunction()
            if len(branches) > _MAX_DISJUNCTS:
                raise self._error(
                    f"WHERE normalizes to {len(branches)} disjunctive "
                    f"branches (limit {_MAX_DISJUNCTS})",
                    where_token,
                )
        if join_conditions:
            branches = [list(join_conditions) + branch for branch in branches]
        group_by = self._group_by()
        order_by = self._order_by()
        limit = self._limit()
        if self._current.kind is not TokenKind.END:
            raise self._error("unexpected trailing input")
        disjuncts = tuple(tuple(branch) for branch in branches)
        return Query(
            select=select,
            tables=tables,
            predicates=disjuncts[0] if len(disjuncts) == 1 else (),
            distinct=distinct,
            order_by=order_by,
            limit=limit,
            group_by=group_by,
            disjuncts=disjuncts,
        )

    def _group_by(self) -> tuple[ColumnRef, ...]:
        if not self._current.is_keyword("GROUP"):
            return ()
        self._advance()
        self._expect_keyword("BY")
        columns = [self._group_column()]
        while self._current.is_symbol(","):
            self._advance()
            columns.append(self._group_column())
        return tuple(columns)

    def _group_column(self) -> ColumnRef:
        token = self._current
        expression = self._term()
        if not isinstance(expression, ColumnRef):
            raise self._error("GROUP BY expects a column reference", token)
        return expression

    def _order_by(self) -> tuple[OrderItem, ...]:
        if not self._current.is_keyword("ORDER"):
            return ()
        self._advance()
        self._expect_keyword("BY")
        items = [self._order_item()]
        while self._current.is_symbol(","):
            self._advance()
            items.append(self._order_item())
        return tuple(items)

    def _order_item(self) -> OrderItem:
        token = self._current
        expression = self._term()
        if not isinstance(expression, ColumnRef):
            raise self._error("ORDER BY expects a column reference", token)
        ascending = True
        if self._current.is_keyword("ASC"):
            self._advance()
        elif self._current.is_keyword("DESC"):
            self._advance()
            ascending = False
        return OrderItem(expression, ascending)

    def _limit(self) -> int | None:
        if not self._current.is_keyword("LIMIT"):
            return None
        self._advance()
        token = self._current
        if token.kind is not TokenKind.NUMBER or "." in token.text:
            raise self._error("LIMIT expects an integer")
        value = int(token.text)
        if value < 0:
            raise self._error("LIMIT must be non-negative", token)
        self._advance()
        return value

    def _select_list(self):
        if self._current.is_symbol("*"):
            self._advance()
            return Star()
        items = [self._select_item()]
        while self._current.is_symbol(","):
            self._advance()
            items.append(self._select_item())
        return tuple(items)

    def _select_item(self) -> SelectItem:
        expression: Expression | FuncCall
        if (
            self._current.kind is TokenKind.IDENTIFIER
            and self._current.text.lower() in AGGREGATE_FUNCTIONS
            and self._tokens[self._index + 1].is_symbol("(")
        ):
            expression = self._aggregate()
        else:
            expression = self._expression()
        alias = None
        if self._current.is_keyword("AS"):
            self._advance()
            alias = self._expect_identifier("alias after AS")
        elif self._current.kind is TokenKind.IDENTIFIER:
            alias = self._advance().text
        return SelectItem(expression, alias)

    def _aggregate(self) -> FuncCall:
        name_token = self._advance()
        function = name_token.text.lower()
        self._expect_symbol("(")
        if self._current.is_symbol("*"):
            star_token = self._current
            if function != "count":
                raise self._error(
                    f"{function.upper()}(*) is not supported; "
                    f"only COUNT takes '*'",
                    star_token,
                )
            self._advance()
            argument: Expression | Star = Star()
        else:
            argument = self._expression()
        self._expect_symbol(")")
        return FuncCall(function, argument)

    def _table_list(self) -> tuple[tuple[TableRef, ...], tuple[Comparison, ...]]:
        """The FROM clause: comma-separated refs plus JOIN ... ON sugar.

        Returns the table tuple and the ON comparisons (conjoined into
        every WHERE branch by :meth:`parse`).
        """
        tables = [self._table_ref()]
        join_conditions: list[Comparison] = []
        while True:
            if self._current.is_symbol(","):
                self._advance()
                tables.append(self._table_ref())
            elif self._current.is_keyword("JOIN"):
                self._advance()
                tables.append(self._table_ref())
                self._expect_keyword("ON")
                join_conditions.append(self._comparison())
                while self._current.is_keyword("AND"):
                    self._advance()
                    join_conditions.append(self._comparison())
            else:
                break
        return tuple(tables), tuple(join_conditions)

    def _table_ref(self) -> TableRef:
        name = self._expect_identifier("view name")
        alias = name
        if self._current.kind is TokenKind.IDENTIFIER:
            alias = self._advance().text
        return TableRef(name, alias)

    def _disjunction(self) -> list[list[Comparison]]:
        """``conjunction (OR conjunction)*`` in disjunctive normal form.

        Each returned branch is one conjunction of comparisons; a WHERE
        without ``OR`` yields exactly one branch.
        """
        branches = self._and_expr()
        while self._current.is_keyword("OR"):
            self._advance()
            branches = branches + self._and_expr()
        return branches

    def _and_expr(self) -> list[list[Comparison]]:
        result = self._bool_primary()
        while self._current.is_keyword("AND"):
            self._advance()
            right = self._bool_primary()
            # Distribute AND over the branches of both sides (DNF).
            result = [a + b for a in result for b in right]
        return result

    def _bool_primary(self) -> list[list[Comparison]]:
        if self._current.is_symbol("("):
            # '(' is ambiguous: a boolean group or a parenthesized
            # arithmetic expression like (a + b) = c.  Try the boolean
            # reading first and backtrack to a comparison on failure.
            saved = self._index
            self._advance()
            try:
                inner = self._disjunction()
                self._expect_symbol(")")
            except ParseError:
                self._index = saved
            else:
                return inner
        return [[self._comparison()]]

    def _comparison(self) -> Comparison:
        left = self._expression()
        token = self._current
        if token.kind is not TokenKind.SYMBOL or token.text not in _COMPARISON_OPS:
            raise self._error("expected a comparison operator")
        self._advance()
        right = self._expression()
        return Comparison(token.text, left, right)

    def _expression(self) -> Expression:
        expression = self._term()
        while self._current.is_symbol("+"):
            self._advance()
            expression = BinaryOp("+", expression, self._term())
        return expression

    def _term(self) -> Expression:
        token = self._current
        if token.is_symbol("("):
            self._advance()
            inner = self._expression()
            self._expect_symbol(")")
            return inner
        if token.kind is TokenKind.STRING:
            self._advance()
            return Literal(token.text)
        if token.kind is TokenKind.NUMBER:
            self._advance()
            if "." in token.text:
                return Literal(float(token.text))
            return Literal(int(token.text))
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.kind is TokenKind.IDENTIFIER:
            first = self._advance().text
            if self._current.is_symbol("."):
                self._advance()
                second = self._expect_identifier("column name after '.'")
                return ColumnRef(first, second)
            return ColumnRef(None, first)
        raise self._error("expected an expression")


def parse_query(text: str) -> Query:
    """Parse SQL ``text`` into a :class:`~repro.sql.ast.Query`."""
    return _Parser(tokenize(text)).parse()
