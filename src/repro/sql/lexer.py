"""Tokenizer for the WSMED SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.errors import ParseError

KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "AND", "OR", "AS", "TRUE", "FALSE", "NOT",
        "DISTINCT", "GROUP", "ORDER", "BY", "ASC", "DESC", "LIMIT",
        "JOIN", "ON",
    }
)

SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", ",", ".", "(", ")", "*")


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    STRING = "string"
    NUMBER = "number"
    SYMBOL = "symbol"
    END = "end"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def is_symbol(self, symbol: str) -> bool:
        return self.kind is TokenKind.SYMBOL and self.text == symbol

    def __repr__(self) -> str:
        return f"{self.kind.value}:{self.text!r}@{self.line}:{self.column}"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``, ending with a single END token.

    String literals use single quotes with ``''`` as the escape for a
    literal quote.  Keywords are recognized case-insensitively and stored
    upper-case; identifiers keep their original spelling.
    """
    tokens: list[Token] = []
    line, column = 1, 1
    index = 0
    length = len(text)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and text[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = text[index]
        if char in " \t\r\n":
            advance(1)
            continue
        if text.startswith("--", index):  # SQL line comment
            end = text.find("\n", index)
            advance((end if end != -1 else length) - index)
            continue
        start_line, start_column = line, column
        if char == "'":
            value_chars: list[str] = []
            advance(1)
            while True:
                if index >= length:
                    raise ParseError(
                        "unterminated string literal", start_line, start_column
                    )
                if text[index] == "'":
                    if index + 1 < length and text[index + 1] == "'":
                        value_chars.append("'")
                        advance(2)
                        continue
                    advance(1)
                    break
                value_chars.append(text[index])
                advance(1)
            tokens.append(
                Token(TokenKind.STRING, "".join(value_chars), start_line, start_column)
            )
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            end = index
            seen_dot = False
            while end < length and (
                text[end].isdigit() or (text[end] == "." and not seen_dot)
            ):
                if text[end] == ".":
                    # A trailing dot followed by a letter is qualification
                    # (unreachable for numbers, kept for safety).
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            number = text[index:end]
            advance(end - index)
            tokens.append(Token(TokenKind.NUMBER, number, start_line, start_column))
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            advance(end - index)
            if word.upper() in KEYWORDS:
                tokens.append(
                    Token(TokenKind.KEYWORD, word.upper(), start_line, start_column)
                )
            else:
                tokens.append(
                    Token(TokenKind.IDENTIFIER, word, start_line, start_column)
                )
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, index):
                advance(len(symbol))
                canonical = "<>" if symbol == "!=" else symbol
                tokens.append(
                    Token(TokenKind.SYMBOL, canonical, start_line, start_column)
                )
                break
        else:
            raise ParseError(f"unexpected character {char!r}", line, column)
    tokens.append(Token(TokenKind.END, "", line, column))
    return tokens
