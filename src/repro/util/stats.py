"""Small statistics helpers used by monitoring and benchmark reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class RunningStat:
    """Count / sum / min / max / mean over a stream of samples.

    Used by ``AFF_APPLYP`` monitoring cycles and by per-endpoint broker
    statistics, where only cheap aggregates are needed.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean of the samples seen so far; 0.0 when empty."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def merge(self, other: "RunningStat") -> None:
        """Fold another stat into this one (used to aggregate per-child stats)."""
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)


@dataclass
class Welford:
    """Numerically stable streaming mean/variance (Welford's algorithm)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance; 0.0 with fewer than two samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)


def quantile(samples: list[float], q: float) -> float:
    """Linear-interpolation quantile of ``samples`` (q in [0, 1]).

    Raises ``ValueError`` on an empty list or out-of-range ``q`` so callers
    never silently report a quantile of nothing.
    """
    if not samples:
        raise ValueError("quantile of empty sample list")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile fraction out of range: {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight
