"""Deterministic random-number helpers.

All stochastic behaviour in the reproduction (latency jitter, synthetic data
generation) flows from explicit seeds so every experiment is replayable.
``derive_rng`` gives statistically independent sub-streams from a parent seed
and a label, which keeps e.g. the geo data generator independent from the
latency jitter stream even though both come from one experiment seed.
"""

from __future__ import annotations

import hashlib
import random


def stable_hash(*parts: object) -> int:
    """Return a 64-bit hash of ``parts`` that is stable across processes.

    Python's built-in ``hash`` is salted per process, so it cannot be used to
    derive reproducible seeds; this uses blake2b over the repr of each part.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x00")
    return int.from_bytes(digest.digest(), "big")


def derive_rng(seed: int, *labels: object) -> random.Random:
    """Return a ``random.Random`` seeded from ``seed`` and a label path.

    Two calls with the same arguments return generators producing identical
    streams; different labels give independent streams.
    """
    return random.Random(stable_hash(seed, *labels))
