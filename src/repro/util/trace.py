"""Structured trace log.

The adaptive operator and the process tree record their decisions (spawn,
add stage, drop stage, monitoring-cycle measurements) as trace events.  The
benchmark for Figs 18-20 and the adaptation tests read these back, so the
log is structured data rather than text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: a virtual timestamp, a kind tag and payload."""

    time: float
    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # compact, for test failure output
        payload = ", ".join(f"{k}={v!r}" for k, v in sorted(self.data.items()))
        return f"TraceEvent({self.time:.3f}, {self.kind}, {payload})"


class TraceLog:
    """Append-only event log with simple filtered views."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def record(self, time: float, kind: str, **data: Any) -> None:
        self._events.append(TraceEvent(time, kind, data))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """All events, or only those with the given kind tag."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for event in self._events if event.kind == kind)

    def last(self, kind: str) -> TraceEvent:
        """Most recent event of ``kind``; raises ``KeyError`` when absent."""
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        raise KeyError(f"no trace event of kind {kind!r}")
