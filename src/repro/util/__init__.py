"""Shared utilities: error hierarchy, seeded RNG, running statistics, tracing.

These helpers are deliberately dependency-free so every other subpackage can
use them without import cycles.
"""

from repro.util.errors import (
    BindingError,
    CalculusError,
    DeadlockError,
    KernelError,
    ParseError,
    PlanError,
    ReproError,
    ServiceFault,
    UnknownServiceError,
    WsdlError,
)
from repro.util.rng import derive_rng, stable_hash
from repro.util.stats import RunningStat, Welford, quantile
from repro.util.trace import TraceLog, TraceEvent

__all__ = [
    "BindingError",
    "CalculusError",
    "DeadlockError",
    "KernelError",
    "ParseError",
    "PlanError",
    "ReproError",
    "ServiceFault",
    "UnknownServiceError",
    "WsdlError",
    "derive_rng",
    "stable_hash",
    "RunningStat",
    "Welford",
    "quantile",
    "TraceLog",
    "TraceEvent",
]
