"""Exception hierarchy for the whole reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  Subpackages raise the
narrower types below; nothing in the library raises bare ``Exception``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ParseError(ReproError):
    """Raised by the SQL front end on malformed query text.

    Carries the position of the offending token so callers can point at it.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line or column:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


#: Public alias: the SQL front end's error type.  Both names raise/catch
#: the same class, so ``except ParseError`` and ``except SqlError`` are
#: interchangeable.
SqlError = ParseError


class CalculusError(ReproError):
    """Raised when a SQL AST cannot be translated to conjunctive calculus."""


class BindingError(CalculusError):
    """Raised when no predicate ordering satisfies the binding patterns.

    This corresponds to the limited-access-pattern restriction of the paper:
    the input values of every operation wrapper function must be derivable
    from constants or from the outputs of earlier predicates.
    """


class PlanError(ReproError):
    """Raised for malformed algebra plans or invalid plan rewrites."""


class KernelError(ReproError):
    """Raised by an execution kernel for misuse of runtime primitives."""


class DeadlockError(KernelError):
    """Raised by the simulated kernel when no task can make progress.

    The message lists the parked tasks so a protocol bug in an operator is
    immediately diagnosable instead of hanging a test run.
    """


class WsdlError(ReproError):
    """Raised when a WSDL document is malformed or references unknown types."""


class UnknownServiceError(ReproError):
    """Raised when a call names a service or operation that is not registered."""


class ServiceFault(ReproError):
    """A fault returned by a (simulated) web service endpoint.

    Mirrors a SOAP fault: the caller gets a structured error rather than a
    transport failure.  ``retriable`` tells the invoker whether a retry may
    succeed (used by fault-injection tests).
    """

    def __init__(self, message: str, *, retriable: bool = False) -> None:
        self.retriable = retriable
        super().__init__(message)
