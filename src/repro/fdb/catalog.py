"""The WSMED local database schema.

When a WSDL document is imported, its metadata is stored in these
main-memory tables (Sec. III: "The web service metadata in a WSDL document
is first imported and stored in the WSMED local database").  The OWF
generator and the planner read the catalog rather than re-parsing WSDL.
"""

from __future__ import annotations

from repro.fdb.storage import Table
from repro.fdb.types import CHARSTRING, INTEGER, TupleType


def _table(name: str, columns: list[tuple[str, object]]) -> Table:
    return Table(name, TupleType(tuple(columns)))  # type: ignore[arg-type]


class Catalog:
    """Metadata tables: services, operations, parameters, result columns."""

    def __init__(self) -> None:
        self.services = _table(
            "ws_services",
            [("uri", CHARSTRING), ("service", CHARSTRING), ("port", CHARSTRING)],
        )
        self.operations = _table(
            "ws_operations",
            [
                ("uri", CHARSTRING),
                ("service", CHARSTRING),
                ("operation", CHARSTRING),
                ("owf", CHARSTRING),
            ],
        )
        self.parameters = _table(
            "ws_parameters",
            [
                ("owf", CHARSTRING),
                ("position", INTEGER),
                ("name", CHARSTRING),
                ("type", CHARSTRING),
            ],
        )
        self.result_columns = _table(
            "ws_result_columns",
            [
                ("owf", CHARSTRING),
                ("position", INTEGER),
                ("name", CHARSTRING),
                ("type", CHARSTRING),
            ],
        )
        self.operations.create_index("owf")
        self.parameters.create_index("owf")
        self.result_columns.create_index("owf")

    def record_service(self, uri: str, service: str, port: str) -> None:
        self.services.insert((uri, service, port))

    def record_operation(
        self,
        uri: str,
        service: str,
        operation: str,
        owf: str,
        parameters: list[tuple[str, str]],
        result_columns: list[tuple[str, str]],
    ) -> None:
        self.operations.insert((uri, service, operation, owf))
        for position, (name, type_name) in enumerate(parameters):
            self.parameters.insert((owf, position, name, type_name))
        for position, (name, type_name) in enumerate(result_columns):
            self.result_columns.insert((owf, position, name, type_name))

    def owf_names(self) -> list[str]:
        return [row[3] for row in self.operations.scan()]

    def operation_of(self, owf: str) -> tuple[str, str, str]:
        """Return (wsdl uri, service name, operation name) for an OWF."""
        rows = self.operations.lookup("owf", owf)
        if not rows:
            raise KeyError(f"no imported operation for OWF {owf!r}")
        uri, service, operation, _ = rows[0]
        return uri, service, operation

    def parameters_of(self, owf: str) -> list[tuple[str, str]]:
        rows = sorted(self.parameters.lookup("owf", owf), key=lambda r: r[1])
        return [(name, type_name) for _, _, name, type_name in rows]

    def result_columns_of(self, owf: str) -> list[tuple[str, str]]:
        rows = sorted(self.result_columns.lookup("owf", owf), key=lambda r: r[1])
        return [(name, type_name) for _, _, name, type_name in rows]
