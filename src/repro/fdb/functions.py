"""Function registry of the functional DBMS.

Everything callable from a query lives here: generated operation wrapper
functions (OWFs), helping functions such as the paper's ``getzipcode``, and
built-ins such as ``concat``.  Each function carries a typed signature with
a *binding pattern*: which parameters must be bound (``-``, inputs) and
which are produced (``+``, outputs) — the information the planner uses to
order dependent calls (Sec. II).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable

from repro.fdb.types import AtomicType, TupleType
from repro.util.errors import ReproError


class FunctionError(ReproError):
    """Raised on registry misuse: duplicate names, unknown lookups."""


class FunctionKind(enum.Enum):
    """How a function is evaluated."""

    BUILTIN = "builtin"  # pure Python, zero cost in the cost model
    HELPING = "helping"  # user-defined local function, e.g. getzipcode
    OWF = "owf"  # wraps a web-service operation: expensive, remote


@dataclass(frozen=True)
class Parameter:
    """One input parameter: a name and its atomic type."""

    name: str
    type: AtomicType

    def __str__(self) -> str:
        return f"{self.type} {self.name}"


@dataclass
class FunctionDef:
    """A registered function.

    ``implementation`` semantics by kind:

    * BUILTIN / HELPING — a plain callable ``(*args) -> value`` or, when
      ``returns_stream``, ``(*args) -> iterable of rows``.
    * OWF — an :class:`~repro.wsmed.owf.OperationWrapper`; the plan
      interpreter invokes it through the service broker.
    """

    name: str
    kind: FunctionKind
    parameters: tuple[Parameter, ...]
    result: TupleType
    implementation: Any
    returns_stream: bool = True
    documentation: str = ""

    @property
    def arity(self) -> int:
        return len(self.parameters)

    def signature(self) -> str:
        """Signature with binding-pattern annotations, paper style."""
        inputs = ", ".join(f"{p.name}-" for p in self.parameters)
        outputs = ", ".join(f"{name}+" for name in self.result.column_names())
        return f"{self.name}({inputs}{', ' if inputs and outputs else ''}{outputs})"

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.parameters)
        return f"{self.name}({params}) -> Bag of {self.result}"


class FunctionRegistry:
    """Name -> :class:`FunctionDef` map with case-insensitive lookup.

    SQL identifiers are case-insensitive, so the registry resolves
    ``getallstates`` and ``GetAllStates`` to the same function while
    preserving the declared spelling for display.
    """

    def __init__(self) -> None:
        self._functions: dict[str, FunctionDef] = {}

    def register(self, function: FunctionDef) -> None:
        key = function.name.lower()
        if key in self._functions:
            raise FunctionError(f"function {function.name!r} is already registered")
        self._functions[key] = function

    def replace(self, function: FunctionDef) -> None:
        """Register, overwriting any previous definition (re-import of a WSDL)."""
        self._functions[function.name.lower()] = function

    def resolve(self, name: str) -> FunctionDef:
        try:
            return self._functions[name.lower()]
        except KeyError:
            known = ", ".join(sorted(f.name for f in self._functions.values()))
            raise FunctionError(
                f"unknown function {name!r}; registered: {known or '<none>'}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._functions

    def owfs(self) -> list[FunctionDef]:
        return [f for f in self._functions.values() if f.kind is FunctionKind.OWF]

    def all(self) -> list[FunctionDef]:
        return list(self._functions.values())


def helping_function(
    name: str,
    parameters: list[tuple[str, AtomicType]],
    result: TupleType,
    implementation: Callable[..., Any],
    documentation: str = "",
) -> FunctionDef:
    """Convenience constructor for user-defined helping functions."""
    return FunctionDef(
        name=name,
        kind=FunctionKind.HELPING,
        parameters=tuple(Parameter(n, t) for n, t in parameters),
        result=result,
        implementation=implementation,
        documentation=documentation,
    )
