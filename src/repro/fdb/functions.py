"""Function registry of the functional DBMS.

Everything callable from a query lives here: generated operation wrapper
functions (OWFs), helping functions such as the paper's ``getzipcode``, and
built-ins such as ``concat``.  Each function carries a typed signature with
a *binding pattern*: which parameters must be bound (``-``, inputs) and
which are produced (``+``, outputs) — the information the planner uses to
order dependent calls (Sec. II).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable

from repro.fdb.types import AtomicType, TupleType
from repro.util.errors import ReproError


class FunctionError(ReproError):
    """Raised on registry misuse: duplicate names, unknown lookups."""


@dataclass(frozen=True)
class AccessPath:
    """Declares two functions as access paths over one logical relation.

    ``function`` and ``alternative`` enumerate the same set of logical
    rows, but with different binding patterns — e.g. a lookup-by-id view
    and its inverse lookup-by-name view over one directory relation (the
    *path views* of Romero et al., "Equivalent Rewritings on Path Views
    with Binding Patterns").  ``mapping`` renames the canonical
    function's columns (inputs and outputs alike) to the alternative's
    columns; columns missing from the mapping cannot be recovered
    through this path.

    The optimizer's rewrite phase uses declared access paths to replace
    a call whose binding pattern the query cannot satisfy (a
    :class:`~repro.util.errors.BindingError` under the heuristic
    planner) with an equivalent call that the bound variables *can*
    drive.
    """

    function: str
    alternative: str
    mapping: tuple[tuple[str, str], ...]  # (function column, alternative column)

    def mapped(self) -> dict[str, str]:
        return dict(self.mapping)

    def __str__(self) -> str:
        renames = ", ".join(f"{a}->{b}" for a, b in self.mapping)
        return f"{self.function} == {self.alternative} ({renames})"


class FunctionKind(enum.Enum):
    """How a function is evaluated."""

    BUILTIN = "builtin"  # pure Python, zero cost in the cost model
    HELPING = "helping"  # user-defined local function, e.g. getzipcode
    OWF = "owf"  # wraps a web-service operation: expensive, remote


@dataclass(frozen=True)
class Parameter:
    """One input parameter: a name and its atomic type."""

    name: str
    type: AtomicType

    def __str__(self) -> str:
        return f"{self.type} {self.name}"


@dataclass
class FunctionDef:
    """A registered function.

    ``implementation`` semantics by kind:

    * BUILTIN / HELPING — a plain callable ``(*args) -> value`` or, when
      ``returns_stream``, ``(*args) -> iterable of rows``.
    * OWF — an :class:`~repro.wsmed.owf.OperationWrapper`; the plan
      interpreter invokes it through the service broker.
    """

    name: str
    kind: FunctionKind
    parameters: tuple[Parameter, ...]
    result: TupleType
    implementation: Any
    returns_stream: bool = True
    documentation: str = ""

    @property
    def arity(self) -> int:
        return len(self.parameters)

    def signature(self) -> str:
        """Signature with binding-pattern annotations, paper style."""
        inputs = ", ".join(f"{p.name}-" for p in self.parameters)
        outputs = ", ".join(f"{name}+" for name in self.result.column_names())
        return f"{self.name}({inputs}{', ' if inputs and outputs else ''}{outputs})"

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.parameters)
        return f"{self.name}({params}) -> Bag of {self.result}"


class FunctionRegistry:
    """Name -> :class:`FunctionDef` map with case-insensitive lookup.

    SQL identifiers are case-insensitive, so the registry resolves
    ``getallstates`` and ``GetAllStates`` to the same function while
    preserving the declared spelling for display.
    """

    def __init__(self) -> None:
        self._functions: dict[str, FunctionDef] = {}
        # Lower-cased function name -> access paths usable to replace a
        # call of that function (see declare_access_path).
        self._access_paths: dict[str, list[AccessPath]] = {}

    def register(self, function: FunctionDef) -> None:
        key = function.name.lower()
        if key in self._functions:
            raise FunctionError(f"function {function.name!r} is already registered")
        self._functions[key] = function

    def replace(self, function: FunctionDef) -> None:
        """Register, overwriting any previous definition (re-import of a WSDL)."""
        self._functions[function.name.lower()] = function

    def resolve(self, name: str) -> FunctionDef:
        try:
            return self._functions[name.lower()]
        except KeyError:
            known = ", ".join(sorted(f.name for f in self._functions.values()))
            raise FunctionError(
                f"unknown function {name!r}; registered: {known or '<none>'}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._functions

    # -- access-path equivalences ------------------------------------------------

    @staticmethod
    def _columns_of(function: FunctionDef) -> dict[str, str]:
        """Lower-cased column name -> declared spelling, inputs + outputs."""
        columns = {p.name.lower(): p.name for p in function.parameters}
        for name in function.result.column_names():
            columns.setdefault(name.lower(), name)
        return columns

    def declare_access_path(
        self, function: str, alternative: str, mapping: dict[str, str]
    ) -> None:
        """Declare ``alternative`` as an equivalent access path of ``function``.

        ``mapping`` renames columns of ``function`` (inputs or outputs)
        to columns of ``alternative``.  The declaration is symmetric:
        the inverse mapping is registered automatically, so either
        function can be rewritten into the other.  Every *input*
        parameter of a target function must be reachable through the
        mapping, otherwise the rewrite could never construct a call.
        """
        f = self.resolve(function)
        g = self.resolve(alternative)
        if f.name.lower() == g.name.lower():
            raise FunctionError(
                f"cannot declare {f.name!r} as an access path of itself"
            )
        f_columns = self._columns_of(f)
        g_columns = self._columns_of(g)
        normalized: list[tuple[str, str]] = []
        for f_col, g_col in mapping.items():
            if f_col.lower() not in f_columns:
                raise FunctionError(
                    f"access path mapping names {f_col!r}, which is not a "
                    f"column of {f.name!r}"
                )
            if g_col.lower() not in g_columns:
                raise FunctionError(
                    f"access path mapping names {g_col!r}, which is not a "
                    f"column of {g.name!r}"
                )
            normalized.append(
                (f_columns[f_col.lower()], g_columns[g_col.lower()])
            )
        if len({a.lower() for a, _ in normalized}) != len(normalized) or len(
            {b.lower() for _, b in normalized}
        ) != len(normalized):
            raise FunctionError(
                f"access path mapping between {f.name!r} and {g.name!r} "
                "must be one-to-one"
            )
        for target, columns, side in (
            (g, {b.lower() for _, b in normalized}, "values"),
            (f, {a.lower() for a, _ in normalized}, "keys"),
        ):
            unmapped = [
                p.name for p in target.parameters if p.name.lower() not in columns
            ]
            if unmapped:
                raise FunctionError(
                    f"access path mapping {side} must cover every input of "
                    f"{target.name!r}; missing: {unmapped}"
                )
        forward = AccessPath(f.name, g.name, tuple(sorted(normalized)))
        backward = AccessPath(
            g.name, f.name, tuple(sorted((b, a) for a, b in normalized))
        )
        self._access_paths.setdefault(f.name.lower(), []).append(forward)
        self._access_paths.setdefault(g.name.lower(), []).append(backward)

    def access_paths(self, name: str) -> list[AccessPath]:
        """Declared alternatives for calls of ``name`` (may be empty)."""
        return list(self._access_paths.get(name.lower(), []))

    def owfs(self) -> list[FunctionDef]:
        return [f for f in self._functions.values() if f.kind is FunctionKind.OWF]

    def all(self) -> list[FunctionDef]:
        return list(self._functions.values())


def helping_function(
    name: str,
    parameters: list[tuple[str, AtomicType]],
    result: TupleType,
    implementation: Callable[..., Any],
    documentation: str = "",
) -> FunctionDef:
    """Convenience constructor for user-defined helping functions."""
    return FunctionDef(
        name=name,
        kind=FunctionKind.HELPING,
        parameters=tuple(Parameter(n, t) for n, t in parameters),
        result=result,
        implementation=implementation,
        documentation=documentation,
    )
