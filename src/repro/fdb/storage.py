"""Main-memory tables with hash indexes.

Used for the WSMED local database: imported WSDL metadata (services,
operations, parameters) is stored here, and the query planner consults it
to resolve OWF signatures.  The implementation is a straightforward
row-store; queries over web services never touch disk in WSMED either.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.fdb.types import TupleType
from repro.util.errors import ReproError


class StorageError(ReproError):
    """Raised on schema violations: wrong arity, unknown column, etc."""


class Table:
    """A named, schema-checked, main-memory row store.

    Rows are plain tuples in column order.  ``create_index`` builds a hash
    index over one column; ``lookup`` uses it when present and falls back
    to a scan otherwise, so callers never need to care.
    """

    def __init__(self, name: str, row_type: TupleType) -> None:
        self.name = name
        self.row_type = row_type
        self._columns = row_type.column_names()
        self._positions = {column: i for i, column in enumerate(self._columns)}
        self._rows: list[tuple] = []
        self._indexes: dict[str, dict[Any, list[int]]] = {}

    # -- schema ---------------------------------------------------------------

    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    def position(self, column: str) -> int:
        try:
            return self._positions[column]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no column {column!r}; "
                f"columns: {', '.join(self._columns)}"
            ) from None

    # -- updates ----------------------------------------------------------------

    def insert(self, row: Iterable[Any]) -> None:
        stored = tuple(row)
        if len(stored) != len(self._columns):
            raise StorageError(
                f"table {self.name!r} expects {len(self._columns)} columns, "
                f"got {len(stored)}"
            )
        for (column, atom), value in zip(self.row_type.columns, stored):
            if value is not None and not atom.accepts(value):
                raise StorageError(
                    f"column {column!r} of table {self.name!r} expects {atom}, "
                    f"got {value!r}"
                )
        position = len(self._rows)
        self._rows.append(stored)
        for column, index in self._indexes.items():
            index.setdefault(stored[self.position(column)], []).append(position)

    def insert_many(self, rows: Iterable[Iterable[Any]]) -> None:
        for row in rows:
            self.insert(row)

    def clear(self) -> None:
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()

    # -- reads -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def scan(self) -> Iterator[tuple]:
        return iter(self._rows)

    def create_index(self, column: str) -> None:
        position = self.position(column)
        index: dict[Any, list[int]] = {}
        for row_number, row in enumerate(self._rows):
            index.setdefault(row[position], []).append(row_number)
        self._indexes[column] = index

    def lookup(self, column: str, value: Any) -> list[tuple]:
        """All rows whose ``column`` equals ``value``."""
        if column in self._indexes:
            return [self._rows[i] for i in self._indexes[column].get(value, [])]
        position = self.position(column)
        return [row for row in self._rows if row[position] == value]

    def select(self, predicate: Callable[[tuple], bool]) -> list[tuple]:
        return [row for row in self._rows if predicate(row)]

    def project(self, columns: list[str]) -> list[tuple]:
        positions = [self.position(column) for column in columns]
        return [tuple(row[p] for p in positions) for row in self._rows]
