"""Functional main-memory DBMS substrate.

WSMED extends a main-memory *functional* DBMS (Amos II) with web-service
primitives.  This subpackage reproduces the parts of that substrate the
paper relies on:

* the value model — atomic values plus :class:`~repro.fdb.values.Record`,
  :class:`~repro.fdb.values.Sequence` and :class:`~repro.fdb.values.Bag`,
  which is what the ``cwo`` built-in materializes web-service results into
  (Fig 2 of the paper navigates exactly these),
* typed function signatures with binding patterns,
* main-memory tables with hash indexes, used for the WSMED local database
  that stores imported WSDL metadata (Sec. III).
"""

from repro.fdb.values import Bag, Record, Sequence, value_repr
from repro.fdb.types import (
    AtomicType,
    BagType,
    BOOLEAN,
    CHARSTRING,
    INTEGER,
    REAL,
    RecordType,
    SequenceType,
    TupleType,
    TypeError_,
    infer_type,
)
from repro.fdb.storage import Table
from repro.fdb.functions import FunctionDef, FunctionKind, FunctionRegistry, Parameter
from repro.fdb.catalog import Catalog

__all__ = [
    "Bag",
    "Record",
    "Sequence",
    "value_repr",
    "AtomicType",
    "BagType",
    "BOOLEAN",
    "CHARSTRING",
    "INTEGER",
    "REAL",
    "RecordType",
    "SequenceType",
    "TupleType",
    "TypeError_",
    "infer_type",
    "Table",
    "FunctionDef",
    "FunctionKind",
    "FunctionRegistry",
    "Parameter",
    "Catalog",
]
