"""Type descriptors for function signatures and WSDL result schemas.

The OWF generator walks a :class:`RecordType`/:class:`SequenceType` tree
describing a web-service result (derived from the WSDL ``types`` section)
to produce a flattening program, exactly as WSMED generates Fig 2 from the
``GetAllStates`` WSDL definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.fdb.values import Record, Sequence
from repro.util.errors import ReproError


class TypeError_(ReproError):
    """Raised on type mismatches; trailing underscore avoids the builtin."""


@dataclass(frozen=True)
class AtomicType:
    """An atomic database type: Charstring, Real, Integer or Boolean."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __reduce__(self):
        # Several call sites compare atoms by identity (`atom is REAL`),
        # so unpickling — e.g. a plan function shipped to a worker
        # process — must yield the module singletons, not copies.
        return (_restore_atomic, (self.name,))

    def accepts(self, value: Any) -> bool:
        if self.name == "Charstring":
            return isinstance(value, str)
        if self.name == "Real":
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self.name == "Integer":
            return isinstance(value, int) and not isinstance(value, bool)
        if self.name == "Boolean":
            return isinstance(value, bool)
        raise TypeError_(f"unknown atomic type {self.name!r}")


CHARSTRING = AtomicType("Charstring")
REAL = AtomicType("Real")
INTEGER = AtomicType("Integer")
BOOLEAN = AtomicType("Boolean")

_ATOMS = {t.name: t for t in (CHARSTRING, REAL, INTEGER, BOOLEAN)}


def _restore_atomic(name: str) -> AtomicType:
    """Unpickle hook: map an atom name back to its interned singleton."""
    atom = _ATOMS.get(name)
    if atom is not None:
        return atom
    return AtomicType(name)


def atomic(name: str) -> AtomicType:
    """Look up an atomic type by name (case-insensitive)."""
    try:
        return _ATOMS[name.capitalize() if name.islower() else name]
    except KeyError:
        raise TypeError_(f"unknown atomic type {name!r}") from None


@dataclass(frozen=True)
class RecordType:
    """A record with named, typed fields (order preserved for display)."""

    fields: tuple[tuple[str, "ValueType"], ...]

    def field_type(self, name: str) -> "ValueType":
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        raise TypeError_(f"record type has no field {name!r}")

    def field_names(self) -> list[str]:
        return [name for name, _ in self.fields]

    def __str__(self) -> str:
        inner = ", ".join(f"{name}: {ftype}" for name, ftype in self.fields)
        return f"Record<{inner}>"


@dataclass(frozen=True)
class SequenceType:
    """An ordered collection of one element type."""

    element: "ValueType"

    def __str__(self) -> str:
        return f"Sequence of {self.element}"


@dataclass(frozen=True)
class BagType:
    """An unordered collection of one element type (OWF results)."""

    element: "ValueType"

    def __str__(self) -> str:
        return f"Bag of {self.element}"


@dataclass(frozen=True)
class TupleType:
    """A flat tuple of named atomic columns — the row type of OWF views."""

    columns: tuple[tuple[str, AtomicType], ...] = field(default=())

    def column_names(self) -> list[str]:
        return [name for name, _ in self.columns]

    def column_type(self, name: str) -> AtomicType:
        for cname, ctype in self.columns:
            if cname == name:
                return ctype
        raise TypeError_(f"tuple type has no column {name!r}")

    def __str__(self) -> str:
        inner = ", ".join(f"{atom} {name}" for name, atom in self.columns)
        return f"<{inner}>"


ValueType = AtomicType | RecordType | SequenceType | BagType | TupleType


def infer_type(value: Any) -> ValueType:
    """Infer the database type of a runtime value.

    Collections infer their element type from the first element; empty
    collections infer ``Charstring`` elements, which is the least surprising
    default for web-service payloads.
    """
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, str):
        return CHARSTRING
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return REAL
    if isinstance(value, Record):
        return RecordType(
            tuple((name, infer_type(item)) for name, item in value.items())
        )
    if isinstance(value, Sequence):
        first = next(iter(value), None)
        return SequenceType(CHARSTRING if first is None else infer_type(first))
    raise TypeError_(f"cannot infer database type of {value!r}")
