"""Value model of the functional DBMS.

Web-service results are temporarily materialized in the local store as
nested :class:`Record` and :class:`Sequence` objects (the paper's Fig 2
navigates them with ``r[a]`` attribute access and the ``in`` operator).
Atomic values are plain Python ``str`` / ``float`` / ``int`` / ``bool``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator


class Record:
    """An attribute/value record.  ``record[attr]`` accesses an attribute.

    Attribute names are case-sensitive, matching the generated OWFs which
    use the exact element names from the WSDL.  Lookup of a missing
    attribute raises ``KeyError`` with the available names, because a typo
    in a flattening path should fail loudly.
    """

    __slots__ = ("_attrs",)

    def __init__(self, attrs: dict[str, Any] | Iterable[tuple[str, Any]] = ()) -> None:
        self._attrs = dict(attrs)

    def __getitem__(self, name: str) -> Any:
        try:
            return self._attrs[name]
        except KeyError:
            available = ", ".join(sorted(self._attrs)) or "<empty>"
            raise KeyError(
                f"record has no attribute {name!r}; available: {available}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._attrs

    def get(self, name: str, default: Any = None) -> Any:
        return self._attrs.get(name, default)

    def attributes(self) -> list[str]:
        return list(self._attrs)

    def items(self) -> Iterable[tuple[str, Any]]:
        return self._attrs.items()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Record) and self._attrs == other._attrs

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, _hashable(v)) for k, v in self._attrs.items())))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}: {value_repr(v)}" for k, v in self._attrs.items())
        return f"{{{inner}}}"


class Sequence:
    """An ordered collection; ``for x in seq`` iterates its elements."""

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._items = list(items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Any:
        return self._items[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Sequence) and self._items == other._items

    def __hash__(self) -> int:
        return hash(tuple(_hashable(item) for item in self._items))

    def __repr__(self) -> str:
        return "[" + ", ".join(value_repr(item) for item in self._items) + "]"


class Bag:
    """An unordered collection with duplicates — the result type of OWFs.

    Equality is multiset equality, so tests comparing query results are not
    sensitive to delivery order (parallel plans deliver first-finished).
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._items = list(items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def add(self, item: Any) -> None:
        self._items.append(item)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bag):
            return NotImplemented
        if len(self._items) != len(other._items):
            return False
        return _sorted_by_repr(self._items) == _sorted_by_repr(other._items)

    def __repr__(self) -> str:
        return "Bag(" + ", ".join(value_repr(item) for item in self._items) + ")"


def _sorted_by_repr(items: list[Any]) -> list[Any]:
    return sorted(items, key=repr)


def _hashable(value: Any) -> Any:
    if isinstance(value, (Record, Sequence)):
        return hash(value)
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    return value


def value_repr(value: Any) -> str:
    """Compact display form used in plan explanations and test output."""
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:g}"
    return repr(value)
