"""Conjunctive calculus: the planner's internal query representation.

The calculus generator translates a parsed SQL query into a conjunction of
function predicates in a Datalog dialect (paper Sec. IV), where each OWF or
helping-function view becomes a predicate whose *input* arguments must be
bound — by constants or by output variables of other predicates — before it
can be evaluated (the limited-access-pattern restriction of Florescu et
al. [7], annotated ``-``/``+`` in Sec. II).
"""

from repro.calculus.expressions import (
    ArgExpr,
    CalculusQuery,
    Concat,
    Const,
    FilterPredicate,
    FunctionPredicate,
    HeadItem,
    Var,
)
from repro.calculus.generator import generate_calculus

__all__ = [
    "ArgExpr",
    "CalculusQuery",
    "Concat",
    "Const",
    "FilterPredicate",
    "FunctionPredicate",
    "HeadItem",
    "Var",
    "generate_calculus",
]
