"""Calculus expression and predicate types."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.fdb.values import value_repr


@dataclass(frozen=True)
class Var:
    """A query variable, named ``<alias>_<column>`` for readability."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant argument."""

    value: object

    def __str__(self) -> str:
        return value_repr(self.value)


@dataclass(frozen=True)
class Concat:
    """String concatenation of sub-expressions (the dialect's only ``+``)."""

    parts: tuple["ArgExpr", ...]

    def __str__(self) -> str:
        return "concat(" + ", ".join(str(part) for part in self.parts) + ")"


ArgExpr = Union[Var, Const, Concat]


def variables_of(expression: ArgExpr) -> set[Var]:
    """All variables referenced by an argument expression."""
    if isinstance(expression, Var):
        return {expression}
    if isinstance(expression, Concat):
        found: set[Var] = set()
        for part in expression.parts:
            found |= variables_of(part)
        return found
    return set()


@dataclass(frozen=True)
class FunctionPredicate:
    """A call predicate: ``f(in1-, in2-, out1+, out2+)``.

    ``arguments`` are the input expressions (must become bound before the
    predicate can execute); ``outputs`` are the variables its result stream
    binds.  ``alias`` remembers the SQL table alias for diagnostics.
    """

    function: str  # registered function name (OWF or helping function)
    alias: str
    arguments: tuple[ArgExpr, ...]
    outputs: tuple[Var, ...]

    def input_variables(self) -> set[Var]:
        found: set[Var] = set()
        for argument in self.arguments:
            found |= variables_of(argument)
        return found

    def __str__(self) -> str:
        rendered_inputs = ", ".join(str(a) for a in self.arguments)
        rendered_outputs = ", ".join(str(o) for o in self.outputs)
        arrow = f" -> ({rendered_outputs})" if self.outputs else ""
        return f"{self.function}({rendered_inputs}){arrow}"


@dataclass(frozen=True)
class FilterPredicate:
    """A comparison over already-bound values: ``left <op> right``."""

    op: str  # '=', '<', '>', '<=', '>=', '<>'
    left: ArgExpr
    right: ArgExpr

    def input_variables(self) -> set[Var]:
        return variables_of(self.left) | variables_of(self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


Predicate = Union[FunctionPredicate, FilterPredicate]


@dataclass(frozen=True)
class HeadItem:
    """One projected result column: an output name and its expression.

    Usually the expression is a plain :class:`Var`; selecting an *input*
    column of a view (like Query2's ``gp.zip``) projects the expression
    that binds it.

    ``aggregate`` marks an aggregated column (``count``/``sum``/``min``/
    ``max``/``avg``): the expression is then the aggregated operand
    (``Const(1)`` for ``COUNT(*)``) and the query's ``group_by`` names
    the grouping keys.  ``None`` means a plain projected column.
    """

    name: str
    expression: ArgExpr
    aggregate: str | None = None

    def __str__(self) -> str:
        if self.aggregate is not None:
            return f"{self.name}={self.aggregate}({self.expression})"
        if isinstance(self.expression, Var) and self.expression.name == self.name:
            return self.name
        return f"{self.name}={self.expression}"


@dataclass(frozen=True)
class CalculusQuery:
    """The full conjunction plus the head (projected result columns).

    ``distinct``/``order_by``/``limit`` are post-processing directives
    applied to the head columns (``order_by`` entries are (head column
    name, ascending)); they always execute in the coordinator.

    ``unbound`` lists placeholder variable names (``<alias>_<param>``)
    standing for input parameters the query never binds.  It is always
    empty under strict generation (unbound inputs raise
    :class:`~repro.util.errors.BindingError` instead); the lenient mode
    used by the cost-based optimizer records them here so the
    access-path rewrite phase can try to repair the query.
    """

    name: str
    head: tuple[HeadItem, ...]
    predicates: tuple[Predicate, ...]
    distinct: bool = False
    order_by: tuple[tuple[str, bool], ...] = ()
    limit: int | None = None
    unbound: tuple[str, ...] = ()
    # Grouping keys for aggregated queries: the *head item names* of the
    # key columns, in GROUP BY order.  Empty means either no aggregation
    # at all, or a global aggregate (every head item is aggregated).
    group_by: tuple[str, ...] = ()

    def has_aggregates(self) -> bool:
        return any(item.aggregate is not None for item in self.head)

    def function_predicates(self) -> list[FunctionPredicate]:
        return [p for p in self.predicates if isinstance(p, FunctionPredicate)]

    def filter_predicates(self) -> list[FilterPredicate]:
        return [p for p in self.predicates if isinstance(p, FilterPredicate)]

    def to_text(self) -> str:
        """Datalog-dialect rendering, in the style of the paper's Sec. IV."""
        head = ", ".join(str(item) for item in self.head)
        body = " AND\n    ".join(str(p) for p in self.predicates)
        return f"{self.name}({head}) :-\n    {body}"
