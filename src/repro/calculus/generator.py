"""Calculus generator: SQL AST -> conjunctive calculus.

The translation performs the binding analysis of the paper's Sec. II/IV:

* every FROM item resolves to a registered function (OWF view or helping
  function) whose view columns are its input parameters plus its result
  columns;
* an equality predicate whose one side is an *input column* binds that
  input to the other side's expression (a constant, an output variable of
  another view, or a concatenation of those) — this is what creates the
  dependent-join structure ``f(x-, y+) AND g(y-, z+)``;
* remaining predicates become filters over output variables;
* every input parameter must end up bound, otherwise the query violates
  the limited-access-pattern restriction and a :class:`BindingError` with
  the offending parameter is raised.

Column-name resolution prefers an exact-case match before falling back to
a unique case-insensitive match — the paper's Query1 relies on this by
using ``gl.placeName`` for TerraService's input and ``gl.placename`` for
its output column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calculus.expressions import (
    ArgExpr,
    CalculusQuery,
    Concat,
    Const,
    FilterPredicate,
    FunctionPredicate,
    HeadItem,
    Var,
    variables_of,
)
from repro.fdb.functions import FunctionDef, FunctionRegistry
from repro.fdb.types import AtomicType, BOOLEAN, INTEGER, REAL
from repro.sql import ast
from repro.util.errors import BindingError, CalculusError


@dataclass
class _ViewColumn:
    """Resolution result: a column of one aliased view."""

    alias: str
    name: str
    is_input: bool
    atom: AtomicType


@dataclass
class _View:
    alias: str
    function: FunctionDef

    def columns(self) -> list[_ViewColumn]:
        inputs = [
            _ViewColumn(self.alias, p.name, True, p.type)
            for p in self.function.parameters
        ]
        outputs = [
            _ViewColumn(self.alias, name, False, atom)
            for name, atom in self.function.result.columns
        ]
        return inputs + outputs

    def resolve_column(self, name: str) -> _ViewColumn:
        columns = self.columns()
        exact = [c for c in columns if c.name == name]
        if len(exact) == 1:
            return exact[0]
        folded = [c for c in columns if c.name.lower() == name.lower()]
        if len(folded) == 1:
            return folded[0]
        if not folded:
            available = ", ".join(c.name for c in columns)
            raise CalculusError(
                f"view {self.function.name!r} (alias {self.alias!r}) has no "
                f"column {name!r}; columns: {available}"
            )
        candidates = ", ".join(c.name for c in folded)
        raise CalculusError(
            f"column reference {self.alias}.{name} is ambiguous between: "
            f"{candidates} (use the exact spelling)"
        )


class _Generator:
    def __init__(
        self,
        query: ast.Query,
        registry: FunctionRegistry,
        name: str,
        allow_unbound: bool = False,
    ) -> None:
        self.query = query
        self.registry = registry
        self.name = name
        self.allow_unbound = allow_unbound
        self.views: dict[str, _View] = {}
        # (alias, param name) -> binding expression in terms of *columns*,
        # i.e. possibly referencing other inputs before substitution.
        self.bindings: dict[tuple[str, str], ArgExpr] = {}
        self.filters: list[tuple[str, ast.Expression, ast.Expression]] = []
        # Placeholder variable name -> (alias, input parameter) it stands for.
        self._input_placeholders: dict[str, tuple[str, str]] = {}
        # Unbound placeholder names in first-encounter order (lenient mode).
        self._unbound: dict[str, None] = {}

    # -- resolution ------------------------------------------------------------

    def _build_views(self) -> None:
        for table in self.query.tables:
            if table.alias in self.views:
                raise CalculusError(f"duplicate table alias {table.alias!r}")
            function = self.registry.resolve(table.name)
            self.views[table.alias] = _View(table.alias, function)
            for parameter in function.parameters:
                self._input_placeholders[f"{table.alias}_{parameter.name}"] = (
                    table.alias,
                    parameter.name,
                )

    def _resolve_ref(self, ref: ast.ColumnRef) -> _ViewColumn:
        if ref.qualifier is not None:
            view = self.views.get(ref.qualifier)
            if view is None:
                raise CalculusError(
                    f"unknown table alias {ref.qualifier!r} in "
                    f"{ref.qualifier}.{ref.name}"
                )
            return view.resolve_column(ref.name)
        matches = []
        for view in self.views.values():
            try:
                matches.append(view.resolve_column(ref.name))
            except CalculusError:
                continue
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise CalculusError(f"unknown column {ref.name!r}")
        owners = ", ".join(f"{m.alias}.{m.name}" for m in matches)
        raise CalculusError(
            f"column {ref.name!r} is ambiguous across views: {owners}"
        )

    def _var_for(self, column: _ViewColumn) -> Var:
        variable = Var(f"{column.alias}_{column.name}")
        if column.is_input:
            self._input_placeholders[variable.name] = (column.alias, column.name)
        return variable

    # -- expression conversion -----------------------------------------------------

    def _to_arg_expr(self, expression: ast.Expression) -> ArgExpr:
        """Convert an AST expression to a calculus expression.

        Input columns are converted to *placeholder* variables named like
        output variables; `_substitute` later replaces them with whatever
        binds them.
        """
        if isinstance(expression, ast.Literal):
            return Const(expression.value)
        if isinstance(expression, ast.ColumnRef):
            return self._var_for(self._resolve_ref(expression))
        if isinstance(expression, ast.BinaryOp):
            if expression.op != "+":
                raise CalculusError(f"unsupported operator {expression.op!r}")
            left = self._to_arg_expr(expression.left)
            right = self._to_arg_expr(expression.right)
            parts: list[ArgExpr] = []
            for side in (left, right):
                if isinstance(side, Concat):
                    parts.extend(side.parts)
                else:
                    parts.append(side)
            return Concat(tuple(parts))
        raise CalculusError(f"unsupported expression {expression!r}")

    # -- binding analysis ------------------------------------------------------------

    def _classify_predicates(self) -> None:
        for predicate in self.query.predicates:
            if predicate.op != "=":
                self.filters.append((predicate.op, predicate.left, predicate.right))
                continue
            left_col = self._column_of(predicate.left)
            right_col = self._column_of(predicate.right)
            bound = False
            for this, other_expr in (
                (left_col, predicate.right),
                (right_col, predicate.left),
            ):
                if this is not None and this.is_input:
                    key = (this.alias, this.name)
                    if key not in self.bindings:
                        self.bindings[key] = self._coerce(
                            self._to_arg_expr(other_expr), this.atom
                        )
                        bound = True
                        break
            if not bound:
                self.filters.append(("=", predicate.left, predicate.right))

    def _column_of(self, expression: ast.Expression) -> _ViewColumn | None:
        if isinstance(expression, ast.ColumnRef):
            return self._resolve_ref(expression)
        return None

    def _coerce(self, expression: ArgExpr, atom: AtomicType) -> ArgExpr:
        """Coerce constants to the input parameter's declared type.

        The paper's Query1 binds the boolean ``imagePresence`` with the
        string ``'true'``; WSMED accepts it, so we do too.
        """
        if not isinstance(expression, Const):
            return expression
        value = expression.value
        if atom is BOOLEAN and value in ("true", "false"):
            return Const(value == "true")
        if atom is REAL and isinstance(value, int) and not isinstance(value, bool):
            return Const(float(value))
        if atom is INTEGER and isinstance(value, float) and value.is_integer():
            return Const(int(value))
        return expression

    # -- substitution of input placeholders ----------------------------------------------

    def _substitute(self, expression: ArgExpr, seen: frozenset) -> ArgExpr:
        """Replace placeholder variables of input columns by their bindings."""
        if isinstance(expression, Const):
            return expression
        if isinstance(expression, Concat):
            return Concat(
                tuple(self._substitute(part, seen) for part in expression.parts)
            )
        key = self._input_key_of(expression)
        if key is None:
            return expression  # an output variable: already final
        if key in seen:
            raise BindingError(
                f"circular binding through input parameter {key[0]}.{key[1]}"
            )
        binding = self.bindings.get(key)
        if binding is None:
            if self.allow_unbound:
                # Leave the placeholder in place and record it; the
                # rewrite phase may repair it via an access path.
                self._unbound.setdefault(expression.name)
                return expression
            view = self.views[key[0]]
            raise BindingError(
                f"input parameter {key[1]!r} of view {view.function.name!r} "
                f"(alias {key[0]!r}) is not bound; bind it with an equality "
                "predicate in WHERE"
            )
        return self._substitute(binding, seen | {key})

    def _input_key_of(self, variable: Var) -> tuple[str, str] | None:
        return self._input_placeholders.get(variable.name)

    # -- assembly --------------------------------------------------------------------

    def generate(self) -> CalculusQuery:
        if self.query.is_disjunctive:
            raise CalculusError(
                "disjunctive queries must be split into conjunctive "
                "branches before calculus generation"
            )
        self._build_views()
        self._classify_predicates()

        predicates: list = []
        for table in self.query.tables:
            view = self.views[table.alias]
            arguments = []
            for parameter in view.function.parameters:
                placeholder = Var(f"{table.alias}_{parameter.name}")
                arguments.append(self._substitute(placeholder, frozenset()))
            outputs = tuple(
                Var(f"{table.alias}_{name}")
                for name in view.function.result.column_names()
            )
            predicates.append(
                FunctionPredicate(
                    function=view.function.name,
                    alias=table.alias,
                    arguments=tuple(arguments),
                    outputs=outputs,
                )
            )

        for op, left, right in self.filters:
            predicates.append(
                FilterPredicate(
                    op=op,
                    left=self._substitute(self._to_arg_expr(left), frozenset()),
                    right=self._substitute(self._to_arg_expr(right), frozenset()),
                )
            )

        head = tuple(self._head_items())
        group_by = tuple(self._group_by(head))
        self._check_aggregation(head, group_by)
        return CalculusQuery(
            name=self.name,
            head=head,
            predicates=tuple(predicates),
            distinct=self.query.distinct,
            order_by=tuple(self._order_by(head)),
            limit=self.query.limit,
            unbound=tuple(self._unbound),
            group_by=group_by,
        )

    def _group_by(self, head: tuple[HeadItem, ...]) -> list[str]:
        """Resolve GROUP BY references to head item names.

        The dialect requires every grouping key to appear in the select
        list — grouping by a column the query does not project would
        force a hidden projection through the whole parallel stack for
        no expressible benefit.
        """
        resolved = []
        for reference in self.query.group_by:
            if reference.qualifier is None:
                by_name = [
                    h
                    for h in head
                    if h.aggregate is None
                    and h.name.lower() == reference.name.lower()
                ]
                if len(by_name) == 1:
                    resolved.append(by_name[0].name)
                    continue
            variable = self._substitute(self._to_arg_expr(reference), frozenset())
            by_var = [
                h for h in head if h.aggregate is None and h.expression == variable
            ]
            if len(by_var) != 1:
                raise CalculusError(
                    f"GROUP BY column {reference.to_sql()} must appear in "
                    "the select list"
                )
            resolved.append(by_var[0].name)
        return resolved

    def _check_aggregation(
        self, head: tuple[HeadItem, ...], group_by: tuple[str, ...]
    ) -> None:
        """Aggregated queries must group every plain projected column."""
        if not any(item.aggregate is not None for item in head):
            return
        keys = set(group_by)
        for item in head:
            if item.aggregate is None and item.name not in keys:
                raise CalculusError(
                    f"column {item.name!r} must appear in GROUP BY or be "
                    "wrapped in an aggregate function"
                )

    def _order_by(self, head: tuple[HeadItem, ...]) -> list[tuple[str, bool]]:
        """Resolve ORDER BY references against the select list."""
        resolved = []
        for item in self.query.order_by:
            reference = item.column
            # A bare name matching a result column name directly.
            if reference.qualifier is None:
                by_name = [h for h in head if h.name.lower() == reference.name.lower()]
                if len(by_name) == 1:
                    resolved.append((by_name[0].name, item.ascending))
                    continue
            # Otherwise resolve to a variable and find the head item
            # projecting exactly that variable.
            variable = self._substitute(
                self._to_arg_expr(reference), frozenset()
            )
            # Aggregate items are excluded: their expression is the
            # *operand* (ORDER BY x must not silently sort by SUM(x)).
            by_var = [
                h for h in head if h.aggregate is None and h.expression == variable
            ]
            if len(by_var) != 1:
                raise CalculusError(
                    f"ORDER BY column {reference.to_sql()} must appear in "
                    "the select list"
                )
            resolved.append((by_var[0].name, item.ascending))
        return resolved

    def _head_items(self) -> list[HeadItem]:
        if isinstance(self.query.select, ast.Star):
            items = []
            for table in self.query.tables:
                view = self.views[table.alias]
                for name in view.function.result.column_names():
                    items.append(
                        HeadItem(name=name, expression=Var(f"{table.alias}_{name}"))
                    )
            return items
        items = []
        used_names: set[str] = set()
        for index, select_item in enumerate(self.query.select):
            aggregate = None
            inner = select_item.expression
            if isinstance(inner, ast.FuncCall):
                aggregate = inner.function
                if isinstance(inner.argument, ast.Star):
                    # COUNT(*): count rows; the operand is a constant.
                    expression: ArgExpr = Const(1)
                else:
                    expression = self._substitute(
                        self._to_arg_expr(inner.argument), frozenset()
                    )
            else:
                expression = self._substitute(
                    self._to_arg_expr(inner), frozenset()
                )
            if select_item.alias:
                name = select_item.alias
            elif isinstance(inner, ast.ColumnRef):
                name = inner.name
            elif aggregate is not None and aggregate not in used_names:
                name = aggregate
            else:
                name = f"column{index + 1}"
            used_names.add(name)
            items.append(
                HeadItem(name=name, expression=expression, aggregate=aggregate)
            )
        return items


def generate_calculus(
    query: ast.Query,
    registry: FunctionRegistry,
    name: str = "Query",
    *,
    allow_unbound: bool = False,
) -> CalculusQuery:
    """Translate a parsed SQL query into conjunctive calculus.

    With ``allow_unbound=True`` an input parameter the query never binds
    does not raise :class:`~repro.util.errors.BindingError`; its
    placeholder variable is left in the predicate arguments and recorded
    in :attr:`CalculusQuery.unbound` for the access-path rewrite phase.
    """
    return _Generator(query, registry, name, allow_unbound=allow_unbound).generate()
