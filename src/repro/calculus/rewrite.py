"""Access-path rewriting of unfittable binding patterns.

When a query binds the *outputs* of a web-service view but not its
*inputs* — ``SELECT ... FROM lookup_by_id b WHERE b.name = 'Smith'`` over
``lookup_by_id(id-) -> (name+)`` — the heuristic pipeline rejects it with
a :class:`~repro.util.errors.BindingError`: the limited access pattern
cannot be satisfied.  Yet if the registry declares an *access path*
equivalence (:meth:`FunctionRegistry.declare_access_path`) to an inverse
view ``lookup_by_name(name-) -> (id+)`` over the same logical relation,
the query is answerable: call the alternative with the bound columns as
inputs and read the formerly-unbound columns off its outputs.  This is
the path-view rewrite of Romero et al., *Equivalent Rewritings on Path
Views with Binding Patterns*, specialized to the registry's declared
one-to-one column renamings.

The rewriter operates on a calculus produced with ``allow_unbound=True``
(so unbound input placeholders survive generation) and repeatedly
replaces a predicate that references unbound variables with an
equivalent call of a declared alternative:

* an alternative input mapped from a *bound input* of the original call
  reuses that input's argument expression;
* an alternative input mapped from an *output* of the original call
  consumes an equality filter ``var = expr`` binding that output (the
  equality also licenses substituting ``expr`` for ``var`` everywhere
  else in the query);
* an alternative output mapped from an unbound input *produces* the
  placeholder variable, turning it into an ordinary dependent-join
  binding for downstream predicates;
* an alternative output shadowing a bound input of the original call
  re-asserts the binding as an equality filter, preserving the original
  call's restriction.

Rewrites iterate to a fixpoint; if unbound variables remain, the
rewriter raises ``BindingError`` listing every access path it tried and
why each failed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.calculus.expressions import (
    ArgExpr,
    CalculusQuery,
    Concat,
    FilterPredicate,
    FunctionPredicate,
    HeadItem,
    Predicate,
    Var,
    variables_of,
)
from repro.fdb.functions import AccessPath, FunctionDef, FunctionRegistry
from repro.util.errors import BindingError


@dataclass(frozen=True)
class AppliedRewrite:
    """Record of one access-path rewrite, for explain output."""

    alias: str
    original: str  # function the query named
    replacement: str  # access-path alternative actually planned
    reason: str  # why the original call was unfittable
    bound_from: tuple[str, ...]  # how each alternative input got bound
    produced: tuple[str, ...]  # formerly-unbound variables now produced

    def describe(self) -> str:
        lines = [
            f"{self.alias}: {self.original} -> {self.replacement}",
            f"  because {self.reason}",
        ]
        for binding in self.bound_from:
            lines.append(f"  input {binding}")
        if self.produced:
            lines.append(f"  now produces: {', '.join(self.produced)}")
        return "\n".join(lines)


class _PathFailure(Exception):
    """One candidate access path cannot repair the call (with reason)."""


def rewrite_unfittable(
    calculus: CalculusQuery, registry: FunctionRegistry
) -> tuple[CalculusQuery, list[AppliedRewrite]]:
    """Repair a calculus with unbound inputs via declared access paths.

    Returns the (possibly unchanged) calculus and the list of applied
    rewrites.  Raises ``BindingError`` when unbound variables remain
    after no more rewrites apply.
    """
    if not calculus.unbound:
        return calculus, []
    rewrites: list[AppliedRewrite] = []
    attempts: list[str] = []
    current = calculus
    while current.unbound:
        current, applied, failures = _rewrite_once(current, registry)
        attempts.extend(failures)
        if applied is None:
            missing = ", ".join(current.unbound)
            detail = ""
            if attempts:
                detail = "; access paths tried: " + " | ".join(attempts)
            raise BindingError(
                f"input parameters are not bound and no declared access "
                f"path can bind them: {missing}{detail}"
            )
        rewrites.append(applied)
    return current, rewrites


def _rewrite_once(
    calculus: CalculusQuery, registry: FunctionRegistry
) -> tuple[CalculusQuery, AppliedRewrite | None, list[str]]:
    """Try to repair one predicate; returns (calculus, applied, failures)."""
    failures: list[str] = []
    unbound = set(calculus.unbound)
    for index, predicate in enumerate(calculus.predicates):
        if not isinstance(predicate, FunctionPredicate):
            continue
        function = registry.resolve(predicate.function)
        owned = _owned_unbound(predicate, function, unbound)
        if not owned:
            continue
        paths = registry.access_paths(predicate.function)
        if not paths:
            failures.append(
                f"{predicate.alias} ({predicate.function}): no access paths "
                "declared"
            )
            continue
        for path in paths:
            try:
                rewritten, applied = _apply_path(
                    calculus, index, predicate, function, path, registry, owned
                )
            except _PathFailure as failure:
                failures.append(
                    f"{predicate.alias} ({predicate.function} via "
                    f"{path.alternative}): {failure}"
                )
                continue
            return rewritten, applied, failures
    return calculus, None, failures


def _owned_unbound(
    predicate: FunctionPredicate, function: FunctionDef, unbound: set[str]
) -> list[str]:
    """Unbound placeholder names belonging to this predicate's inputs."""
    owned = []
    for parameter in function.parameters:
        name = f"{predicate.alias}_{parameter.name}"
        if name in unbound:
            owned.append(name)
    return owned


def _apply_path(
    calculus: CalculusQuery,
    index: int,
    predicate: FunctionPredicate,
    function: FunctionDef,
    path: AccessPath,
    registry: FunctionRegistry,
    owned: list[str],
) -> tuple[CalculusQuery, AppliedRewrite]:
    alternative = registry.resolve(path.alternative)
    unbound = set(calculus.unbound)

    # Column books for the original function: lower-cased name ->
    # ("input", arg expr) or ("output", output var).
    columns: dict[str, tuple[str, ArgExpr]] = {}
    for parameter, argument in zip(function.parameters, predicate.arguments):
        columns[parameter.name.lower()] = ("input", argument)
    for name, output in zip(function.result.column_names(), predicate.outputs):
        columns[name.lower()] = ("output", output)
    # Inverse mapping: alternative column (lower) -> original column (lower).
    to_original = {g.lower(): f.lower() for f, g in path.mapping}

    forbidden = {v.name for v in predicate.outputs} | unbound
    filters = [
        (i, p)
        for i, p in enumerate(calculus.predicates)
        if isinstance(p, FilterPredicate)
    ]
    consumed: set[int] = set()
    substitutions: dict[str, ArgExpr] = {}
    bound_from: list[str] = []
    arguments: list[ArgExpr] = []

    for parameter in alternative.parameters:
        source = to_original.get(parameter.name.lower())
        if source is None:
            raise _PathFailure(
                f"alternative input {parameter.name!r} has no mapped column"
            )
        kind, expression = columns[source]
        if kind == "input":
            if _references(expression, unbound):
                raise _PathFailure(
                    f"alternative input {parameter.name!r} maps to input "
                    f"{source!r}, which is itself unbound"
                )
            arguments.append(expression)
            bound_from.append(
                f"{parameter.name} <- {expression} (bound input {source})"
            )
            continue
        # Mapped from an output: an equality filter must pin it down.
        target = expression
        assert isinstance(target, Var)
        binding = _find_binding_filter(
            filters, consumed, target, forbidden
        )
        if binding is None:
            raise _PathFailure(
                f"alternative input {parameter.name!r} maps to output "
                f"{target.name!r}, but no equality filter binds it"
            )
        filter_index, bound_expr = binding
        consumed.add(filter_index)
        substitutions[target.name] = bound_expr
        arguments.append(bound_expr)
        bound_from.append(
            f"{parameter.name} <- {bound_expr} (consumed filter "
            f"{target.name} = {bound_expr})"
        )

    # Outputs of the replacement call, positional with the alternative's
    # result columns; extra equality filters re-assert restrictions that
    # used to be enforced by the original call's bound inputs.
    outputs: list[Var] = []
    extra_filters: list[FilterPredicate] = []
    produced: list[str] = []
    taken = _all_variable_names(calculus)
    for name in alternative.result.column_names():
        source = to_original.get(name.lower())
        if source is None:
            outputs.append(_fresh_var(predicate.alias, name, taken))
            continue
        kind, expression = columns[source]
        if kind == "output":
            assert isinstance(expression, Var)
            if expression.name in substitutions:
                # Its value is already pinned by the consumed filter; give
                # the column a fresh name so the pin stays authoritative.
                outputs.append(_fresh_var(predicate.alias, name, taken))
                continue
            outputs.append(expression)
            continue
        # Source is an input of the original call.
        if _references(expression, unbound):
            # The formerly-unbound placeholder: the alternative produces it.
            assert isinstance(expression, Var)
            outputs.append(expression)
            produced.append(expression.name)
            continue
        # A bound input surfaced as an output: keep the restriction.
        variable = _fresh_var(predicate.alias, name, taken)
        outputs.append(variable)
        extra_filters.append(FilterPredicate("=", variable, expression))

    replacement = FunctionPredicate(
        function=alternative.name,
        alias=predicate.alias,
        arguments=tuple(arguments),
        outputs=tuple(outputs),
    )

    predicates: list[Predicate] = []
    for i, p in enumerate(calculus.predicates):
        if i == index:
            predicates.append(replacement)
            predicates.extend(extra_filters)
        elif i in consumed:
            continue
        else:
            predicates.append(_substitute_predicate(p, substitutions))
    head = tuple(
        HeadItem(item.name, _substitute_expr(item.expression, substitutions))
        for item in calculus.head
    )
    remaining = _remaining_unbound(unbound, predicates, head)
    rewritten = replace(
        calculus,
        predicates=tuple(predicates),
        head=head,
        unbound=tuple(n for n in calculus.unbound if n in remaining),
    )
    applied = AppliedRewrite(
        alias=predicate.alias,
        original=function.name,
        replacement=alternative.name,
        reason=(
            f"binding pattern {function.signature()} cannot be satisfied "
            f"(unbound: {', '.join(owned)})"
        ),
        bound_from=tuple(bound_from),
        produced=tuple(produced),
    )
    return rewritten, applied


def _find_binding_filter(
    filters: list[tuple[int, FilterPredicate]],
    consumed: set[int],
    target: Var,
    forbidden: set[str],
) -> tuple[int, ArgExpr] | None:
    """An unconsumed ``target = expr`` filter with ``expr`` computable
    before the rewritten call runs (no forbidden variables)."""
    for filter_index, predicate in filters:
        if filter_index in consumed or predicate.op != "=":
            continue
        for this, other in (
            (predicate.left, predicate.right),
            (predicate.right, predicate.left),
        ):
            if this != target:
                continue
            if {v.name for v in variables_of(other)} & forbidden:
                continue
            return filter_index, other
    return None


def _references(expression: ArgExpr, names: set[str]) -> bool:
    return any(v.name in names for v in variables_of(expression))


def _substitute_expr(
    expression: ArgExpr, substitutions: dict[str, ArgExpr]
) -> ArgExpr:
    if not substitutions:
        return expression
    if isinstance(expression, Var):
        return substitutions.get(expression.name, expression)
    if isinstance(expression, Concat):
        return Concat(
            tuple(_substitute_expr(p, substitutions) for p in expression.parts)
        )
    return expression


def _substitute_predicate(
    predicate: Predicate, substitutions: dict[str, ArgExpr]
) -> Predicate:
    if not substitutions:
        return predicate
    if isinstance(predicate, FunctionPredicate):
        return replace(
            predicate,
            arguments=tuple(
                _substitute_expr(a, substitutions) for a in predicate.arguments
            ),
        )
    return replace(
        predicate,
        left=_substitute_expr(predicate.left, substitutions),
        right=_substitute_expr(predicate.right, substitutions),
    )


def _all_variable_names(calculus: CalculusQuery) -> set[str]:
    names: set[str] = set()
    for predicate in calculus.predicates:
        if isinstance(predicate, FunctionPredicate):
            names |= {v.name for v in predicate.input_variables()}
            names |= {v.name for v in predicate.outputs}
        else:
            names |= {v.name for v in predicate.input_variables()}
    for item in calculus.head:
        names |= {v.name for v in variables_of(item.expression)}
    return names


def _fresh_var(alias: str, column: str, taken: set[str]) -> Var:
    name = f"{alias}_{column}"
    while name in taken:
        name += "_ap"
    taken.add(name)
    return Var(name)


def _remaining_unbound(
    unbound: set[str],
    predicates: list[Predicate],
    head: tuple[HeadItem, ...],
) -> set[str]:
    """Unbound names still referenced and still not produced."""
    produced: set[str] = set()
    referenced: set[str] = set()
    for predicate in predicates:
        if isinstance(predicate, FunctionPredicate):
            produced |= {v.name for v in predicate.outputs}
            referenced |= {v.name for v in predicate.input_variables()}
        else:
            referenced |= {v.name for v in predicate.input_variables()}
    for item in head:
        referenced |= {v.name for v in variables_of(item.expression)}
    return {n for n in unbound if n in referenced and n not in produced}
