"""Plan rendering in the style of the paper's plan figures."""

from __future__ import annotations

from repro.algebra.plan import AFFApplyNode, FFApplyNode, PlanFunction, PlanNode


def render_plan(
    node: PlanNode,
    *,
    indent: int = 0,
    annotations: dict[int, str] | None = None,
) -> str:
    """Indented textual plan tree, top operator first (like Figs 6-13).

    Plan functions referenced by ``FF_APPLYP``/``AFF_APPLYP`` nodes are
    rendered inline, indented under the operator, so the full shipped code
    is visible in ``explain`` output.

    ``annotations`` optionally maps ``id(node)`` to a suffix string — the
    cost-based explain uses it to show per-operator estimates.
    """
    pad = "  " * indent
    suffix = annotations.get(id(node), "") if annotations else ""
    lines = [f"{pad}{node.label()}  : <{', '.join(node.schema)}>{suffix}"]
    if isinstance(node, (FFApplyNode, AFFApplyNode)):
        lines.append(
            render_plan_function(
                node.plan_function, indent=indent + 1, annotations=annotations
            )
        )
    for child in node.children():
        lines.append(
            render_plan(child, indent=indent + 1, annotations=annotations)
        )
    return "\n".join(lines)


def render_plan_function(
    function: PlanFunction,
    *,
    indent: int = 0,
    annotations: dict[int, str] | None = None,
) -> str:
    pad = "  " * indent
    header = f"{pad}plan function {function.signature()}"
    return header + "\n" + render_plan(
        function.body, indent=indent + 1, annotations=annotations
    )
