"""Plan nodes and plan functions.

A plan is a tree of operator nodes, each with a static output ``schema``
(tuple of column names; runtime rows are plain tuples in schema order).
Plans and the plan functions that embed them serialize to dicts — this is
the representation shipped to child query processes by ``FF_APPLYP``.

Node inventory (paper correspondence):

* :class:`SingletonNode` — emits one empty row; the anchor below an OWF
  call with constant-only arguments (``GetAllStates`` in Fig 6).
* :class:`ParamNode` — the parameter-tuple stream inside a plan function
  (the ``<st1>`` input of PF1 in Fig 7).
* :class:`ApplyNode` — the γ apply operator: call a function per input row.
* :class:`MapNode` — compute a derived column (``concat`` in Fig 6).
* :class:`FilterNode` — a comparison filter (``equal`` in Fig 10).
* :class:`ProjectNode` — projection / column renaming.
* :class:`FFApplyNode` — ``FF_APPLYP``: ship a plan function to ``fanout``
  children and stream parameter tuples to them (Sec. III.A).
* :class:`AFFApplyNode` — ``AFF_APPLYP``: the adaptive variant (Sec. V.A).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from itertools import count

from repro.algebra.expressions import (
    RowExpr,
    expr_from_dict,
    expr_to_dict,
    render_expr,
)
from repro.util.errors import PlanError


@dataclass(frozen=True)
class AdaptationParams:
    """Tuning of ``AFF_APPLYP`` (paper Sec. V.A).

    ``p``           children added per add stage.
    ``threshold``   relative improvement that re-triggers the add stage
                    (the paper evaluates 25 %).
    ``drop_stage``  whether a slowdown triggers dropping a child subtree.
    ``init_fanout`` fanout of the initial balanced tree (paper: binary).
    ``max_fanout``  safety bound on a single node's fanout.
    """

    p: int = 2
    threshold: float = 0.25
    drop_stage: bool = False
    init_fanout: int = 2
    max_fanout: int = 16

    def __post_init__(self) -> None:
        if self.p < 1:
            raise PlanError(f"adaptation p must be >= 1, got {self.p}")
        if not 0.0 < self.threshold < 1.0:
            raise PlanError("adaptation threshold must be in (0, 1)")
        if self.init_fanout < 1:
            raise PlanError("init_fanout must be >= 1")

    def to_dict(self) -> dict:
        return {
            "p": self.p,
            "threshold": self.threshold,
            "drop_stage": self.drop_stage,
            "init_fanout": self.init_fanout,
            "max_fanout": self.max_fanout,
        }

    @staticmethod
    def from_dict(data: dict) -> "AdaptationParams":
        return AdaptationParams(**data)


class PlanNode(ABC):
    """Base class: every node knows its output schema and children."""

    schema: tuple[str, ...]

    @abstractmethod
    def children(self) -> list["PlanNode"]: ...

    @abstractmethod
    def label(self) -> str:
        """One-line description used by plan rendering."""

    @abstractmethod
    def to_dict(self) -> dict: ...


@dataclass
class SingletonNode(PlanNode):
    schema: tuple[str, ...] = ()

    def children(self) -> list[PlanNode]:
        return []

    def label(self) -> str:
        return "singleton"

    def to_dict(self) -> dict:
        return {"kind": "singleton"}


@dataclass
class ParamNode(PlanNode):
    schema: tuple[str, ...]

    def children(self) -> list[PlanNode]:
        return []

    def label(self) -> str:
        return f"param<{', '.join(self.schema)}>"

    def to_dict(self) -> dict:
        return {"kind": "param", "schema": list(self.schema)}


@dataclass
class ApplyNode(PlanNode):
    """γ: for each input row, call ``function`` and append its outputs."""

    child: PlanNode
    function: str
    arguments: tuple[RowExpr, ...]
    out_columns: tuple[str, ...]
    schema: tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        overlap = set(self.child.schema) & set(self.out_columns)
        if overlap:
            raise PlanError(
                f"apply of {self.function!r} would duplicate columns {overlap}"
            )
        self.schema = self.child.schema + self.out_columns

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        rendered = ", ".join(render_expr(a) for a in self.arguments)
        outs = ", ".join(self.out_columns)
        return f"γ {self.function}({rendered}) -> <{outs}>"

    def to_dict(self) -> dict:
        return {
            "kind": "apply",
            "child": self.child.to_dict(),
            "function": self.function,
            "arguments": [expr_to_dict(a) for a in self.arguments],
            "out_columns": list(self.out_columns),
        }


@dataclass
class MapNode(PlanNode):
    """Append one computed column."""

    child: PlanNode
    expression: RowExpr
    out_column: str
    schema: tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.out_column in self.child.schema:
            raise PlanError(f"map would duplicate column {self.out_column!r}")
        self.schema = self.child.schema + (self.out_column,)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"γ map {self.out_column} = {render_expr(self.expression)}"

    def to_dict(self) -> dict:
        return {
            "kind": "map",
            "child": self.child.to_dict(),
            "expression": expr_to_dict(self.expression),
            "out_column": self.out_column,
        }


_FILTER_OPS = ("=", "<", ">", "<=", ">=", "<>")


@dataclass
class FilterNode(PlanNode):
    child: PlanNode
    op: str
    left: RowExpr
    right: RowExpr
    schema: tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.op not in _FILTER_OPS:
            raise PlanError(f"unknown filter operator {self.op!r}")
        self.schema = self.child.schema

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"σ {render_expr(self.left)} {self.op} {render_expr(self.right)}"

    def to_dict(self) -> dict:
        return {
            "kind": "filter",
            "child": self.child.to_dict(),
            "op": self.op,
            "left": expr_to_dict(self.left),
            "right": expr_to_dict(self.right),
        }


@dataclass
class ProjectNode(PlanNode):
    """Project/rename: each item is (output name, expression)."""

    child: PlanNode
    items: tuple[tuple[str, RowExpr], ...]
    schema: tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        names = [name for name, _ in self.items]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate projection columns: {names}")
        self.schema = tuple(names)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        rendered = ", ".join(
            name if str(expr) == name else f"{name}={render_expr(expr)}"
            for name, expr in self.items
        )
        return f"π {rendered}"

    def to_dict(self) -> dict:
        return {
            "kind": "project",
            "child": self.child.to_dict(),
            "items": [[name, expr_to_dict(expr)] for name, expr in self.items],
        }


@dataclass
class DistinctNode(PlanNode):
    """Eliminate duplicate rows, streaming (first occurrence wins)."""

    child: PlanNode
    schema: tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        self.schema = self.child.schema

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "distinct"

    def to_dict(self) -> dict:
        return {"kind": "distinct", "child": self.child.to_dict()}


@dataclass
class SortNode(PlanNode):
    """Order rows by one or more columns.  Blocking: runs in the
    coordinator, never inside a shipped plan function."""

    child: PlanNode
    keys: tuple[tuple[str, bool], ...]  # (column, ascending)
    schema: tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        for column, _ in self.keys:
            if column not in self.child.schema:
                raise PlanError(
                    f"sort key {column!r} is not in the input schema "
                    f"{self.child.schema}"
                )
        self.schema = self.child.schema

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        rendered = ", ".join(
            f"{column}{'' if ascending else ' desc'}" for column, ascending in self.keys
        )
        return f"sort {rendered}"

    def to_dict(self) -> dict:
        return {
            "kind": "sort",
            "child": self.child.to_dict(),
            "keys": [[column, ascending] for column, ascending in self.keys],
        }


@dataclass
class LimitNode(PlanNode):
    """Emit at most ``count`` rows, then stop consuming the child —
    in-flight web service calls below are abandoned early."""

    child: PlanNode
    count: int
    schema: tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.count < 0:
            raise PlanError(f"limit must be non-negative, got {self.count}")
        self.schema = self.child.schema

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"limit {self.count}"

    def to_dict(self) -> dict:
        return {"kind": "limit", "child": self.child.to_dict(), "count": self.count}


#: Aggregate kinds understood by :class:`AggregateNode` ("key" marks a
#: grouping column, the rest are accumulator kinds).
_AGGREGATE_KINDS = ("key", "count", "sum", "min", "max", "avg")


@dataclass
class AggregateNode(PlanNode):
    """Streaming hash aggregation with GROUP BY.

    ``items`` is the ordered output column list: ``(name, kind, expr)``
    where ``kind`` is ``"key"`` for a grouping column (the expression is
    the key value) or an accumulator kind (``count``/``sum``/``min``/
    ``max``/``avg``; the expression is the aggregated operand, a constant
    ``1`` for ``COUNT(*)``).  No ``"key"`` items means one global group:
    the node emits exactly one row, even over an empty input.

    Blocking: groups only close when the input ends, so the node always
    runs in the coordinator, never inside a shipped plan function.
    """

    child: PlanNode
    items: tuple[tuple[str, str, RowExpr], ...]
    schema: tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        if not self.items:
            raise PlanError("aggregate requires at least one output item")
        names = [name for name, _, _ in self.items]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate aggregate output columns: {names}")
        for name, kind, _ in self.items:
            if kind not in _AGGREGATE_KINDS:
                raise PlanError(
                    f"unknown aggregate kind {kind!r} for column {name!r}"
                )
        self.schema = tuple(names)

    @property
    def key_items(self) -> tuple[tuple[str, str, RowExpr], ...]:
        return tuple(item for item in self.items if item[1] == "key")

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        rendered = ", ".join(
            name if kind == "key" else f"{name}={kind}({render_expr(expr)})"
            for name, kind, expr in self.items
        )
        return f"Γ {rendered}"

    def to_dict(self) -> dict:
        return {
            "kind": "aggregate",
            "child": self.child.to_dict(),
            "items": [
                [name, kind, expr_to_dict(expr)]
                for name, kind, expr in self.items
            ],
        }


@dataclass
class UnionNode(PlanNode):
    """Bag union of same-schema sub-plans (the branches of an ``OR``).

    All inputs run concurrently; rows are emitted in branch order.  The
    planner always places a :class:`DistinctNode` above it, giving the
    dialect's documented set semantics for disjunction.
    """

    inputs: tuple[PlanNode, ...]
    schema: tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        if len(self.inputs) < 2:
            raise PlanError("union requires at least two inputs")
        first = tuple(self.inputs[0].schema)
        for branch in self.inputs[1:]:
            if tuple(branch.schema) != first:
                raise PlanError(
                    f"union inputs have mismatched schemas: {first} vs "
                    f"{tuple(branch.schema)}"
                )
        self.schema = first

    def children(self) -> list[PlanNode]:
        return list(self.inputs)

    def label(self) -> str:
        return f"∪ {len(self.inputs)} branches"

    def to_dict(self) -> dict:
        return {
            "kind": "union",
            "inputs": [branch.to_dict() for branch in self.inputs],
        }


@dataclass
class JoinNode(PlanNode):
    """Hash equi-join of two *independent* sub-plans.

    This implements the paper's future-work direction (Sec. VII): queries
    mixing dependent and independent web service calls.  Both inputs are
    evaluated concurrently (their service-call chains overlap in time);
    the right side is built into a hash table and probed with the left.
    """

    left: PlanNode
    right: PlanNode
    conditions: tuple[tuple[str, str], ...]  # (left column, right column)
    schema: tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        if not self.conditions:
            raise PlanError("join requires at least one equality condition")
        overlap = set(self.left.schema) & set(self.right.schema)
        if overlap:
            raise PlanError(f"join inputs share column names: {sorted(overlap)}")
        for left_column, right_column in self.conditions:
            if left_column not in self.left.schema:
                raise PlanError(f"join key {left_column!r} not in left schema")
            if right_column not in self.right.schema:
                raise PlanError(f"join key {right_column!r} not in right schema")
        self.schema = self.left.schema + self.right.schema

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        rendered = ", ".join(f"{l} = {r}" for l, r in self.conditions)
        return f"⋈ {rendered}"

    def to_dict(self) -> dict:
        return {
            "kind": "join",
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
            "conditions": [list(pair) for pair in self.conditions],
        }


@dataclass
class PlanFunction:
    """A parameterized sub-query shipped to child query processes.

    ``body`` contains exactly one :class:`ParamNode` whose schema equals
    ``param_schema``; calling the plan function for a parameter tuple means
    executing the body with the param node bound to that single tuple.
    """

    name: str
    param_schema: tuple[str, ...]
    body: PlanNode

    @property
    def result_schema(self) -> tuple[str, ...]:
        return self.body.schema

    def signature(self) -> str:
        params = ", ".join(self.param_schema)
        results = ", ".join(self.result_schema)
        return f"{self.name}({params}) -> Stream of <{results}>"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "param_schema": list(self.param_schema),
            "body": self.body.to_dict(),
        }

    @staticmethod
    def from_dict(data: dict) -> "PlanFunction":
        return PlanFunction(
            name=data["name"],
            param_schema=tuple(data["param_schema"]),
            body=plan_from_dict(data["body"]),
        )


# Stable identities for parallel operator nodes, assigned at plan-build
# time.  Executor pools are keyed on these (never on ``id(node)``, which
# the allocator can reuse after a node is garbage collected).
_operator_ids = count(1)


def _next_operator_id(prefix: str) -> str:
    return f"{prefix}-{next(_operator_ids)}"


@dataclass
class FFApplyNode(PlanNode):
    """``FF_APPLYP(pf, fo, pstream)``: parallel apply of a plan function."""

    child: PlanNode  # produces pstream, the parameter-tuple stream
    plan_function: PlanFunction
    fanout: int
    schema: tuple[str, ...] = field(init=False)
    node_id: str = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise PlanError(f"fanout must be >= 1, got {self.fanout}")
        if tuple(self.child.schema) != tuple(self.plan_function.param_schema):
            raise PlanError(
                f"FF_APPLYP input schema {self.child.schema} does not match "
                f"plan function parameters {self.plan_function.param_schema}"
            )
        self.schema = self.plan_function.result_schema
        self.node_id = _next_operator_id("ff")

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return (
            f"FF_APPLYP[{self.plan_function.name}, fo={self.fanout}]"
        )

    def to_dict(self) -> dict:
        return {
            "kind": "ff_apply",
            "child": self.child.to_dict(),
            "plan_function": self.plan_function.to_dict(),
            "fanout": self.fanout,
            "node_id": self.node_id,
        }


@dataclass
class AFFApplyNode(PlanNode):
    """``AFF_APPLYP(pf, pstream)``: adaptive parallel apply (no fanout arg)."""

    child: PlanNode
    plan_function: PlanFunction
    params: AdaptationParams
    schema: tuple[str, ...] = field(init=False)
    node_id: str = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        if tuple(self.child.schema) != tuple(self.plan_function.param_schema):
            raise PlanError(
                f"AFF_APPLYP input schema {self.child.schema} does not match "
                f"plan function parameters {self.plan_function.param_schema}"
            )
        self.schema = self.plan_function.result_schema
        self.node_id = _next_operator_id("aff")

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return (
            f"AFF_APPLYP[{self.plan_function.name}, p={self.params.p}, "
            f"drop={'on' if self.params.drop_stage else 'off'}]"
        )

    def to_dict(self) -> dict:
        return {
            "kind": "aff_apply",
            "child": self.child.to_dict(),
            "plan_function": self.plan_function.to_dict(),
            "params": self.params.to_dict(),
            "node_id": self.node_id,
        }


def plan_from_dict(data: dict) -> PlanNode:
    """Deserialize a plan tree (inverse of each node's ``to_dict``)."""
    kind = data.get("kind")
    if kind == "singleton":
        return SingletonNode()
    if kind == "param":
        return ParamNode(schema=tuple(data["schema"]))
    if kind == "apply":
        return ApplyNode(
            child=plan_from_dict(data["child"]),
            function=data["function"],
            arguments=tuple(expr_from_dict(a) for a in data["arguments"]),
            out_columns=tuple(data["out_columns"]),
        )
    if kind == "map":
        return MapNode(
            child=plan_from_dict(data["child"]),
            expression=expr_from_dict(data["expression"]),
            out_column=data["out_column"],
        )
    if kind == "filter":
        return FilterNode(
            child=plan_from_dict(data["child"]),
            op=data["op"],
            left=expr_from_dict(data["left"]),
            right=expr_from_dict(data["right"]),
        )
    if kind == "project":
        return ProjectNode(
            child=plan_from_dict(data["child"]),
            items=tuple((name, expr_from_dict(expr)) for name, expr in data["items"]),
        )
    if kind == "distinct":
        return DistinctNode(child=plan_from_dict(data["child"]))
    if kind == "sort":
        return SortNode(
            child=plan_from_dict(data["child"]),
            keys=tuple((column, ascending) for column, ascending in data["keys"]),
        )
    if kind == "limit":
        return LimitNode(child=plan_from_dict(data["child"]), count=data["count"])
    if kind == "aggregate":
        return AggregateNode(
            child=plan_from_dict(data["child"]),
            items=tuple(
                (name, agg_kind, expr_from_dict(expr))
                for name, agg_kind, expr in data["items"]
            ),
        )
    if kind == "union":
        return UnionNode(
            inputs=tuple(plan_from_dict(branch) for branch in data["inputs"])
        )
    if kind == "join":
        return JoinNode(
            left=plan_from_dict(data["left"]),
            right=plan_from_dict(data["right"]),
            conditions=tuple(tuple(pair) for pair in data["conditions"]),
        )
    if kind == "ff_apply":
        node = FFApplyNode(
            child=plan_from_dict(data["child"]),
            plan_function=PlanFunction.from_dict(data["plan_function"]),
            fanout=data["fanout"],
        )
        node.node_id = data.get("node_id", node.node_id)
        return node
    if kind == "aff_apply":
        node = AFFApplyNode(
            child=plan_from_dict(data["child"]),
            plan_function=PlanFunction.from_dict(data["plan_function"]),
            params=AdaptationParams.from_dict(data["params"]),
        )
        node.node_id = data.get("node_id", node.node_id)
        return node
    raise PlanError(f"cannot deserialize plan node from {data!r}")


def walk(node: PlanNode):
    """Depth-first iteration over a plan tree (node first, then children)."""
    yield node
    for child in node.children():
        yield from walk(child)
