"""Heuristic cost model.

The central plan creator only needs web-service-is-expensive ordering, but
``explain`` also reports estimated call counts and time so a user can see
*why* a sequential plan is slow before running it.  Estimates use assumed
per-operation fanouts (how many rows one call returns) and per-call costs;
both can be overridden, and the WSMED facade fills per-call costs in from
the registered endpoint profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.plan import (
    AFFApplyNode,
    AggregateNode,
    ApplyNode,
    FFApplyNode,
    FilterNode,
    JoinNode,
    MapNode,
    PlanNode,
    UnionNode,
)

#: Assumed grouping reduction: a GROUP BY emits roughly this fraction of
#: its input rows (a global aggregate always emits exactly one row).
GROUP_REDUCTION = 0.1
from repro.fdb.functions import FunctionKind, FunctionRegistry


@dataclass
class CostModel:
    """Assumptions for plan estimation.

    ``fanouts``        rows returned per call, by function name.
    ``call_costs``     seconds per call, by function name.
    ``default_fanout`` used for functions without an entry.
    ``default_cost``   used for OWFs without an entry (helping functions
                       and built-ins are free, matching the planner).
    ``selectivity``    assumed filter pass rate.
    """

    fanouts: dict[str, float] = field(default_factory=dict)
    call_costs: dict[str, float] = field(default_factory=dict)
    default_fanout: float = 10.0
    default_cost: float = 0.5
    selectivity: float = 0.5

    def fanout(self, function: str) -> float:
        return self.fanouts.get(function, self.default_fanout)

    def call_cost(self, function: str) -> float:
        return self.call_costs.get(function, self.default_cost)

    def assumptions_for(self, functions: set[str]) -> dict[str, tuple[float, float]]:
        """(call cost, fanout) per function — what a plan was costed with.

        The resident engine snapshots these next to a cached cost-based
        plan and re-optimizes when observed statistics drift from them.
        """
        return {
            name: (self.call_cost(name), self.fanout(name))
            for name in sorted(functions)
        }


def model_from_observations(
    base: CostModel, observed: dict[str, tuple[float, float]]
) -> CostModel:
    """Overlay observed per-function (call cost, fanout) onto ``base``.

    Returns a new model; ``base`` is not modified.  Observations win over
    profiled assumptions because they reflect the service as measured.
    """
    fanouts = dict(base.fanouts)
    call_costs = dict(base.call_costs)
    for name, (cost, fanout) in observed.items():
        if cost > 0.0:
            call_costs[name] = cost
        if fanout > 0.0:
            fanouts[name] = fanout
    return CostModel(
        fanouts=fanouts,
        call_costs=call_costs,
        default_fanout=base.default_fanout,
        default_cost=base.default_cost,
        selectivity=base.selectivity,
    )


@dataclass
class PlanEstimate:
    """Estimated execution profile of a plan."""

    calls: dict[str, float] = field(default_factory=dict)
    output_cardinality: float = 1.0
    sequential_time: float = 0.0

    @property
    def total_calls(self) -> float:
        return sum(self.calls.values())


def estimate_plan(
    plan: PlanNode, registry: FunctionRegistry, model: CostModel | None = None
) -> PlanEstimate:
    """Estimate call counts and sequential time for ``plan``."""
    model = model or CostModel()
    estimate = PlanEstimate()
    estimate.output_cardinality = _walk(plan, registry, model, estimate)
    return estimate


@dataclass
class NodeEstimate:
    """Per-operator estimate, for explain's annotated plan rendering."""

    input_cardinality: float
    output_cardinality: float
    calls: float = 0.0  # OWF calls issued by this node (0 for free ops)
    time: float = 0.0  # sequential seconds spent in this node


def estimate_nodes(
    plan: PlanNode, registry: FunctionRegistry, model: CostModel | None = None
) -> dict[int, NodeEstimate]:
    """Per-node estimates keyed by ``id(node)``.

    Uses the same propagation rules as :func:`estimate_plan`; parallel
    sections (FF/AFF) annotate their body nodes per parameter tuple.
    """
    model = model or CostModel()
    estimates: dict[int, NodeEstimate] = {}
    _annotate(plan, registry, model, estimates)
    return estimates


def _annotate(
    node: PlanNode,
    registry: FunctionRegistry,
    model: CostModel,
    estimates: dict[int, NodeEstimate],
) -> float:
    if isinstance(node, ApplyNode):
        in_card = _annotate(node.child, registry, model, estimates)
        function = registry.resolve(node.function)
        out_card = in_card * model.fanout(node.function)
        if function.kind is FunctionKind.OWF:
            estimates[id(node)] = NodeEstimate(
                in_card, out_card, in_card, in_card * model.call_cost(function.name)
            )
        else:
            estimates[id(node)] = NodeEstimate(in_card, out_card)
        return out_card
    if isinstance(node, FilterNode):
        in_card = _annotate(node.child, registry, model, estimates)
        out_card = in_card * model.selectivity
        estimates[id(node)] = NodeEstimate(in_card, out_card)
        return out_card
    if isinstance(node, JoinNode):
        left_card = _annotate(node.left, registry, model, estimates)
        right_card = _annotate(node.right, registry, model, estimates)
        out_card = max(1.0, min(left_card, right_card)) * model.selectivity * 2.0
        estimates[id(node)] = NodeEstimate(left_card + right_card, out_card)
        return out_card
    if isinstance(node, AggregateNode):
        in_card = _annotate(node.child, registry, model, estimates)
        out_card = (
            1.0 if not node.key_items else max(1.0, in_card * GROUP_REDUCTION)
        )
        estimates[id(node)] = NodeEstimate(in_card, out_card)
        return out_card
    if isinstance(node, UnionNode):
        in_card = sum(
            _annotate(branch, registry, model, estimates)
            for branch in node.inputs
        )
        estimates[id(node)] = NodeEstimate(in_card, in_card)
        return in_card
    if isinstance(node, (FFApplyNode, AFFApplyNode)):
        in_card = _annotate(node.child, registry, model, estimates)
        body = PlanEstimate()
        body_card = _walk(node.plan_function.body, registry, model, body)
        _annotate(node.plan_function.body, registry, model, estimates)
        estimates[id(node)] = NodeEstimate(
            in_card,
            body_card * in_card,
            body.total_calls * in_card,
            body.sequential_time * in_card,
        )
        return body_card * in_card
    children = node.children()
    if not children:
        estimates[id(node)] = NodeEstimate(0.0, 1.0)
        return 1.0
    in_card = _annotate(children[0], registry, model, estimates)
    estimates[id(node)] = NodeEstimate(in_card, in_card)
    return in_card


def _walk(
    node: PlanNode,
    registry: FunctionRegistry,
    model: CostModel,
    estimate: PlanEstimate,
) -> float:
    """Return the node's estimated output cardinality, accumulating calls."""
    if isinstance(node, ApplyNode):
        in_card = _walk(node.child, registry, model, estimate)
        function = registry.resolve(node.function)
        if function.kind is FunctionKind.OWF:
            estimate.calls[function.name] = (
                estimate.calls.get(function.name, 0.0) + in_card
            )
            estimate.sequential_time += in_card * model.call_cost(function.name)
        return in_card * model.fanout(node.function)
    if isinstance(node, FilterNode):
        return _walk(node.child, registry, model, estimate) * model.selectivity
    if isinstance(node, MapNode):
        return _walk(node.child, registry, model, estimate)
    if isinstance(node, JoinNode):
        left_card = _walk(node.left, registry, model, estimate)
        right_card = _walk(node.right, registry, model, estimate)
        # Equi-join cardinality estimate: the smaller side keys the match.
        return max(1.0, min(left_card, right_card)) * model.selectivity * 2.0
    if isinstance(node, AggregateNode):
        in_card = _walk(node.child, registry, model, estimate)
        if not node.key_items:
            return 1.0
        return max(1.0, in_card * GROUP_REDUCTION)
    if isinstance(node, UnionNode):
        # Branch service calls all execute; duplicates are removed above.
        return sum(
            _walk(branch, registry, model, estimate) for branch in node.inputs
        )
    if isinstance(node, (FFApplyNode, AFFApplyNode)):
        in_card = _walk(node.child, registry, model, estimate)
        # The shipped body runs once per parameter tuple.
        body_estimate = PlanEstimate()
        body_card = _walk(node.plan_function.body, registry, model, body_estimate)
        for name, calls in body_estimate.calls.items():
            estimate.calls[name] = estimate.calls.get(name, 0.0) + calls * in_card
        estimate.sequential_time += body_estimate.sequential_time * in_card
        return body_card * in_card
    children = node.children()
    if not children:
        return 1.0
    return _walk(children[0], registry, model, estimate)
