"""Physical algebra: plan nodes, the central plan creator and interpreter.

The central plan creator turns a calculus query into a left-deep chain of
apply (γ) operators (paper Figs 6 and 10) ordered by binding dependencies
under a heuristic cost model that treats web-service operations as
expensive.  The interpreter evaluates plans as asynchronous row streams
over a kernel; parallel operators (``FF_APPLYP`` / ``AFF_APPLYP``) are
delegated to the handler installed by :mod:`repro.parallel`.
"""

from repro.algebra.expressions import (
    ColExpr,
    ConcatExpr,
    ConstExpr,
    RowExpr,
    compile_expr,
    expr_from_calculus,
    expr_from_dict,
    expr_to_dict,
    render_expr,
)
from repro.algebra.plan import (
    AFFApplyNode,
    ApplyNode,
    FFApplyNode,
    FilterNode,
    MapNode,
    ParamNode,
    PlanFunction,
    PlanNode,
    ProjectNode,
    SingletonNode,
    plan_from_dict,
)
from repro.algebra.central import create_central_plan
from repro.algebra.interpreter import ExecutionContext, collect_rows, iterate_plan
from repro.algebra.explain import render_plan
from repro.algebra.cost import CostModel, estimate_plan

__all__ = [
    "ColExpr",
    "ConcatExpr",
    "ConstExpr",
    "RowExpr",
    "compile_expr",
    "expr_from_calculus",
    "expr_from_dict",
    "expr_to_dict",
    "render_expr",
    "AFFApplyNode",
    "ApplyNode",
    "FFApplyNode",
    "FilterNode",
    "MapNode",
    "ParamNode",
    "PlanFunction",
    "PlanNode",
    "ProjectNode",
    "SingletonNode",
    "plan_from_dict",
    "create_central_plan",
    "ExecutionContext",
    "collect_rows",
    "iterate_plan",
    "render_plan",
    "CostModel",
    "estimate_plan",
]
