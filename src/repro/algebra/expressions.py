"""Row expressions evaluated by plan operators.

Expressions are compiled against a node's input schema into positional
accessors once per plan execution, then applied per row.  They serialize
to plain dicts because plan functions containing them are *shipped* to
child query processes (Sec. III.A's code shipping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Union

from repro.calculus.expressions import ArgExpr, Concat, Const, Var
from repro.fdb.values import value_repr
from repro.util.errors import PlanError


@dataclass(frozen=True)
class ConstExpr:
    value: Any

    def __str__(self) -> str:
        return value_repr(self.value)


@dataclass(frozen=True)
class ColExpr:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConcatExpr:
    parts: tuple["RowExpr", ...]

    def __str__(self) -> str:
        return "concat(" + ", ".join(str(p) for p in self.parts) + ")"


RowExpr = Union[ConstExpr, ColExpr, ConcatExpr]


def expr_from_calculus(expression: ArgExpr) -> RowExpr:
    """Convert a calculus argument expression to a row expression."""
    if isinstance(expression, Const):
        return ConstExpr(expression.value)
    if isinstance(expression, Var):
        return ColExpr(expression.name)
    if isinstance(expression, Concat):
        return ConcatExpr(tuple(expr_from_calculus(p) for p in expression.parts))
    raise PlanError(f"cannot convert calculus expression {expression!r}")


def columns_of(expression: RowExpr) -> set[str]:
    if isinstance(expression, ColExpr):
        return {expression.name}
    if isinstance(expression, ConcatExpr):
        found: set[str] = set()
        for part in expression.parts:
            found |= columns_of(part)
        return found
    return set()


def compile_expr(
    expression: RowExpr, schema: tuple[str, ...]
) -> Callable[[tuple], Any]:
    """Compile ``expression`` into a positional row accessor for ``schema``."""
    if isinstance(expression, ConstExpr):
        value = expression.value
        return lambda row: value
    if isinstance(expression, ColExpr):
        try:
            position = schema.index(expression.name)
        except ValueError:
            raise PlanError(
                f"expression references {expression.name!r} which is not in "
                f"the input schema {schema}"
            ) from None
        return lambda row: row[position]
    if isinstance(expression, ConcatExpr):
        compiled = [compile_expr(part, schema) for part in expression.parts]
        return lambda row: "".join(_as_text(fn(row)) for fn in compiled)
    raise PlanError(f"unknown expression type {expression!r}")


def _as_text(value: Any) -> str:
    if isinstance(value, str):
        return value
    return value_repr(value)


def render_expr(expression: RowExpr) -> str:
    return str(expression)


# -- serialization (for plan-function shipping) -----------------------------------


def expr_to_dict(expression: RowExpr) -> dict:
    if isinstance(expression, ConstExpr):
        return {"kind": "const", "value": expression.value}
    if isinstance(expression, ColExpr):
        return {"kind": "col", "name": expression.name}
    if isinstance(expression, ConcatExpr):
        return {"kind": "concat", "parts": [expr_to_dict(p) for p in expression.parts]}
    raise PlanError(f"cannot serialize expression {expression!r}")


def expr_from_dict(data: dict) -> RowExpr:
    kind = data.get("kind")
    if kind == "const":
        return ConstExpr(data["value"])
    if kind == "col":
        return ColExpr(data["name"])
    if kind == "concat":
        return ConcatExpr(tuple(expr_from_dict(p) for p in data["parts"]))
    raise PlanError(f"cannot deserialize expression from {data!r}")
