"""The central plan creator (paper Fig 5, "central plan creator").

Orders the calculus predicates so every function's inputs are bound before
it executes — the dependent-join ordering under limited access patterns —
and emits a left-deep chain of apply operators like the paper's Figs 6
and 10.  The ordering heuristic is the paper's "simple heuristic web
service cost model based on the signatures": local helping functions are
free and scheduled as early as possible, web-service operations are
expensive and keep their query order among themselves; filters run at the
earliest point their variables are available; projections prune dead
columns after every step.

Queries mixing *independent* service chains — the paper's future-work
direction (Sec. VII) — are planned as bushy trees: each connected
component of the dependency graph becomes its own chain, and the chains
are combined with hash equi-joins whose inputs evaluate concurrently.

``DISTINCT`` / ``ORDER BY`` / ``LIMIT`` become post-processing operators
above the head projection; the parallelizer keeps them in the coordinator.
"""

from __future__ import annotations

from repro.algebra.expressions import ColExpr, columns_of, expr_from_calculus
from repro.algebra.plan import (
    AggregateNode,
    ApplyNode,
    DistinctNode,
    FilterNode,
    JoinNode,
    LimitNode,
    MapNode,
    PlanNode,
    ProjectNode,
    SingletonNode,
    SortNode,
)
from repro.calculus.expressions import (
    CalculusQuery,
    Concat,
    FilterPredicate,
    FunctionPredicate,
    Var,
)
from repro.fdb.functions import FunctionKind, FunctionRegistry
from repro.util.errors import BindingError, PlanError


def create_central_plan(
    calculus: CalculusQuery, registry: FunctionRegistry
) -> PlanNode:
    """Build the sequential (central) execution plan for ``calculus``."""
    return _Builder(calculus, registry).build()


class _Builder:
    def __init__(self, calculus: CalculusQuery, registry: FunctionRegistry) -> None:
        self.calculus = calculus
        self.registry = registry
        self._synthetic = 0

    # -- entry point -------------------------------------------------------------

    def build(self) -> PlanNode:
        components = self._components()
        cross_filters = self._cross_filters(components)
        chains = [
            self._build_chain(
                component, self._component_filters(component), cross_filters
            )
            for component in components
        ]
        plan = self._join_components(chains, components, cross_filters)
        plan = self._project_head(plan)
        return self._post_process(plan)

    # -- component analysis --------------------------------------------------------

    def _components(self) -> list[list[FunctionPredicate]]:
        """Connected components of function predicates sharing variables."""
        predicates = self.calculus.function_predicates()
        parents = list(range(len(predicates)))

        def find(i: int) -> int:
            while parents[i] != i:
                parents[i] = parents[parents[i]]
                i = parents[i]
            return i

        def union(i: int, j: int) -> None:
            parents[find(i)] = find(j)

        owner: dict[str, int] = {}
        for index, predicate in enumerate(predicates):
            names = {v.name for v in predicate.input_variables()}
            names |= {v.name for v in predicate.outputs}
            for name in names:
                if name in owner:
                    union(index, owner[name])
                else:
                    owner[name] = index
        groups: dict[int, list[FunctionPredicate]] = {}
        for index, predicate in enumerate(predicates):
            groups.setdefault(find(index), []).append(predicate)
        # Preserve query order of first appearance.
        ordered = sorted(groups.values(), key=lambda g: predicates.index(g[0]))
        return ordered

    @staticmethod
    def _component_vars(component: list[FunctionPredicate]) -> set[str]:
        names: set[str] = set()
        for predicate in component:
            names |= {v.name for v in predicate.input_variables()}
            names |= {v.name for v in predicate.outputs}
        return names

    def _component_filters(
        self, component: list[FunctionPredicate]
    ) -> list[FilterPredicate]:
        names = self._component_vars(component)
        return [
            predicate
            for predicate in self.calculus.filter_predicates()
            if {v.name for v in predicate.input_variables()} <= names
        ]

    def _cross_filters(
        self, components: list[list[FunctionPredicate]]
    ) -> list[FilterPredicate]:
        if len(components) <= 1:
            return []
        component_vars = [self._component_vars(c) for c in components]
        cross = []
        for predicate in self.calculus.filter_predicates():
            needed = {v.name for v in predicate.input_variables()}
            if not any(needed <= names for names in component_vars):
                cross.append(predicate)
        return cross

    # -- one dependent chain -----------------------------------------------------------

    def _build_chain(
        self,
        component: list[FunctionPredicate],
        filters: list[FilterPredicate],
        cross_filters: list[FilterPredicate],
    ) -> PlanNode:
        remaining = list(component)
        pending = list(filters)
        plan: PlanNode = SingletonNode()
        while remaining:
            predicate = self._pick_next(remaining, set(plan.schema))
            remaining.remove(predicate)
            live_later = self._live_columns(remaining, pending + cross_filters)
            plan = self._apply_predicate(plan, predicate, live_later)
            plan, pending = self._apply_ready_filters(plan, pending)
            plan = self._prune(plan, remaining, pending + cross_filters)
        if pending:
            unmet = "; ".join(str(f) for f in pending)
            raise BindingError(f"filters reference unavailable columns: {unmet}")
        return plan

    # -- joining independent chains ---------------------------------------------------------

    def _join_components(
        self,
        chains: list[PlanNode],
        components: list[list[FunctionPredicate]],
        cross_filters: list[FilterPredicate],
    ) -> PlanNode:
        plan = chains[0]
        pending = list(cross_filters)
        for chain in chains[1:]:
            conditions, pending = self._split_join_conditions(plan, chain, pending)
            if not conditions:
                raise BindingError(
                    "independent service chains must be connected by at "
                    "least one equality predicate (cartesian products over "
                    "web services are not supported)"
                )
            plan = JoinNode(left=plan, right=chain, conditions=tuple(conditions))
            # Filters that became evaluable after this join.
            still_pending = []
            for predicate in pending:
                needed = {v.name for v in predicate.input_variables()}
                if needed <= set(plan.schema):
                    plan = FilterNode(
                        plan,
                        predicate.op,
                        expr_from_calculus(predicate.left),
                        expr_from_calculus(predicate.right),
                    )
                else:
                    still_pending.append(predicate)
            pending = still_pending
        if pending:
            unmet = "; ".join(str(f) for f in pending)
            raise BindingError(f"filters reference unavailable columns: {unmet}")
        return plan

    @staticmethod
    def _split_join_conditions(
        left: PlanNode, right: PlanNode, cross_filters: list[FilterPredicate]
    ) -> tuple[list[tuple[str, str]], list[FilterPredicate]]:
        """Extract Var = Var equalities joining ``left`` with ``right``."""
        conditions: list[tuple[str, str]] = []
        rest: list[FilterPredicate] = []
        for predicate in cross_filters:
            usable = (
                predicate.op == "="
                and isinstance(predicate.left, Var)
                and isinstance(predicate.right, Var)
            )
            if usable:
                a, b = predicate.left.name, predicate.right.name
                if a in left.schema and b in right.schema:
                    conditions.append((a, b))
                    continue
                if b in left.schema and a in right.schema:
                    conditions.append((b, a))
                    continue
            rest.append(predicate)
        return conditions, rest

    # -- ordering -----------------------------------------------------------------

    def _pick_next(
        self, remaining: list[FunctionPredicate], available: set[str]
    ) -> FunctionPredicate:
        eligible = [
            predicate
            for predicate in remaining
            if {v.name for v in predicate.input_variables()} <= available
        ]
        if not eligible:
            blocked = "; ".join(
                f"{p.function} needs "
                f"{sorted(v.name for v in p.input_variables() - _vars(available))}"
                for p in remaining
            )
            raise BindingError(
                f"no executable predicate — binding patterns cannot be "
                f"satisfied: {blocked}"
            )
        cheap = [
            predicate
            for predicate in eligible
            if self.registry.resolve(predicate.function).kind
            is not FunctionKind.OWF
        ]
        return (cheap or eligible)[0]

    # -- plan construction ------------------------------------------------------------

    def _apply_predicate(
        self, plan: PlanNode, predicate: FunctionPredicate, live_later: set[str]
    ) -> PlanNode:
        arguments = []
        for argument in predicate.arguments:
            expression = expr_from_calculus(argument)
            if isinstance(argument, Concat):
                # The paper applies concat with its own γ operator (Fig 6)
                # before the dependent call; mirror that with a map node.
                self._synthetic += 1
                column = f"expr{self._synthetic}"
                plan = MapNode(plan, expression, column)
                expression = ColExpr(column)
            arguments.append(expression)
        # Prune before the apply, so a parallelizable section's parameter
        # tuple is as narrow as the paper's plan functions (PF2 takes only
        # the concatenated place specification, Fig 8).
        needed = set(live_later)
        for expression in arguments:
            needed |= columns_of(expression)
        keep = tuple(column for column in plan.schema if column in needed)
        if keep != plan.schema:
            plan = ProjectNode(plan, tuple((c, ColExpr(c)) for c in keep))
        return ApplyNode(
            child=plan,
            function=predicate.function,
            arguments=tuple(arguments),
            out_columns=tuple(v.name for v in predicate.outputs),
        )

    def _apply_ready_filters(
        self, plan: PlanNode, filters: list[FilterPredicate]
    ) -> tuple[PlanNode, list[FilterPredicate]]:
        pending = []
        for predicate in filters:
            needed = {v.name for v in predicate.input_variables()}
            if needed <= set(plan.schema):
                plan = FilterNode(
                    plan,
                    predicate.op,
                    expr_from_calculus(predicate.left),
                    expr_from_calculus(predicate.right),
                )
            else:
                pending.append(predicate)
        return plan, pending

    def _live_columns(
        self,
        remaining: list[FunctionPredicate],
        filters: list[FilterPredicate],
    ) -> set[str]:
        """Columns still needed by later predicates, filters or the head."""
        live: set[str] = set()
        for predicate in remaining:
            live |= {v.name for v in predicate.input_variables()}
        for predicate in filters:
            live |= {v.name for v in predicate.input_variables()}
        for item in self.calculus.head:
            live |= {
                column
                for column in columns_of(expr_from_calculus(item.expression))
            }
        return live

    def _prune(
        self,
        plan: PlanNode,
        remaining: list[FunctionPredicate],
        filters: list[FilterPredicate],
    ) -> PlanNode:
        """Project away columns nothing downstream will read."""
        live = self._live_columns(remaining, filters)
        keep = tuple(column for column in plan.schema if column in live)
        if keep == plan.schema:
            return plan
        return ProjectNode(plan, tuple((column, ColExpr(column)) for column in keep))

    def _project_head(self, plan: PlanNode) -> PlanNode:
        if self.calculus.has_aggregates():
            return self._aggregate_head(plan)
        items = tuple(
            (item.name, expr_from_calculus(item.expression))
            for item in self.calculus.head
        )
        return ProjectNode(plan, items)

    def _aggregate_head(self, plan: PlanNode) -> PlanNode:
        """Replace the head projection with a hash aggregation.

        Grouping keys and aggregates appear in select-list order; the
        calculus generator has already verified every non-aggregated head
        item is a GROUP BY key.
        """
        keys = set(self.calculus.group_by)
        items = tuple(
            (
                item.name,
                "key" if item.aggregate is None else item.aggregate,
                expr_from_calculus(item.expression),
            )
            for item in self.calculus.head
        )
        for name, kind, _ in items:
            if kind == "key" and name not in keys:
                raise PlanError(
                    f"non-aggregated column {name!r} missing from GROUP BY"
                )
        return AggregateNode(plan, items)

    def _post_process(self, plan: PlanNode) -> PlanNode:
        """DISTINCT / ORDER BY / LIMIT above the head projection."""
        if self.calculus.distinct:
            plan = DistinctNode(plan)
        if self.calculus.order_by:
            for column, _ in self.calculus.order_by:
                if column not in plan.schema:
                    raise PlanError(f"unknown ORDER BY column {column!r}")
            plan = SortNode(plan, tuple(self.calculus.order_by))
        if self.calculus.limit is not None:
            plan = LimitNode(plan, self.calculus.limit)
        return plan


def _vars(names: set[str]) -> set[Var]:
    return {Var(name) for name in names}
