"""Cost-based central plan optimizer.

The heuristic builder (:mod:`repro.algebra.central`) keeps web-service
calls in query order — correct, but routinely wrong-way-round when an
expensive high-fanout service is named before a cheap selective one.
This module searches dependency-respecting orderings and bushy join
shapes and costs them with :class:`~repro.algebra.cost.CostModel`:

* **Chain ordering** — per connected component, dynamic programming over
  subsets of predicates (the classic DP-over-sets join ordering, adapted
  to binding-pattern feasibility: a predicate may only be placed once
  its input variables are produced).  Cardinality is set-determined —
  the product of placed fanouts times the selectivity of every filter
  that has become applicable — so the DP is exact for the cost model.
  Components larger than ``dp_limit`` fall back to greedy ordering with
  bounded lookahead.

* **Bushy joins** — independent components are combined by a second DP
  over connected sub-sets of components, minimizing intermediate join
  cardinality, instead of the heuristic's left-deep query-order chain.
  This also plans queries the heuristic rejects: a left-deep walk fails
  when the next component in query order shares no equality predicate
  with the accumulated plan even though another component does.

The optimizer never changes *what* a plan computes, only the order and
shape; equivalence tests compare row bags against the heuristic plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.central import _Builder, create_central_plan
from repro.algebra.cost import CostModel, PlanEstimate, estimate_plan
from repro.algebra.expressions import expr_from_calculus
from repro.algebra.plan import FilterNode, JoinNode, PlanNode
from repro.calculus.expressions import (
    CalculusQuery,
    FilterPredicate,
    FunctionPredicate,
    Var,
)
from repro.calculus.rewrite import AppliedRewrite
from repro.fdb.functions import FunctionKind, FunctionRegistry
from repro.util.errors import BindingError


@dataclass(frozen=True)
class OptimizerConfig:
    """Search-space bounds for the cost-based optimizer.

    ``dp_limit``       max predicates per component for exact subset DP;
                       larger components use greedy-with-lookahead.
    ``lookahead``      greedy fallback looks this many placements ahead.
    ``join_dp_limit``  max independent components for the bushy join DP;
                       beyond it, a connectivity-aware left-deep walk.
    """

    dp_limit: int = 12
    lookahead: int = 2
    join_dp_limit: int = 8


@dataclass
class ComponentChoice:
    """How one dependent chain was ordered, for explain output."""

    functions: tuple[str, ...]  # "alias:function" in chosen order
    heuristic_functions: tuple[str, ...]  # same, heuristic order ("" if n/a)
    strategy: str  # "dp" | "greedy" | "fixed"
    subsets_explored: int
    estimated_cost: float  # OWF seconds for the chosen order
    heuristic_cost: float | None  # same for the heuristic order


@dataclass
class OptimizerReport:
    """Everything the optimizer decided, and why."""

    components: list[ComponentChoice] = field(default_factory=list)
    join_shape: str = ""  # rendered tree, e.g. "((gp ⋈ t) ⋈ z)"
    join_strategy: str = ""  # "dp" | "left-deep" | "single"
    rewrites: list[AppliedRewrite] = field(default_factory=list)
    assumptions: dict[str, tuple[float, float]] = field(default_factory=dict)
    estimate: PlanEstimate | None = None
    heuristic_estimate: PlanEstimate | None = None

    @property
    def estimated_cost(self) -> float:
        return sum(c.estimated_cost for c in self.components)

    @property
    def heuristic_cost(self) -> float | None:
        total = 0.0
        for choice in self.components:
            if choice.heuristic_cost is None:
                return None
            total += choice.heuristic_cost
        return total

    def describe(self) -> str:
        lines = []
        for index, choice in enumerate(self.components):
            order = " -> ".join(choice.functions)
            lines.append(
                f"component {index} [{choice.strategy}, "
                f"{choice.subsets_explored} subsets]: {order} "
                f"(est {choice.estimated_cost:.3f}s)"
            )
            if (
                choice.heuristic_cost is not None
                and choice.functions != choice.heuristic_functions
            ):
                heuristic = " -> ".join(choice.heuristic_functions)
                lines.append(
                    f"  heuristic order: {heuristic} "
                    f"(est {choice.heuristic_cost:.3f}s)"
                )
        if self.join_shape:
            lines.append(f"join shape [{self.join_strategy}]: {self.join_shape}")
        for rewrite in self.rewrites:
            lines.append("rewrite " + rewrite.describe().replace("\n", "\n  "))
        return "\n".join(lines)


def create_cost_based_plan(
    calculus: CalculusQuery,
    registry: FunctionRegistry,
    model: CostModel | None = None,
    config: OptimizerConfig | None = None,
    rewrites: list[AppliedRewrite] | None = None,
) -> tuple[PlanNode, OptimizerReport]:
    """Build a cost-optimized central plan plus a report of the choices.

    ``calculus`` must have no unbound variables (run
    :func:`repro.calculus.rewrite.rewrite_unfittable` first).
    """
    model = model or CostModel()
    builder = _CostBuilder(calculus, registry, model, config or OptimizerConfig())
    plan = builder.build()
    report = builder.report
    report.rewrites = list(rewrites or [])
    functions = {
        p.function
        for p in calculus.function_predicates()
        if registry.resolve(p.function).kind is FunctionKind.OWF
    }
    report.assumptions = model.assumptions_for(functions)
    report.estimate = estimate_plan(plan, registry, model)
    try:
        heuristic_plan = create_central_plan(calculus, registry)
    except BindingError:
        report.heuristic_estimate = None
    else:
        report.heuristic_estimate = estimate_plan(heuristic_plan, registry, model)
    return plan, report


class _CostBuilder(_Builder):
    """A central-plan builder that follows cost-chosen orders and shapes.

    Reuses every operator-construction detail of the heuristic builder
    (pre-apply pruning, concat maps, eager filters, post-processing) so
    plans differ only in predicate order and join shape.
    """

    def __init__(
        self,
        calculus: CalculusQuery,
        registry: FunctionRegistry,
        model: CostModel,
        config: OptimizerConfig,
    ) -> None:
        super().__init__(calculus, registry)
        self.model = model
        self.config = config
        self.report = OptimizerReport()
        self._positions: dict[int, int] = {}  # id(predicate) -> chosen slot

    # -- entry point -------------------------------------------------------------

    def build(self) -> PlanNode:
        components = self._components()
        cross_filters = self._cross_filters(components)
        ordered_components = []
        for component in components:
            order = self._optimize_component(
                component, self._component_filters(component)
            )
            for position, predicate in enumerate(order):
                self._positions[id(predicate)] = position
            ordered_components.append(order)
        chains = [
            self._build_chain(
                component, self._component_filters(component), cross_filters
            )
            for component in ordered_components
        ]
        plan = self._bushy_join(chains, ordered_components, cross_filters)
        plan = self._project_head(plan)
        return self._post_process(plan)

    def _pick_next(
        self, remaining: list[FunctionPredicate], available: set[str]
    ) -> FunctionPredicate:
        for predicate in sorted(
            remaining, key=lambda p: self._positions.get(id(p), 0)
        ):
            if {v.name for v in predicate.input_variables()} <= available:
                return predicate
        return super()._pick_next(remaining, available)  # diagnostics path

    # -- chain ordering ----------------------------------------------------------

    def _optimize_component(
        self,
        component: list[FunctionPredicate],
        filters: list[FilterPredicate],
    ) -> list[FunctionPredicate]:
        n = len(component)
        heuristic = self._heuristic_order(component)
        if n <= 1:
            order = list(component)
            self._record_choice(order, heuristic, "fixed", 0, filters)
            return order
        if n <= self.config.dp_limit:
            order, explored = self._dp_order(component, filters)
            strategy = "dp"
        else:
            order, explored = self._greedy_order(component, filters)
            strategy = "greedy"
        if order is None:
            # No feasible ordering; keep query order so _pick_next's base
            # diagnostics fire with the standard BindingError.
            order = list(component)
            strategy = "fixed"
        self._record_choice(order, heuristic, strategy, explored, filters)
        return order

    def _record_choice(
        self,
        order: list[FunctionPredicate],
        heuristic: list[FunctionPredicate] | None,
        strategy: str,
        explored: int,
        filters: list[FilterPredicate],
    ) -> None:
        cost, _ = self._simulate_chain(order, filters)
        heuristic_cost = None
        heuristic_names: tuple[str, ...] = ()
        if heuristic is not None:
            heuristic_cost, _ = self._simulate_chain(heuristic, filters)
            heuristic_names = tuple(
                f"{p.alias}:{p.function}" for p in heuristic
            )
        self.report.components.append(
            ComponentChoice(
                functions=tuple(f"{p.alias}:{p.function}" for p in order),
                heuristic_functions=heuristic_names,
                strategy=strategy,
                subsets_explored=explored,
                estimated_cost=cost,
                heuristic_cost=heuristic_cost,
            )
        )

    def _simulate_chain(
        self, order: list[FunctionPredicate], filters: list[FilterPredicate]
    ) -> tuple[float, float]:
        """(OWF seconds, output cardinality) of executing ``order``.

        Mirrors :func:`estimate_plan` over the chain the builder will
        emit: calls are driven by the filtered input cardinality, and
        each filter applies at the earliest point its variables exist.
        """
        available: set[str] = set()
        pending = list(filters)
        cardinality = 1.0
        cost = 0.0
        for predicate in order:
            function = self.registry.resolve(predicate.function)
            if function.kind is FunctionKind.OWF:
                cost += cardinality * self.model.call_cost(function.name)
            cardinality *= self.model.fanout(predicate.function)
            available |= {v.name for v in predicate.outputs}
            still_pending = []
            for filter_predicate in pending:
                needed = {v.name for v in filter_predicate.input_variables()}
                if needed <= available:
                    cardinality *= self.model.selectivity
                else:
                    still_pending.append(filter_predicate)
            pending = still_pending
        return cost, cardinality

    def _heuristic_order(
        self, component: list[FunctionPredicate]
    ) -> list[FunctionPredicate] | None:
        """The order the heuristic builder would pick (None if stuck)."""
        remaining = list(component)
        available: set[str] = set()
        order = []
        while remaining:
            eligible = [
                p
                for p in remaining
                if {v.name for v in p.input_variables()} <= available
            ]
            if not eligible:
                return None
            cheap = [
                p
                for p in eligible
                if self.registry.resolve(p.function).kind is not FunctionKind.OWF
            ]
            picked = (cheap or eligible)[0]
            order.append(picked)
            remaining.remove(picked)
            available |= {v.name for v in picked.outputs}
        return order

    def _dp_order(
        self, component: list[FunctionPredicate], filters: list[FilterPredicate]
    ) -> tuple[list[FunctionPredicate] | None, int]:
        """Exact subset DP.  Returns (order, subsets explored)."""
        n = len(component)
        out_vars = [{v.name for v in p.outputs} for p in component]
        in_vars = [{v.name for v in p.input_variables()} for p in component]
        fanouts = [self.model.fanout(p.function) for p in component]
        costs = [
            self.model.call_cost(p.function)
            if self.registry.resolve(p.function).kind is FunctionKind.OWF
            else 0.0
            for p in component
        ]
        filter_vars = [{v.name for v in f.input_variables()} for f in filters]
        size = 1 << n
        infinity = float("inf")
        # Set-determined state: produced variables and filtered cardinality.
        produced: list[set[str]] = [set()] * size
        cardinality = [1.0] * size
        best = [infinity] * size
        last = [-1] * size
        best[0] = 0.0
        for mask in range(1, size):
            low = (mask & -mask).bit_length() - 1
            previous = mask ^ (1 << low)
            produced[mask] = produced[previous] | out_vars[low]
            # The filtered cardinality is a function of the set, not the
            # order: placed fanouts times selectivity per applicable filter.
            applicable = sum(
                1 for needed in filter_vars if needed <= produced[mask]
            )
            raw = 1.0
            for i in range(n):
                if mask & (1 << i):
                    raw *= fanouts[i]
            cardinality[mask] = raw * (self.model.selectivity**applicable)
        explored = 0
        for mask in range(1, size):
            for i in range(n):
                bit = 1 << i
                if not mask & bit:
                    continue
                previous = mask ^ bit
                if best[previous] == infinity:
                    continue
                if not in_vars[i] <= produced[previous]:
                    continue
                candidate = best[previous] + cardinality[previous] * costs[i]
                # `<=` + ascending i: on exact ties the highest index is
                # placed last, keeping earlier query positions earlier.
                if candidate < best[mask] or (
                    candidate == best[mask] and i > last[mask]
                ):
                    best[mask] = candidate
                    last[mask] = i
            if best[mask] < infinity:
                explored += 1
        full = size - 1
        if best[full] == infinity:
            return None, explored
        order_indices = []
        mask = full
        while mask:
            i = last[mask]
            order_indices.append(i)
            mask ^= 1 << i
        order_indices.reverse()
        return [component[i] for i in order_indices], explored

    def _greedy_order(
        self, component: list[FunctionPredicate], filters: list[FilterPredicate]
    ) -> tuple[list[FunctionPredicate] | None, int]:
        """Greedy with bounded lookahead for large components."""
        n = len(component)
        out_vars = [{v.name for v in p.outputs} for p in component]
        in_vars = [{v.name for v in p.input_variables()} for p in component]
        fanouts = [self.model.fanout(p.function) for p in component]
        costs = [
            self.model.call_cost(p.function)
            if self.registry.resolve(p.function).kind is FunctionKind.OWF
            else 0.0
            for p in component
        ]
        filter_vars = [{v.name for v in f.input_variables()} for f in filters]
        explored = 0

        def filtered(cardinality: float, produced: set[str], used: set[int]):
            still = set(used)
            for index, needed in enumerate(filter_vars):
                if index not in used and needed <= produced:
                    cardinality *= self.model.selectivity
                    still.add(index)
            return cardinality, still

        def lookahead_cost(
            placed: set[int],
            produced: set[str],
            cardinality: float,
            used_filters: set[int],
            depth: int,
        ) -> float:
            nonlocal explored
            if depth == 0 or len(placed) == n:
                return 0.0
            best_extra = float("inf")
            for i in range(n):
                if i in placed or not in_vars[i] <= produced:
                    continue
                explored += 1
                step = cardinality * costs[i]
                next_produced = produced | out_vars[i]
                next_cardinality, next_used = filtered(
                    cardinality * fanouts[i], next_produced, used_filters
                )
                extra = step + lookahead_cost(
                    placed | {i},
                    next_produced,
                    next_cardinality,
                    next_used,
                    depth - 1,
                )
                best_extra = min(best_extra, extra)
            return 0.0 if best_extra == float("inf") else best_extra

        order_indices: list[int] = []
        placed: set[int] = set()
        produced: set[str] = set()
        used_filters: set[int] = set()
        cardinality = 1.0
        while len(placed) < n:
            best_index = -1
            best_score = float("inf")
            for i in range(n):
                if i in placed or not in_vars[i] <= produced:
                    continue
                step = cardinality * costs[i]
                next_produced = produced | out_vars[i]
                next_cardinality, next_used = filtered(
                    cardinality * fanouts[i], next_produced, used_filters
                )
                score = step + lookahead_cost(
                    placed | {i},
                    next_produced,
                    next_cardinality,
                    next_used,
                    self.config.lookahead - 1,
                )
                if score < best_score:  # ties keep query order (first wins)
                    best_score = score
                    best_index = i
            if best_index < 0:
                return None, explored
            order_indices.append(best_index)
            placed.add(best_index)
            produced |= out_vars[best_index]
            cardinality, used_filters = filtered(
                cardinality * fanouts[best_index], produced, used_filters
            )
        return [component[i] for i in order_indices], explored

    # -- bushy joins -------------------------------------------------------------

    def _bushy_join(
        self,
        chains: list[PlanNode],
        components: list[list[FunctionPredicate]],
        cross_filters: list[FilterPredicate],
    ) -> PlanNode:
        if len(chains) == 1:
            self.report.join_strategy = "single"
            return self._join_components(chains, components, cross_filters)
        component_vars = [self._component_vars(c) for c in components]
        cards = [
            self._simulate_chain(
                components[i], self._component_filters(components[i])
            )[1]
            for i in range(len(components))
        ]
        if len(chains) <= self.config.join_dp_limit:
            shape = self._join_dp(component_vars, cards, cross_filters)
            self.report.join_strategy = "dp"
        else:
            shape = self._join_left_deep(component_vars, cross_filters)
            self.report.join_strategy = "left-deep"
        if shape is None:
            raise BindingError(
                "independent service chains must be connected by at "
                "least one equality predicate (cartesian products over "
                "web services are not supported)"
            )
        self.report.join_shape = self._render_shape(shape, components)
        pending = list(cross_filters)
        plan, pending = self._build_shape(shape, chains, pending)
        if pending:
            unmet = "; ".join(str(f) for f in pending)
            raise BindingError(f"filters reference unavailable columns: {unmet}")
        return plan

    @staticmethod
    def _connected(
        a_vars: set[str], b_vars: set[str], cross_filters: list[FilterPredicate]
    ) -> bool:
        for predicate in cross_filters:
            if predicate.op != "=":
                continue
            left, right = predicate.left, predicate.right
            if not (isinstance(left, Var) and isinstance(right, Var)):
                continue
            if (left.name in a_vars and right.name in b_vars) or (
                right.name in a_vars and left.name in b_vars
            ):
                return True
        return False

    def _join_dp(
        self,
        component_vars: list[set[str]],
        cards: list[float],
        cross_filters: list[FilterPredicate],
    ):
        """DP over connected component subsets, minimizing the sum of
        intermediate join cardinalities.  Returns a nested-tuple shape of
        component indices, or None when the full set is unjoinable."""
        n = len(component_vars)
        size = 1 << n
        mask_vars = [
            set().union(
                *(component_vars[i] for i in range(n) if mask & (1 << i))
            )
            if mask
            else set()
            for mask in range(size)
        ]
        best: list[tuple[float, float, object] | None] = [None] * size
        for i in range(n):
            best[1 << i] = (0.0, cards[i], i)
        for mask in range(1, size):
            if bin(mask).count("1") < 2:
                continue
            low = mask & -mask
            submask = (mask - 1) & mask
            while submask:
                if submask & low:  # anchor: left side holds the lowest bit
                    other = mask ^ submask
                    left, right = best[submask], best[other]
                    if left is not None and right is not None:
                        if self._connected(
                            mask_vars[submask], mask_vars[other], cross_filters
                        ):
                            joined = (
                                max(1.0, min(left[1], right[1]))
                                * self.model.selectivity
                                * 2.0
                            )
                            cost = left[0] + right[0] + joined
                            if best[mask] is None or cost < best[mask][0]:
                                best[mask] = (
                                    cost,
                                    joined,
                                    (left[2], right[2]),
                                )
                submask = (submask - 1) & mask
        full = best[size - 1]
        return None if full is None else full[2]

    def _join_left_deep(
        self,
        component_vars: list[set[str]],
        cross_filters: list[FilterPredicate],
    ):
        """Connectivity-aware left-deep walk for many components."""
        n = len(component_vars)
        shape: object = 0
        joined_vars = set(component_vars[0])
        remaining = list(range(1, n))
        while remaining:
            next_index = None
            for i in remaining:
                if self._connected(joined_vars, component_vars[i], cross_filters):
                    next_index = i
                    break
            if next_index is None:
                return None
            shape = (shape, next_index)
            joined_vars |= component_vars[next_index]
            remaining.remove(next_index)
        return shape

    def _build_shape(
        self,
        shape,
        chains: list[PlanNode],
        pending: list[FilterPredicate],
    ) -> tuple[PlanNode, list[FilterPredicate]]:
        if isinstance(shape, int):
            return chains[shape], pending
        left_plan, pending = self._build_shape(shape[0], chains, pending)
        right_plan, pending = self._build_shape(shape[1], chains, pending)
        conditions, pending = self._split_join_conditions(
            left_plan, right_plan, pending
        )
        if not conditions:
            raise BindingError(
                "independent service chains must be connected by at "
                "least one equality predicate (cartesian products over "
                "web services are not supported)"
            )
        plan: PlanNode = JoinNode(
            left=left_plan, right=right_plan, conditions=tuple(conditions)
        )
        still_pending = []
        for predicate in pending:
            needed = {v.name for v in predicate.input_variables()}
            if needed <= set(plan.schema):
                plan = FilterNode(
                    plan,
                    predicate.op,
                    expr_from_calculus(predicate.left),
                    expr_from_calculus(predicate.right),
                )
            else:
                still_pending.append(predicate)
        return plan, still_pending

    def _render_shape(self, shape, components: list[list[FunctionPredicate]]):
        if isinstance(shape, int):
            aliases = "+".join(p.alias for p in components[shape])
            return aliases
        left = self._render_shape(shape[0], components)
        right = self._render_shape(shape[1], components)
        return f"({left} ⋈ {right})"
