"""Plan interpreter: evaluates plan trees as asynchronous row streams.

Rows flow as plain tuples.  Web-service calls (OWF applies) suspend on the
kernel through the service broker, which is where all virtual time is
spent; pure operators (map, filter, project) are free, matching the
paper's cost assumption that web-service operations dominate.

``FF_APPLYP``/``AFF_APPLYP`` nodes are executed by the *parallel handler*
installed in the context by :mod:`repro.parallel.executor`; a context
without one (a central-only execution) rejects parallel plans explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Callable, Optional

from repro.algebra.expressions import compile_expr
from repro.cache import CacheConfig, CallCache
from repro.algebra.plan import (
    AFFApplyNode,
    AggregateNode,
    ApplyNode,
    DistinctNode,
    FFApplyNode,
    FilterNode,
    JoinNode,
    LimitNode,
    MapNode,
    ParamNode,
    PlanNode,
    ProjectNode,
    SingletonNode,
    SortNode,
    UnionNode,
)
from repro.fdb.functions import FunctionKind, FunctionRegistry
from repro.obs.spans import NULL_RECORDER, NullRecorder
from repro.runtime.base import Kernel
from repro.services.broker import CallRecorder, ServiceBroker
from repro.util.errors import PlanError
from repro.util.trace import TraceLog

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


@dataclass
class ExecutionContext:
    """Everything a plan needs to run under one kernel."""

    kernel: Kernel
    broker: ServiceBroker
    functions: FunctionRegistry
    parallel_handler: Optional[
        Callable[[PlanNode, AsyncIterator[tuple], "ExecutionContext"], AsyncIterator[tuple]]
    ] = None
    trace: TraceLog = field(default_factory=TraceLog)
    # Transient-fault policy for web-service calls: a retriable
    # ServiceFault is retried up to `retries` times, sleeping
    # `retry_backoff` model seconds between attempts.
    retries: int = 0
    retry_backoff: float = 0.5
    # Name of the query process this context belongs to (q0 = coordinator);
    # child processes run under a derived context with their own name.
    process_name: str = "q0"
    # Operator pools owned by this process, keyed by the plan node's stable
    # `node_id` (assigned at plan-build time; id(node) is unsafe because a
    # collected node's address can be reused).  Each FF_APPLYP/AFF_APPLYP
    # node instance keeps one persistent pool of child processes across
    # plan-function invocations (Sec. III: children receive their plan
    # function once, before execution).
    pools: dict = field(default_factory=dict)
    # Per-process web-service call cache (repro.cache); None disables
    # memoization and reproduces the uncached call path exactly.  Child
    # processes get their own empty cache — the paper's children are
    # separate processes with no shared memory.
    cache: Optional[CallCache] = None
    # Every cache created for this query (coordinator + children), shared
    # across derived contexts so the coordinator can aggregate counters.
    cache_registry: list = field(default_factory=list)
    # Per-query statistics sink mirrored by the broker; None leaves the
    # broker's own (global) counters as the only record, which is the
    # one-query-per-broker seed behaviour.
    call_recorder: Optional[CallRecorder] = None
    # Engine-scoped multi-query sharing tier
    # (repro.engine.shared.SharedCallCache); None — the default and the
    # only value outside a sharing-enabled QueryEngine — keeps the
    # transport path bit-for-bit seed-identical.  Typed loosely because
    # the engine layer sits above this module.  Propagates to child
    # processes via `for_process` (dataclasses.replace).
    shared: Optional[object] = None
    # Shared mutable counter for unique process names across the query.
    _name_counter: list = field(default_factory=lambda: [0])
    # Span recorder (repro.obs).  NULL_RECORDER is a shared no-op whose
    # `enabled` flag gates every instrumentation site, keeping the traced-off
    # execution fingerprint identical to the seed.  `obs_span` is the id of
    # the span enclosing whatever this context is currently executing (the
    # query root on the coordinator, the per-call span inside a child).
    obs: NullRecorder = NULL_RECORDER
    obs_span: int = -1
    # Remote-placement hook (repro.parallel.placement.Placement), set by
    # a kernel that shards child processes across OS workers.  None — the
    # default everywhere outside a ProcessKernel — keeps spawning local
    # and the execution fingerprint seed-identical.  Typed loosely
    # because the placement layer sits above this module.
    placement: Optional[object] = None
    # LIMIT pushdown: a LimitNode directly above an FF/AFF operator asks
    # the pool to stop dispatching parameter tuples once the limit is
    # provably satisfiable.  The result rows are identical either way (the
    # first k rows in arrival order); disabling only affects call counts.
    limit_pushdown: bool = True

    def next_process_name(self) -> str:
        self._name_counter[0] += 1
        return f"q{self._name_counter[0]}"

    def install_cache(self, config: CacheConfig | None) -> None:
        """Attach a call cache to this process (no-op when disabled)."""
        if config is None or not config.enabled:
            return
        self.cache = CallCache(self.kernel, config, name=self.process_name)
        self.cache_registry.append(self.cache)

    def for_process(self, name: str) -> "ExecutionContext":
        """A context for a child process: shared world, private pools."""
        from dataclasses import replace

        ctx = replace(self, process_name=name, pools={})
        if self.cache is not None:
            ctx.cache = self.cache.clone_for(name)
            self.cache_registry.append(ctx.cache)
        return ctx


async def iterate_plan(
    node: PlanNode,
    ctx: ExecutionContext,
    param_row: tuple | None = None,
) -> AsyncIterator[tuple]:
    """Yield the rows of ``node``.

    ``param_row`` binds the :class:`ParamNode` leaf when executing a plan
    function's body for one parameter tuple.
    """
    if isinstance(node, SingletonNode):
        yield ()
        return

    if isinstance(node, ParamNode):
        if param_row is None:
            raise PlanError("param node outside a plan-function call")
        if len(param_row) != len(node.schema):
            raise PlanError(
                f"parameter tuple {param_row!r} does not match schema {node.schema}"
            )
        yield tuple(param_row)
        return

    if isinstance(node, ApplyNode):
        argument_fns = [
            compile_expr(argument, node.child.schema) for argument in node.arguments
        ]
        function = ctx.functions.resolve(node.function)
        async for row in iterate_plan(node.child, ctx, param_row):
            arguments = [fn(row) for fn in argument_fns]
            if function.kind is FunctionKind.OWF:
                out_rows = await function.implementation.call(ctx, arguments)
            else:
                result = function.implementation(*arguments)
                out_rows = result if function.returns_stream else [(result,)]
            for out_row in out_rows:
                out_tuple = tuple(out_row)
                if len(out_tuple) != len(node.out_columns):
                    raise PlanError(
                        f"function {function.name!r} returned a row of width "
                        f"{len(out_tuple)}, expected {len(node.out_columns)}"
                    )
                yield row + out_tuple
        return

    if isinstance(node, MapNode):
        expression_fn = compile_expr(node.expression, node.child.schema)
        async for row in iterate_plan(node.child, ctx, param_row):
            yield row + (expression_fn(row),)
        return

    if isinstance(node, FilterNode):
        left_fn = compile_expr(node.left, node.child.schema)
        right_fn = compile_expr(node.right, node.child.schema)
        comparator = _COMPARATORS[node.op]
        async for row in iterate_plan(node.child, ctx, param_row):
            try:
                keep = comparator(left_fn(row), right_fn(row))
            except TypeError as error:
                raise PlanError(f"filter {node.label()} failed: {error}") from error
            if keep:
                yield row
        return

    if isinstance(node, ProjectNode):
        item_fns = [
            compile_expr(expression, node.child.schema)
            for _, expression in node.items
        ]
        async for row in iterate_plan(node.child, ctx, param_row):
            yield tuple(fn(row) for fn in item_fns)
        return

    if isinstance(node, DistinctNode):
        seen: set[tuple] = set()
        async for row in iterate_plan(node.child, ctx, param_row):
            if row not in seen:
                seen.add(row)
                yield row
        return

    if isinstance(node, SortNode):
        rows = [row for row in await collect_rows(node.child, ctx, param_row)]
        positions = [
            (node.child.schema.index(column), ascending)
            for column, ascending in node.keys
        ]
        # Stable multi-key sort: apply keys right-to-left.
        for position, ascending in reversed(positions):
            rows.sort(key=lambda row: row[position], reverse=not ascending)
        for row in rows:
            yield row
        return

    if isinstance(node, LimitNode):
        if node.count == 0:
            return
        emitted = 0
        if (
            ctx.limit_pushdown
            and ctx.parallel_handler is not None
            and isinstance(node.child, (FFApplyNode, AFFApplyNode))
        ):
            # LIMIT pushdown: ask the pool to stop dispatching parameter
            # tuples once `count` rows exist.  The pool drains its
            # in-flight calls and ends normally, so no GeneratorExit has
            # to tear through the operator tree.
            inner = iterate_plan(node.child.child, ctx, param_row)
            source = ctx.parallel_handler(
                node.child, inner, ctx, stop_after=node.count
            )
        else:
            source = iterate_plan(node.child, ctx, param_row)
        try:
            async for row in source:
                yield row
                emitted += 1
                if emitted >= node.count:
                    break
        finally:
            # Stop consuming: propagate GeneratorExit down the chain so
            # parallel operators cancel their input pumps.
            await source.aclose()
        return

    if isinstance(node, AggregateNode):
        # Streaming hash aggregation: one accumulator row per key, groups
        # emitted in first-seen order.  A global aggregate (no keys) emits
        # exactly one row even over empty input (COUNT(*) = 0, others NULL).
        item_fns = [
            (kind, compile_expr(expression, node.child.schema))
            for _, kind, expression in node.items
        ]
        groups: dict[tuple, list] = {}
        key_indexes = [i for i, (kind, _) in enumerate(item_fns) if kind == "key"]
        async for row in iterate_plan(node.child, ctx, param_row):
            values = [fn(row) for _, fn in item_fns]
            key = tuple(values[i] for i in key_indexes)
            accumulators = groups.get(key)
            if accumulators is None:
                groups[key] = [
                    _agg_init(kind, value)
                    for (kind, _), value in zip(item_fns, values)
                ]
            else:
                for i, ((kind, _), value) in enumerate(zip(item_fns, values)):
                    accumulators[i] = _agg_step(kind, accumulators[i], value)
        if not groups and not key_indexes:
            groups[()] = [_agg_empty(kind) for kind, _ in item_fns]
        for accumulators in groups.values():
            yield tuple(
                _agg_final(kind, accumulator)
                for (kind, _), accumulator in zip(item_fns, accumulators)
            )
        return

    if isinstance(node, UnionNode):
        # Disjunctive branches run concurrently — their service calls
        # overlap — and rows are emitted in branch order, so the stream is
        # deterministic regardless of which branch finishes first.  The
        # planner puts a DistinctNode above for set semantics.
        tasks = [
            ctx.kernel.spawn(
                collect_rows(branch, ctx, param_row), name=f"union-{i}"
            )
            for i, branch in enumerate(node.inputs)
        ]
        for task in tasks:
            for row in await task.join():
                yield row
        return

    if isinstance(node, JoinNode):
        # Evaluate both independent inputs concurrently — their service
        # calls overlap in time — then hash-join.
        left_task = ctx.kernel.spawn(
            collect_rows(node.left, ctx, param_row), name="join-left"
        )
        right_task = ctx.kernel.spawn(
            collect_rows(node.right, ctx, param_row), name="join-right"
        )
        left_rows = await left_task.join()
        right_rows = await right_task.join()
        left_positions = [node.left.schema.index(l) for l, _ in node.conditions]
        right_positions = [node.right.schema.index(r) for _, r in node.conditions]
        table: dict[tuple, list[tuple]] = {}
        for row in right_rows:
            key = tuple(row[p] for p in right_positions)
            table.setdefault(key, []).append(row)
        for row in left_rows:
            key = tuple(row[p] for p in left_positions)
            for match in table.get(key, ()):
                yield row + match
        return

    if isinstance(node, (FFApplyNode, AFFApplyNode)):
        if ctx.parallel_handler is None:
            raise PlanError(
                f"plan contains {node.label()} but the execution context has "
                "no parallel handler; use the parallel executor"
            )
        source = iterate_plan(node.child, ctx, param_row)
        async for row in ctx.parallel_handler(node, source, ctx):
            yield row
        return

    raise PlanError(f"cannot interpret plan node {node!r}")


def _agg_init(kind: str, value: Any) -> Any:
    """First-row accumulator for one aggregate column."""
    if kind in ("key", "sum", "min", "max"):
        return value
    if kind == "count":
        return 1
    return [value, 1]  # avg: running (sum, count)


def _agg_step(kind: str, accumulator: Any, value: Any) -> Any:
    if kind == "key":
        return accumulator
    if kind == "count":
        return accumulator + 1
    if kind == "sum":
        return accumulator + value
    if kind == "min":
        return value if value < accumulator else accumulator
    if kind == "max":
        return value if value > accumulator else accumulator
    accumulator[0] += value
    accumulator[1] += 1
    return accumulator


def _agg_final(kind: str, accumulator: Any) -> Any:
    if kind == "avg" and accumulator is not None:
        return accumulator[0] / accumulator[1]
    return accumulator


def _agg_empty(kind: str) -> Any:
    """Global-aggregate result over zero rows: COUNT is 0, the rest NULL."""
    return 0 if kind == "count" else None


async def collect_rows(
    node: PlanNode, ctx: ExecutionContext, param_row: tuple | None = None
) -> list[tuple]:
    """Run a plan to completion and return all rows."""
    rows = []
    async for row in iterate_plan(node, ctx, param_row):
        rows.append(row)
    return rows
