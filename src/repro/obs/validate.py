"""Well-formedness checks for span trees and exported Chrome traces.

Used three ways: by the test suite on live ``SpanStore`` objects, by CI on
an exported ``--trace-out`` file (``python -m repro.obs.validate FILE``),
and by anyone debugging a malformed trace.
"""

from __future__ import annotations

import json
import sys
from typing import Any

from repro.obs.spans import SpanStore

# Nesting tolerance: virtual-clock spans nest exactly, but wall-clock spans
# (realtime kernel) can disagree by scheduler jitter between two reads of
# the clock.  Chrome timestamps are integer microseconds, so one full tick
# of rounding slack is also needed.
_EPSILON = 1e-6


def validate_spans(store: SpanStore) -> list[str]:
    """Return a list of structural problems (empty = well-formed)."""
    problems: list[str] = []
    seen: set[int] = set()
    for span in store:
        if span.id in seen:
            problems.append(f"duplicate span id {span.id} ({span.name})")
        seen.add(span.id)

    for span in store:
        if span.parent != -1 and store.get(span.parent) is None:
            problems.append(
                f"span {span.id} ({span.name}) has unresolved parent {span.parent}"
            )
        if not span.finished:
            problems.append(f"span {span.id} ({span.name}) never finished")
        if span.end is not None and span.end < span.start - _EPSILON:
            problems.append(
                f"span {span.id} ({span.name}) ends before it starts "
                f"({span.start} -> {span.end})"
            )

    # Every child must close no later than its parent: the recorder finishes
    # child spans before the enclosing span at every instrumentation site.
    for span in store:
        if span.parent == -1 or span.instant:
            continue
        parent = store.get(span.parent)
        if parent is None or parent.instant:
            continue
        if span.start < parent.start - _EPSILON:
            problems.append(
                f"span {span.id} ({span.name}) starts before parent "
                f"{parent.id} ({parent.name})"
            )
        if (
            span.end is not None
            and parent.end is not None
            and span.end > parent.end + _EPSILON
        ):
            problems.append(
                f"span {span.id} ({span.name}) closes after parent "
                f"{parent.id} ({parent.name})"
            )
    return problems


def validate_chrome_trace(payload: dict[str, Any]) -> list[str]:
    """Structural checks on a Chrome trace-event JSON object."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["trace payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")

    named: dict[int, set[int]] = {}
    flows: dict[Any, list[str]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in {"X", "M", "i", "s", "f"}:
            problems.append(f"event {i} has unsupported ph {ph!r}")
            continue
        for field in ("name", "pid", "tid"):
            if field not in ev:
                problems.append(f"event {i} ({ph}) missing {field!r}")
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            problems.append(f"event {i} has non-integer pid/tid")
            continue
        if ph == "M":
            if ev.get("name") == "process_name":
                named.setdefault(ev["pid"], set())
            elif ev.get("name") == "thread_name":
                named.setdefault(ev["pid"], set()).add(ev["tid"])
            continue
        if "ts" not in ev or not isinstance(ev["ts"], int):
            problems.append(f"event {i} ({ph}) missing integer ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"event {i} has bad dur {dur!r}")
        if ph in {"s", "f"}:
            flows.setdefault(ev.get("id"), []).append(ph)

    for ev in events:
        if not isinstance(ev, dict) or ev.get("ph") not in {"X", "i"}:
            continue
        pid, tid = ev.get("pid"), ev.get("tid")
        if pid not in named:
            problems.append(f"event pid {pid} has no process_name metadata")
        elif tid not in named[pid]:
            problems.append(f"event pid {pid} tid {tid} has no thread_name metadata")

    for flow_id, phases in flows.items():
        if sorted(phases) != ["f", "s"]:
            problems.append(
                f"flow {flow_id!r} is unbalanced (phases: {sorted(phases)})"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: python -m repro.obs.validate TRACE_FILE", file=sys.stderr)
        return 2
    with open(args[0], encoding="utf-8") as fh:
        payload = json.load(fh)
    problems = validate_chrome_trace(payload)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    events = payload["traceEvents"]
    spans = sum(1 for ev in events if ev.get("ph") == "X")
    print(f"ok: {len(events)} events ({spans} spans)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
