"""Span recorder: the core tracing primitive.

A span is a named interval with a parent, a category and free-form
attributes.  Spans from every process of a query-process tree land in one
:class:`SpanStore`; cross-process edges (coordinator invocation -> child
call) are ordinary parent links because the recorder is shared through the
``ExecutionContext`` rather than serialized across a real network.

Two clocks coexist.  Execution-side spans pass ``at=kernel.now()`` so their
timestamps live on the kernel's (possibly virtual) clock; compile-phase
spans omit ``at`` and fall back to a wall clock anchored at recorder
creation.  The exporters keep the two groups in separate Chrome "processes"
so mixed clocks never overlap visually.

``NULL_RECORDER`` is the default everywhere.  Its ``enabled`` flag is
``False`` and every method is a no-op returning ``-1``, so instrumentation
costs a truthiness check per site and the seed execution fingerprint is
bit-for-bit unchanged when tracing is off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Span:
    """One traced interval (or instant) in a query's lifetime."""

    id: int
    name: str
    category: str
    process: str
    start: float
    parent: int = -1
    end: float | None = None
    instant: bool = False
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.instant or self.end is not None


class SpanStore:
    """Append-only collection of spans with parent/child indexing."""

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._by_id: dict[int, Span] = {}

    def add(self, span: Span) -> None:
        self._spans.append(span)
        self._by_id[span.id] = span

    def get(self, span_id: int) -> Span | None:
        return self._by_id.get(span_id)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def roots(self) -> list[Span]:
        return [s for s in self._spans if s.parent == -1 or s.parent not in self._by_id]

    def children(self, span_id: int) -> list[Span]:
        return [s for s in self._spans if s.parent == span_id]

    def by_category(self, category: str) -> list[Span]:
        return [s for s in self._spans if s.category == category]

    def find(self, name: str) -> list[Span]:
        return [s for s in self._spans if s.name == name]


class NullRecorder:
    """Disabled recorder: every call is a no-op.

    Instrumentation sites test ``recorder.enabled`` before doing any work
    that allocates (building attr dicts, reading clocks), but calling the
    methods directly is also safe.
    """

    enabled = False
    store: SpanStore | None = None

    def start(self, name: str, **kwargs: Any) -> int:
        return -1

    def finish(self, span_id: int, **kwargs: Any) -> None:
        return None

    def instant(self, name: str, **kwargs: Any) -> int:
        return -1


NULL_RECORDER = NullRecorder()


class TraceRecorder(NullRecorder):
    """Live recorder collecting spans into a :class:`SpanStore`.

    ``at`` timestamps are caller-supplied (kernel clock); when omitted the
    recorder falls back to wall time relative to its creation so that
    compile-phase spans start near zero like the virtual clock does.
    """

    enabled = True

    def __init__(self) -> None:
        self.store: SpanStore = SpanStore()
        self._next_id = 0
        self._epoch = time.perf_counter()

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def start(
        self,
        name: str,
        *,
        category: str = "span",
        parent: int = -1,
        process: str = "",
        at: float | None = None,
        **attrs: Any,
    ) -> int:
        span_id = self._next_id
        self._next_id += 1
        self.store.add(
            Span(
                id=span_id,
                name=name,
                category=category,
                process=process,
                parent=parent,
                start=self._now() if at is None else at,
                attrs=dict(attrs) if attrs else {},
            )
        )
        return span_id

    def finish(self, span_id: int, *, at: float | None = None, **attrs: Any) -> None:
        span = self.store.get(span_id)
        if span is None or span.end is not None:
            return
        span.end = self._now() if at is None else at
        if attrs:
            span.attrs.update(attrs)

    def instant(
        self,
        name: str,
        *,
        category: str = "event",
        parent: int = -1,
        process: str = "",
        at: float | None = None,
        **attrs: Any,
    ) -> int:
        span_id = self._next_id
        self._next_id += 1
        stamp = self._now() if at is None else at
        self.store.add(
            Span(
                id=span_id,
                name=name,
                category=category,
                process=process,
                parent=parent,
                start=stamp,
                end=stamp,
                instant=True,
                attrs=dict(attrs) if attrs else {},
            )
        )
        return span_id
