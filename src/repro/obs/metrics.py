"""Metrics registry: counters, gauges and histograms keyed by name + labels.

This subsumes the per-feature counter bundles that used to live only in
``CacheStats`` / ``MessageStats`` / ``FaultStats``: a finished query's
``QueryResult.metrics()`` loads all of them into one registry, and the
``report()`` sections render from it so every number in the human-readable
reports is also available programmatically under a stable metric name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.util.stats import quantile

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str] | None) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    labels: LabelItems = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def as_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """Point-in-time value (last write wins)."""

    name: str
    labels: LabelItems = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


@dataclass
class Histogram:
    """Sample distribution with quantile readout."""

    name: str
    labels: LabelItems = ()
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.samples else 0.0

    def percentile(self, q: float) -> float:
        if not self.samples:
            return 0.0
        return quantile(self.samples, q)

    def tail_percentile(self, q: float, window: int) -> float:
        """Quantile over the most recent ``window`` samples.

        Online controllers (``repro.engine.admission``) read this so a
        decision reflects current service rates, not the whole history.
        """
        if not self.samples:
            return 0.0
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        return quantile(self.samples[-window:], q)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
        }
        if self.samples:
            out["min"] = min(self.samples)
            out["max"] = max(self.samples)
            out["p50"] = self.percentile(0.5)
            out["p95"] = self.percentile(0.95)
        return out


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create store of metrics keyed by (name, labels)."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelItems], Metric] = {}

    def _get(self, cls: type, name: str, labels: dict[str, str] | None) -> Metric:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name=name, labels=key[1])
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, labels: dict[str, str] | None = None) -> Counter:
        return self._get(Counter, name, labels)  # type: ignore[return-value]

    def gauge(self, name: str, labels: dict[str, str] | None = None) -> Gauge:
        return self._get(Gauge, name, labels)  # type: ignore[return-value]

    def histogram(self, name: str, labels: dict[str, str] | None = None) -> Histogram:
        return self._get(Histogram, name, labels)  # type: ignore[return-value]

    def value(self, name: str, labels: dict[str, str] | None = None) -> float:
        metric = self._metrics.get((name, _label_key(labels)))
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            return metric.total
        return metric.value

    def get(self, name: str, labels: dict[str, str] | None = None) -> Metric | None:
        return self._metrics.get((name, _label_key(labels)))

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted({name for name, _ in self._metrics})

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            entry = metric.as_dict()
            if labels:
                entry["labels"] = dict(labels)
                out.setdefault(name, []).append(entry)
            else:
                out[name] = entry
        return out
