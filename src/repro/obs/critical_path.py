"""Critical-path analysis over a finished query's span tree.

The paper's Figs 14-16 argue that total query time is dominated by the
slowest web service on the longest *dependent* chain of calls.  This module
reproduces that analysis from recorded spans:

- the **critical path** is extracted by starting from the root query span
  and repeatedly descending into the child span that finishes last -- in a
  dependent pipeline that is exactly the chain that gated completion;
- the **tree level** of a span is the number of ``call``-category ancestors
  above it (level 0 = web-service calls issued by the coordinator itself,
  level 1 = calls issued by first-level child processes, ...), matching the
  paper's query-process tree depth;
- per level, web-service (``ws``-category) span durations are aggregated per
  operation, and the operation with the largest total busy time at the
  slowest level is reported as the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.spans import Span, SpanStore


@dataclass
class LevelSummary:
    """Aggregate web-service timing for one tree level."""

    level: int
    calls: int = 0
    busy: float = 0.0
    per_operation: dict[str, float] = field(default_factory=dict)

    @property
    def slowest_operation(self) -> str:
        if not self.per_operation:
            return ""
        return max(self.per_operation.items(), key=lambda kv: (kv[1], kv[0]))[0]


@dataclass
class CriticalPathReport:
    """Longest dependent chain plus per-level bottleneck summary."""

    path: list[Span] = field(default_factory=list)
    levels: list[LevelSummary] = field(default_factory=list)
    total: float = 0.0

    @property
    def slowest_level(self) -> LevelSummary | None:
        if not self.levels:
            return None
        return max(self.levels, key=lambda lv: lv.busy)

    @property
    def slowest_service(self) -> str:
        level = self.slowest_level
        return level.slowest_operation if level is not None else ""

    def render(self) -> str:
        if not self.path:
            return "critical path: no spans recorded (run with tracing enabled)"
        lines = [f"critical path: {self.total:.3f}s over {len(self.path)} spans"]
        for span in self.path:
            indent = "  " * min(self._depth(span), 8)
            lines.append(
                f"  {indent}{span.name} [{span.category}] {span.duration:.3f}s"
            )
        for level in self.levels:
            slowest = level.slowest_operation or "-"
            lines.append(
                f"level {level.level}: {level.calls} ws calls, "
                f"{level.busy:.3f}s busy, slowest service: {slowest}"
            )
        bottleneck = self.slowest_level
        if bottleneck is not None and bottleneck.slowest_operation:
            lines.append(
                f"bottleneck: {bottleneck.slowest_operation} "
                f"at level {bottleneck.level} "
                f"({bottleneck.busy:.3f}s total busy time)"
            )
        return "\n".join(lines)

    def _depth(self, span: Span) -> int:
        try:
            return self.path.index(span)
        except ValueError:
            return 0


def _call_level(span: Span, store: SpanStore) -> int:
    """Number of ``call``-category ancestors (the query-process tree depth)."""
    level = 0
    seen: set[int] = set()
    cursor = span
    while cursor.parent != -1 and cursor.parent not in seen:
        seen.add(cursor.id)
        parent = store.get(cursor.parent)
        if parent is None:
            break
        if parent.category == "call":
            level += 1
        cursor = parent
    return level


def analyze_critical_path(store: SpanStore) -> CriticalPathReport:
    """Walk the span tree of a finished query and summarize its hot chain."""
    report = CriticalPathReport()
    roots = [s for s in store.roots() if s.category == "query" and not s.instant]
    if not roots:
        roots = [s for s in store.roots() if not s.instant]
    if not roots:
        return report
    root = max(roots, key=lambda s: s.duration)

    # Descend to the child that finishes last; span end-times order the
    # dependent chain because a parent cannot finish before its children.
    cursor = root
    report.path.append(cursor)
    while True:
        kids = [
            c
            for c in store.children(cursor.id)
            if not c.instant and c.end is not None
        ]
        if not kids:
            break
        cursor = max(kids, key=lambda s: (s.end or 0.0, s.id))
        report.path.append(cursor)
    report.total = root.duration

    levels: dict[int, LevelSummary] = {}
    for span in store.by_category("ws"):
        if span.instant or span.end is None:
            continue
        level = _call_level(span, store)
        summary = levels.setdefault(level, LevelSummary(level=level))
        summary.calls += 1
        summary.busy += span.duration
        operation = str(span.attrs.get("operation", span.name))
        summary.per_operation[operation] = (
            summary.per_operation.get(operation, 0.0) + span.duration
        )
    report.levels = [levels[k] for k in sorted(levels)]
    return report
