"""Exporters: plain JSON and Chrome trace-event format.

The Chrome trace-event output follows the JSON-object flavour of the
`Trace Event Format`_ understood by Perfetto and ``chrome://tracing``:

- every finished span becomes an ``"X"`` (complete) event with ``ts``/``dur``
  in microseconds;
- instants become ``"i"`` events;
- cross-process parent links (a child call whose parent span lives in
  another query process) become ``"s"``/``"f"`` flow events so the arrows
  are drawn across track groups;
- ``"M"`` metadata events name the processes and threads.  Spans are
  grouped into Chrome "processes" by clock domain (compile spans use wall
  time, execution spans kernel time) and into "threads" by query-process
  name (``q0``, ``q1``, ...).

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.spans import Span, SpanStore

# Chrome pid values per clock domain.  Compile-phase spans run on the wall
# clock outside kernel.run(); keeping them in their own pid group means the
# two clock domains never share a timeline track.
PID_COMPILE = 1
PID_EXECUTION = 2

_CATEGORY_PIDS = {"compile": PID_COMPILE}


def _pid(span: Span) -> int:
    return _CATEGORY_PIDS.get(span.category, PID_EXECUTION)


def _us(seconds: float) -> int:
    return round(seconds * 1_000_000)


def spans_to_json(store: SpanStore) -> dict[str, Any]:
    """Lossless JSON dump of the span store."""
    spans = []
    for span in store:
        entry: dict[str, Any] = {
            "id": span.id,
            "parent": span.parent,
            "name": span.name,
            "category": span.category,
            "process": span.process,
            "start": span.start,
            "end": span.end,
        }
        if span.instant:
            entry["instant"] = True
        if span.attrs:
            entry["attrs"] = span.attrs
        spans.append(entry)
    return {"spans": spans}


def to_chrome_trace(store: SpanStore) -> dict[str, Any]:
    """Convert a span store to a Chrome trace-event JSON object."""
    events: list[dict[str, Any]] = []

    # Deterministic tid per (pid, process name): sorted name order.
    tids: dict[tuple[int, str], int] = {}
    for pid, name in sorted({(_pid(s), s.process or "q0") for s in store}):
        tids[(pid, name)] = sum(1 for key in tids if key[0] == pid) + 1

    seen_pids = sorted({pid for pid, _ in tids})
    pid_names = {PID_COMPILE: "compile", PID_EXECUTION: "execution"}
    for pid in seen_pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": pid_names.get(pid, f"group{pid}")},
            }
        )
    for (pid, name), tid in sorted(tids.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )

    def locate(span: Span) -> tuple[int, int]:
        pid = _pid(span)
        return pid, tids[(pid, span.process or "q0")]

    flow_id = 0
    for span in store:
        pid, tid = locate(span)
        args = {"span_id": span.id, "parent": span.parent}
        args.update(span.attrs)
        if span.instant:
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "i",
                    "s": "t",
                    "ts": _us(span.start),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            continue
        if span.end is None:
            continue
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": _us(span.start),
                "dur": max(_us(span.end) - _us(span.start), 0),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        parent = store.get(span.parent) if span.parent != -1 else None
        if parent is not None and parent.process != span.process:
            # Cross-process parent link: draw a flow arrow from the parent
            # span's start to the child span's start.
            flow_id += 1
            ppid, ptid = locate(parent)
            common = {"cat": "flow", "name": "link", "id": flow_id}
            events.append(
                {
                    **common,
                    "ph": "s",
                    "ts": _us(parent.start),
                    "pid": ppid,
                    "tid": ptid,
                }
            )
            events.append(
                {
                    **common,
                    "ph": "f",
                    "bp": "e",
                    "ts": _us(span.start),
                    "pid": pid,
                    "tid": tid,
                }
            )

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(store: SpanStore, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(store), fh, indent=1)
        fh.write("\n")
