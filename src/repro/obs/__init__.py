"""Span-based tracing and metrics for the query stack.

The subsystem has four layers:

- :mod:`repro.obs.spans` -- the recorder API.  ``TraceRecorder`` collects
  :class:`Span` records into a :class:`SpanStore`; ``NULL_RECORDER`` is the
  shared no-op default so instrumentation sites cost one attribute check
  when tracing is off.
- :mod:`repro.obs.metrics` -- ``MetricsRegistry`` with counters, gauges and
  histograms keyed by name + labels.  ``QueryResult.metrics()`` populates one
  from a finished query and the ``report()`` sections render from it.
- :mod:`repro.obs.critical_path` -- walks a finished span tree and reports
  the longest dependent chain per query-process tree level (the paper's
  "slowest service dominates" analysis).
- :mod:`repro.obs.export` / :mod:`repro.obs.validate` -- JSON and Chrome
  trace-event exporters plus structural well-formedness checks (also used
  by CI on a real exported trace).
"""

from repro.obs.critical_path import CriticalPathReport, LevelSummary, analyze_critical_path
from repro.obs.export import spans_to_json, to_chrome_trace, write_chrome_trace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    SpanStore,
    TraceRecorder,
)
from repro.obs.validate import validate_chrome_trace, validate_spans

__all__ = [
    "NULL_RECORDER",
    "Counter",
    "CriticalPathReport",
    "Gauge",
    "Histogram",
    "LevelSummary",
    "MetricsRegistry",
    "NullRecorder",
    "Span",
    "SpanStore",
    "TraceRecorder",
    "analyze_critical_path",
    "spans_to_json",
    "to_chrome_trace",
    "validate_chrome_trace",
    "validate_spans",
    "write_chrome_trace",
]
