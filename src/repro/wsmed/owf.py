"""Operation wrapper function (OWF) generation.

For every operation of an imported WSDL document, WSMED generates an OWF
that calls the operation through the ``cwo`` built-in and *flattens* the
nested result structure into a stream of typed tuples (paper Fig 2).  The
flattening program is derived mechanically from the operation's output
schema: atomic elements along the path become columns, repeated elements
become iteration levels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.interpreter import ExecutionContext
from repro.cache import MISS
from repro.fdb.functions import FunctionDef, FunctionKind, Parameter
from repro.fdb.types import AtomicType, BOOLEAN, REAL, TupleType
from repro.fdb.values import Record
from repro.services.wsdl import WsdlDocument, WsdlOperation, XsdElement
from repro.util.errors import ServiceFault, WsdlError


@dataclass(frozen=True)
class _Level:
    """One flattening level: columns to read here, plus how to descend."""

    atomic_columns: tuple[str, ...]
    descend: str | None  # child element name to recurse into (None = leaf)
    descend_repeated: bool


def _build_levels(element: XsdElement, path: list[str]) -> list[_Level]:
    """Derive the flattening levels under a complex ``element``.

    At most one non-atomic child per level is supported — the shape of all
    data providing services the paper uses (a single nested collection).
    More than one would require a cross product with no defined order, so
    it is rejected at import time.
    """
    if element.complex is None:
        raise WsdlError(f"element {element.name!r} is atomic, cannot flatten")
    atomics = []
    complexes = []
    for child in element.complex.children:
        if child.is_atomic and not child.repeated:
            atomics.append(child.name)
        else:
            complexes.append(child)
    if len(complexes) > 1:
        names = ", ".join(c.name for c in complexes)
        raise WsdlError(
            f"result element {element.name!r} has multiple nested collections "
            f"({names}); WSMED flattening supports a single nested path"
        )
    if not complexes:
        return [_Level(tuple(atomics), None, False)]
    child = complexes[0]
    if child.is_atomic:  # a repeated atomic: one column named after it
        return [
            _Level(tuple(atomics), child.name, True),
            _Level((child.name,), None, False),
        ]
    return [
        _Level(tuple(atomics), child.name, child.repeated)
    ] + _build_levels(child, path + [child.name])


def _column_atom(element: XsdElement, column: str) -> AtomicType:
    for child in element.complex.children:
        if child.name == column and child.is_atomic:
            return child.atom
    raise WsdlError(f"no atomic child {column!r} under {element.name!r}")


class OperationWrapper:
    """A generated OWF: typed signature plus the flattening program."""

    def __init__(self, document: WsdlDocument, operation: WsdlOperation) -> None:
        self.document = document
        self.operation = operation
        self.name = operation.name
        self.parameters = operation.input_parameters()
        self._levels = _build_levels(operation.output_element, [])
        self.result_columns = self._derive_result_columns()

    def _derive_result_columns(self) -> list[tuple[str, AtomicType]]:
        columns: list[tuple[str, AtomicType]] = []
        element = self.operation.output_element
        for level in self._levels:
            for column in level.atomic_columns:
                columns.append((column, _column_atom(element, column)))
            if level.descend is None:
                break
            child = element.complex.child(level.descend)
            if child.is_atomic:
                columns.append((level.descend, child.atom))
                break
            element = child
        names = [name for name, _ in columns]
        if len(set(name.lower() for name in names)) != len(names):
            raise WsdlError(
                f"flattened result of {self.name!r} has colliding column "
                f"names: {names}"
            )
        return columns

    # -- runtime -------------------------------------------------------------

    def coerce_arguments(self, arguments: list) -> list:
        """Best-effort coercion of runtime argument values to input types."""
        coerced = []
        for (name, atom), value in zip(self.parameters, arguments):
            if atom is REAL and isinstance(value, int) and not isinstance(value, bool):
                value = float(value)
            elif atom is BOOLEAN and value in ("true", "false"):
                value = value == "true"
            coerced.append(value)
        return coerced

    async def call(self, ctx: ExecutionContext, arguments: list) -> list[tuple]:
        """Invoke the wrapped operation and flatten the result into rows.

        This is the OWF body of Fig 2: ``cwo(uri, service, operation,
        args)`` followed by record/sequence navigation.  Retriable service
        faults are retried per the context's policy; the final attempt's
        fault propagates.
        """
        coerced = self.coerce_arguments(arguments)
        attempt = 0
        while True:
            started = ctx.kernel.now()
            try:
                out = await self._invoke(ctx, coerced, started)
                break
            except ServiceFault as fault:
                attempt += 1
                if not fault.retriable or attempt > ctx.retries:
                    # The fault survived the call-level retries; what
                    # happens next is the pool's on_error decision, so
                    # leave a marker the fault report can pick up.
                    ctx.trace.record(
                        ctx.kernel.now(),
                        "call_fault",
                        process=ctx.process_name,
                        operation=self.name,
                        attempts=attempt,
                        retriable=fault.retriable,
                        error=str(fault),
                    )
                    raise
                ctx.trace.record(
                    ctx.kernel.now(),
                    "retry",
                    process=ctx.process_name,
                    operation=self.name,
                    attempt=attempt,
                )
                await ctx.kernel.sleep(ctx.retry_backoff)
        rows: list[tuple] = []
        for response in out:  # `out` is a Sequence (Fig 2 line 15)
            self._flatten(response, 0, (), rows)
        return rows

    async def _invoke(self, ctx: ExecutionContext, coerced: list, started: float):
        """One ``cwo`` transport round trip, memoized when a cache is on.

        A cache hit (or a collapse onto an in-flight identical call) skips
        the broker entirely and is recorded as a ``cache_hit`` /
        ``cache_collapse`` trace event instead of a ``service_call``, so
        traces distinguish real round trips from avoided ones.  Under a
        sharing engine (``ctx.shared``), a per-process miss consults the
        engine's shared tier next; a call it serves is recorded as
        ``shared_hit``/``shared_wait``, and a real round trip that rode a
        cross-query batch carries ``coalesced=True``.
        """
        obs = ctx.obs
        ws_span = -1
        if obs.enabled:
            ws_span = obs.start(
                self.name,
                category="ws",
                parent=ctx.obs_span,
                process=ctx.process_name,
                at=started,
                operation=self.name,
                service=self.document.service_name,
            )
        shared = ctx.shared
        shared_cell: list = []

        if shared is None:
            def transport():
                return ctx.broker.call(
                    self.document.uri,
                    self.document.service_name,
                    self.name,
                    coerced,
                    recorder=ctx.call_recorder,
                    obs=obs if obs.enabled else None,
                    obs_span=ws_span,
                )
        else:
            async def transport():
                value, shared_outcome, coalesced = await shared.call(
                    ctx.broker,
                    self.document.uri,
                    self.document.service_name,
                    self.name,
                    coerced,
                    recorder=ctx.call_recorder,
                    obs=obs if obs.enabled else None,
                    obs_span=ws_span,
                )
                shared_cell.append((shared_outcome, coalesced))
                return value

        try:
            if ctx.cache is None:
                out = await transport()
                outcome = MISS
            else:
                out, outcome = await ctx.cache.call(
                    (
                        self.document.uri,
                        self.document.service_name,
                        self.name,
                        tuple(coerced),
                    ),
                    transport,
                )
        except BaseException as error:
            if ws_span != -1:
                obs.finish(ws_span, at=ctx.kernel.now(), error=str(error))
            raise
        shared_outcome, coalesced = shared_cell[-1] if shared_cell else (None, False)
        if outcome != MISS:
            # Served by this process's own cache; the shared tier was
            # never consulted (HIT) or is attributed to the leader only
            # (COLLAPSED), so nothing shared to record here.
            if ws_span != -1:
                obs.finish(ws_span, at=ctx.kernel.now(), outcome=str(outcome))
            ctx.trace.record(
                ctx.kernel.now(),
                f"cache_{outcome}",
                process=ctx.process_name,
                operation=self.name,
            )
        elif shared_outcome is not None and shared_outcome != MISS:
            # The engine's shared tier answered: no broker round trip.
            if ws_span != -1:
                obs.finish(ws_span, at=ctx.kernel.now(), outcome=shared_outcome)
            ctx.trace.record(
                ctx.kernel.now(),
                shared_outcome,
                process=ctx.process_name,
                operation=self.name,
            )
        else:
            if ws_span != -1:
                obs.finish(ws_span, at=ctx.kernel.now(), outcome=str(outcome))
            data = dict(
                process=ctx.process_name,
                operation=self.name,
                duration=ctx.kernel.now() - started,
            )
            if coalesced:
                data["coalesced"] = True
            ctx.trace.record(ctx.kernel.now(), "service_call", **data)
        return out

    def _flatten(
        self, value, level_index: int, prefix: tuple, rows: list[tuple]
    ) -> None:
        level = self._levels[level_index]
        if not isinstance(value, Record):
            # A repeated atomic leaf: the value itself is the column.
            rows.append(prefix + (value,))
            return
        here = prefix + tuple(value[column] for column in level.atomic_columns)
        if level.descend is None:
            rows.append(here)
            return
        child_value = value[level.descend]
        if level.descend_repeated:
            for instance in child_value:
                self._descend(instance, level_index + 1, here, rows)
        else:
            self._descend(child_value, level_index + 1, here, rows)

    def _descend(self, value, level_index: int, prefix: tuple, rows: list[tuple]) -> None:
        if level_index >= len(self._levels):
            rows.append(prefix + (value,))
            return
        self._flatten(value, level_index, prefix, rows)

    # -- registration -----------------------------------------------------------

    def as_function(self) -> FunctionDef:
        return FunctionDef(
            name=self.name,
            kind=FunctionKind.OWF,
            parameters=tuple(Parameter(n, t) for n, t in self.parameters),
            result=TupleType(tuple(self.result_columns)),
            implementation=self,
            documentation=(
                f"Wraps web service operation {self.document.service_name}."
                f"{self.name} at {self.document.uri}"
            ),
        )

    def render_source(self) -> str:
        """AmosQL-style source of the generated OWF, in the style of Fig 2."""
        params = ", ".join(f"{atom} {name}" for name, atom in self.parameters)
        row = ", ".join(f"{atom} {name}" for name, atom in self.result_columns)
        args = ", ".join(f"{{{name}}}" for name, _ in self.parameters) or "{}"
        lines = [
            f"create function {self.name}({params}) -> Bag of <{row}> as",
            "select " + ", ".join(name for name, _ in self.result_columns),
            "from   the flattened result of",
            f"       cwo('{self.document.uri}',",
            f"           '{self.document.service_name}', '{self.name}', {args});",
        ]
        return "\n".join(lines)


def generate_owf(document: WsdlDocument, operation_name: str) -> OperationWrapper:
    """Generate the OWF for one operation of an imported WSDL document."""
    return OperationWrapper(document, document.operation(operation_name))
