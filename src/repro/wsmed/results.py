"""Query results with execution statistics.

The statistics surface is the :meth:`QueryResult.report` method: it renders
named sections ("calls", "tree", "cache", "batch", "faults",
"critical_path"), every number coming from the :class:`MetricsRegistry`
built by :meth:`QueryResult.metrics`.  The former per-feature methods
(``cache_report`` / ``batch_report`` / ``fault_report``) survive as thin
deprecated shims over the matching section.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Iterator

from repro.cache import CacheStats
from repro.fdb.values import Bag
from repro.obs.critical_path import CriticalPathReport, analyze_critical_path
from repro.obs.export import to_chrome_trace, write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanStore
from repro.parallel.batching import MessageStats
from repro.parallel.faults import FaultStats
from repro.parallel.tree import TreeStats
from repro.services.broker import CallStats
from repro.util.trace import TraceLog

#: Section names accepted by :meth:`QueryResult.report`, in display order.
REPORT_SECTIONS = ("calls", "tree", "cache", "batch", "faults", "critical_path")


@dataclass
class QueryResult:
    """Everything one query execution produced.

    ``elapsed`` is in *model seconds* — under the simulated kernel that is
    the virtual clock the paper's wall-clock measurements correspond to.
    """

    columns: tuple[str, ...]
    rows: list[tuple]
    elapsed: float
    mode: str
    total_calls: int
    call_stats: dict[str, CallStats] = field(default_factory=dict)
    trace: TraceLog = field(default_factory=TraceLog)
    tree: TreeStats = field(default_factory=TreeStats)
    plan_text: str = ""
    # Aggregated web-service call-cache counters across all query
    # processes; None when the query ran without a cache.
    cache_stats: CacheStats | None = None
    # Data-path message counts aggregated over every operator pool in the
    # query (per-tuple and batched, both directions).  Central-mode runs
    # send no inter-process messages, so all counters stay 0.
    message_stats: MessageStats = field(default_factory=MessageStats)
    # Failure accounting aggregated over every operator pool (failed
    # calls, redeliveries, skips, respawns, breaker trips); all zero on a
    # clean run.
    fault_stats: FaultStats = field(default_factory=FaultStats)
    # Span store of a traced run (``obs=TraceRecorder()``); None when the
    # query ran untraced.
    spans: SpanStore | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def as_dicts(self) -> list[dict]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def as_bag(self) -> Bag:
        """Order-insensitive view for comparing parallel to central runs."""
        return Bag(self.rows)

    def calls(self, operation: str) -> int:
        stats = self.call_stats.get(operation)
        return stats.calls if stats else 0

    def to_json(self) -> str:
        """Serialize the result and its statistics for external tooling."""
        import json

        payload = {
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "elapsed_model_seconds": self.elapsed,
            "mode": self.mode,
            "total_calls": self.total_calls,
            "operations": {
                name: {
                    "calls": stats.calls,
                    "rows": stats.rows,
                    "bytes": stats.bytes_transferred,
                    "mean_total_time": stats.total_time.mean,
                    "mean_queue_wait": stats.queue_wait.mean,
                }
                for name, stats in sorted(self.call_stats.items())
            },
            "cache": self.cache_stats.as_dict() if self.cache_stats else None,
            "messages": self.message_stats.as_dict(),
            "faults": self.fault_stats.as_dict(),
            "tree": {
                "processes_spawned": self.tree.processes_spawned,
                "processes_dropped": self.tree.processes_dropped,
                "add_stages": self.tree.add_stages,
                "drop_stages": self.tree.drop_stages,
                "average_fanouts": self.tree.average_fanouts(),
            },
        }
        return json.dumps(payload, indent=2)

    def process_tree(self) -> str:
        """ASCII rendering of the process tree this execution built."""
        from repro.parallel.visualize import render_process_tree

        return render_process_tree(self.trace)

    def utilization(self, top: int = 12) -> str:
        """Text report of the busiest query processes."""
        from repro.parallel.visualize import render_utilization

        return render_utilization(self.trace, top=top)

    def summary(self) -> str:
        """One-paragraph execution report for interactive use."""
        registry = self.metrics()
        lines = [
            f"{len(self.rows)} rows in {self.elapsed:.2f} model seconds "
            f"({self.mode} mode, {self.total_calls} web service calls)",
        ]
        for operation in sorted(self.call_stats):
            stats = self.call_stats[operation]
            lines.append(
                f"  {operation}: {stats.calls} calls, "
                f"mean {stats.total_time.mean:.3f}s, "
                f"queue {stats.queue_wait.mean:.3f}s"
            )
        if self.tree.processes_spawned:
            lines.append("  " + self._render_tree(registry))
        if self.cache_stats is not None:
            lines.append("  " + self._render_cache(registry))
        if self.message_stats.param_batches or self.message_stats.result_batches:
            lines.append("  " + self._render_batch(registry))
        if self.fault_stats.any():
            lines.append("  " + self._render_faults(registry))
        return "\n".join(lines)

    # -- the metrics registry ---------------------------------------------------

    def metrics(self) -> MetricsRegistry:
        """Load every execution statistic into one :class:`MetricsRegistry`.

        This is the programmatic twin of :meth:`report`: the same numbers
        the rendered sections show, under stable metric names
        (``ws.calls{operation=...}``, ``cache.hits``, ``faults.respawns``,
        ``span.ws.duration`` ...).
        """
        registry = MetricsRegistry()
        registry.gauge("query.rows").set(len(self.rows))
        registry.gauge("query.elapsed").set(self.elapsed)
        registry.gauge("query.total_calls").set(self.total_calls)

        for operation, stats in self.call_stats.items():
            labels = {"operation": operation}
            registry.counter("ws.calls", labels).inc(stats.calls)
            registry.counter("ws.rows", labels).inc(stats.rows)
            registry.counter("ws.bytes", labels).inc(stats.bytes_transferred)
            registry.counter("ws.faults", labels).inc(stats.faults)
            registry.counter("ws.timeouts", labels).inc(stats.timeouts)
            registry.gauge("ws.mean_total_time", labels).set(stats.total_time.mean)
            registry.gauge("ws.mean_queue_wait", labels).set(stats.queue_wait.mean)
            registry.gauge("ws.mean_server_time", labels).set(stats.server_time.mean)

        tree = self.tree
        registry.counter("tree.processes_spawned").inc(tree.processes_spawned)
        registry.counter("tree.processes_dropped").inc(tree.processes_dropped)
        registry.counter("tree.add_stages").inc(tree.add_stages)
        registry.counter("tree.drop_stages").inc(tree.drop_stages)
        for level, fanout in enumerate(tree.average_fanouts()):
            registry.gauge("tree.average_fanout", {"level": str(level)}).set(fanout)

        registry.gauge("cache.enabled").set(0.0 if self.cache_stats is None else 1.0)
        if self.cache_stats is not None:
            cache = self.cache_stats
            registry.counter("cache.hits").inc(cache.hits)
            registry.counter("cache.misses").inc(cache.misses)
            registry.counter("cache.collapsed").inc(cache.collapsed)
            registry.counter("cache.evictions").inc(cache.evictions)
            registry.counter("cache.expirations").inc(cache.expirations)
            registry.counter("cache.calls_avoided").inc(cache.calls_avoided)
            registry.gauge("cache.hit_rate").set(cache.hit_rate)
            # Engine-level sharing tier, attributed to this query (the
            # per-process counters above never include these, so the
            # numbers add without double counting).
            registry.counter("cache.shared_hits").inc(cache.shared_hits)
            registry.counter("cache.shared_waits").inc(cache.shared_waits)
            registry.counter("cache.coalesced_calls").inc(cache.coalesced)

        messages = self.message_stats
        registry.counter("messages.total").inc(messages.total_messages)
        registry.counter("messages.down").inc(messages.downlink_messages)
        registry.counter("messages.up").inc(messages.uplink_messages)
        registry.counter("batch.param_batches").inc(messages.param_batches)
        registry.counter("batch.batched_params").inc(messages.batched_params)
        registry.counter("batch.param_tuples").inc(messages.param_tuples)
        registry.counter("batch.result_batches").inc(messages.result_batches)
        registry.counter("batch.batched_results").inc(messages.batched_results)
        registry.counter("batch.result_tuples").inc(messages.result_tuples)
        for trigger, count in messages.flushes.items():
            registry.counter("batch.flushes", {"trigger": trigger}).inc(count)

        faults = self.fault_stats
        registry.counter("faults.failed_calls").inc(faults.failed_calls)
        registry.counter("faults.redeliveries").inc(faults.redeliveries)
        registry.counter("faults.skipped_rows").inc(faults.skipped_rows)
        registry.counter("faults.respawns").inc(faults.respawns)
        registry.counter("faults.breaker_trips").inc(faults.breaker_trips)

        if self.spans is not None:
            for span in self.spans:
                if span.instant or span.end is None:
                    continue
                registry.histogram(
                    "span.duration", {"category": span.category}
                ).observe(span.duration)
        return registry

    # -- the report surface ------------------------------------------------------

    def report(self, sections: list[str] | tuple[str, ...] | str | None = None) -> str:
        """Render named statistics sections from the metrics registry.

        ``sections`` picks which to show (any of ``REPORT_SECTIONS``); the
        default shows every section the execution produced data for.  This
        replaces the former ``cache_report()`` / ``batch_report()`` /
        ``fault_report()`` trio — their exact output strings are the
        "cache", "batch" and "faults" sections.
        """
        registry = self.metrics()
        if sections is None:
            chosen = ["calls", "tree", "cache", "batch", "faults"]
            if self.spans is not None:
                chosen.append("critical_path")
        elif isinstance(sections, str):
            chosen = [sections]
        else:
            chosen = list(sections)
        lines = []
        for section in chosen:
            renderer = self._SECTION_RENDERERS.get(section)
            if renderer is None:
                known = ", ".join(REPORT_SECTIONS)
                raise ValueError(
                    f"unknown report section {section!r}; known sections: {known}"
                )
            lines.append(renderer(self, registry))
        return "\n".join(lines)

    def _render_calls(self, registry: MetricsRegistry) -> str:
        lines = [
            f"calls: {int(registry.value('query.total_calls'))} web service "
            f"calls in {registry.value('query.elapsed'):.2f} model seconds "
            f"({self.mode} mode)"
        ]
        for operation in sorted(self.call_stats):
            labels = {"operation": operation}
            lines.append(
                f"  {operation}: {int(registry.value('ws.calls', labels))} calls, "
                f"mean {registry.value('ws.mean_total_time', labels):.3f}s, "
                f"queue {registry.value('ws.mean_queue_wait', labels):.3f}s"
            )
        return "\n".join(lines)

    def _render_tree(self, registry: MetricsRegistry) -> str:
        if not registry.value("tree.processes_spawned"):
            return "process tree: no child processes (central plan?)"
        return (
            f"process tree: {int(registry.value('tree.processes_spawned'))} spawned, "
            f"{int(registry.value('tree.processes_dropped'))} dropped, "
            f"avg fanouts {['%.1f' % f for f in self.tree.average_fanouts()]}"
        )

    def _render_cache(self, registry: MetricsRegistry) -> str:
        if not registry.value("cache.enabled"):
            return "call cache: off"
        line = (
            f"call cache: {int(registry.value('cache.hits'))} hits, "
            f"{int(registry.value('cache.misses'))} misses, "
            f"{int(registry.value('cache.collapsed'))} collapsed, "
            f"{int(registry.value('cache.evictions'))} evicted, "
            f"{int(registry.value('cache.expirations'))} expired "
            f"({registry.value('cache.hit_rate'):.0%} hit rate, "
            f"{int(registry.value('cache.calls_avoided'))} calls avoided)"
        )
        shared_hits = int(registry.value("cache.shared_hits"))
        shared_waits = int(registry.value("cache.shared_waits"))
        coalesced = int(registry.value("cache.coalesced_calls"))
        if shared_hits or shared_waits or coalesced:
            line += (
                f"\nshared tier: {shared_hits} shared hits, "
                f"{shared_waits} single-flight waits, "
                f"{coalesced} calls coalesced into cross-query batches"
            )
        return line

    def _render_batch(self, registry: MetricsRegistry) -> str:
        if not self.message_stats.any():
            return "batching: no inter-process messages (central plan?)"
        parts = [
            f"messages: {int(registry.value('messages.total'))} "
            f"({int(registry.value('messages.down'))} down, "
            f"{int(registry.value('messages.up'))} up)",
            f"param batches: {int(registry.value('batch.param_batches'))} "
            f"carrying {int(registry.value('batch.batched_params'))} tuples "
            f"(+{int(registry.value('batch.param_tuples'))} singles)",
            f"result batches: {int(registry.value('batch.result_batches'))} "
            f"carrying {int(registry.value('batch.batched_results'))} rows "
            f"(+{int(registry.value('batch.result_tuples'))} singles)",
        ]
        if self.message_stats.flushes:
            triggers = ", ".join(
                f"{trigger}={int(registry.value('batch.flushes', {'trigger': trigger}))}"
                for trigger in sorted(self.message_stats.flushes)
            )
            parts.append(f"flushes: {triggers}")
        return "; ".join(parts)

    def _render_faults(self, registry: MetricsRegistry) -> str:
        if not self.fault_stats.any():
            return "faults: none"
        return (
            f"faults: {int(registry.value('faults.failed_calls'))} failed calls, "
            f"{int(registry.value('faults.redeliveries'))} redelivered, "
            f"{int(registry.value('faults.skipped_rows'))} skipped, "
            f"{int(registry.value('faults.respawns'))} children respawned, "
            f"{int(registry.value('faults.breaker_trips'))} breaker trips"
        )

    def _render_critical_path(self, registry: MetricsRegistry) -> str:
        return self.critical_path().render()

    _SECTION_RENDERERS = {
        "calls": _render_calls,
        "tree": _render_tree,
        "cache": _render_cache,
        "batch": _render_batch,
        "faults": _render_faults,
        "critical_path": _render_critical_path,
    }

    # -- tracing accessors --------------------------------------------------------

    def critical_path(self) -> CriticalPathReport:
        """Critical-path analysis of a traced run (empty when untraced)."""
        return analyze_critical_path(self.spans if self.spans is not None else SpanStore())

    def chrome_trace(self) -> dict:
        """The traced run as a Chrome trace-event JSON object."""
        return to_chrome_trace(self.spans if self.spans is not None else SpanStore())

    def write_trace(self, path: str) -> None:
        """Write :meth:`chrome_trace` to ``path`` (open it in Perfetto)."""
        write_chrome_trace(self.spans if self.spans is not None else SpanStore(), path)

    # -- deprecated shims ---------------------------------------------------------

    def fault_report(self) -> str:
        """Deprecated: use ``report(sections=["faults"])``."""
        warnings.warn(
            "QueryResult.fault_report() is deprecated; use "
            'report(sections=["faults"])',
            DeprecationWarning,
            stacklevel=2,
        )
        return self._render_faults(self.metrics())

    def batch_report(self) -> str:
        """Deprecated: use ``report(sections=["batch"])``."""
        warnings.warn(
            "QueryResult.batch_report() is deprecated; use "
            'report(sections=["batch"])',
            DeprecationWarning,
            stacklevel=2,
        )
        return self._render_batch(self.metrics())

    def cache_report(self) -> str:
        """Deprecated: use ``report(sections=["cache"])``."""
        warnings.warn(
            "QueryResult.cache_report() is deprecated; use "
            'report(sections=["cache"])',
            DeprecationWarning,
            stacklevel=2,
        )
        return self._render_cache(self.metrics())
