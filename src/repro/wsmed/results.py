"""Query results with execution statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.cache import CacheStats
from repro.fdb.values import Bag
from repro.parallel.batching import MessageStats
from repro.parallel.faults import FaultStats
from repro.parallel.tree import TreeStats
from repro.services.broker import CallStats
from repro.util.trace import TraceLog


@dataclass
class QueryResult:
    """Everything one query execution produced.

    ``elapsed`` is in *model seconds* — under the simulated kernel that is
    the virtual clock the paper's wall-clock measurements correspond to.
    """

    columns: tuple[str, ...]
    rows: list[tuple]
    elapsed: float
    mode: str
    total_calls: int
    call_stats: dict[str, CallStats] = field(default_factory=dict)
    trace: TraceLog = field(default_factory=TraceLog)
    tree: TreeStats = field(default_factory=TreeStats)
    plan_text: str = ""
    # Aggregated web-service call-cache counters across all query
    # processes; None when the query ran without a cache.
    cache_stats: CacheStats | None = None
    # Data-path message counts aggregated over every operator pool in the
    # query (per-tuple and batched, both directions).  Central-mode runs
    # send no inter-process messages, so all counters stay 0.
    message_stats: MessageStats = field(default_factory=MessageStats)
    # Failure accounting aggregated over every operator pool (failed
    # calls, redeliveries, skips, respawns, breaker trips); all zero on a
    # clean run.
    fault_stats: FaultStats = field(default_factory=FaultStats)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def as_dicts(self) -> list[dict]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def as_bag(self) -> Bag:
        """Order-insensitive view for comparing parallel to central runs."""
        return Bag(self.rows)

    def calls(self, operation: str) -> int:
        stats = self.call_stats.get(operation)
        return stats.calls if stats else 0

    def to_json(self) -> str:
        """Serialize the result and its statistics for external tooling."""
        import json

        payload = {
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "elapsed_model_seconds": self.elapsed,
            "mode": self.mode,
            "total_calls": self.total_calls,
            "operations": {
                name: {
                    "calls": stats.calls,
                    "rows": stats.rows,
                    "bytes": stats.bytes_transferred,
                    "mean_total_time": stats.total_time.mean,
                    "mean_queue_wait": stats.queue_wait.mean,
                }
                for name, stats in sorted(self.call_stats.items())
            },
            "cache": self.cache_stats.as_dict() if self.cache_stats else None,
            "messages": self.message_stats.as_dict(),
            "faults": self.fault_stats.as_dict(),
            "tree": {
                "processes_spawned": self.tree.processes_spawned,
                "processes_dropped": self.tree.processes_dropped,
                "add_stages": self.tree.add_stages,
                "drop_stages": self.tree.drop_stages,
                "average_fanouts": self.tree.average_fanouts(),
            },
        }
        return json.dumps(payload, indent=2)

    def process_tree(self) -> str:
        """ASCII rendering of the process tree this execution built."""
        from repro.parallel.visualize import render_process_tree

        return render_process_tree(self.trace)

    def utilization(self, top: int = 12) -> str:
        """Text report of the busiest query processes."""
        from repro.parallel.visualize import render_utilization

        return render_utilization(self.trace, top=top)

    def summary(self) -> str:
        """One-paragraph execution report for interactive use."""
        lines = [
            f"{len(self.rows)} rows in {self.elapsed:.2f} model seconds "
            f"({self.mode} mode, {self.total_calls} web service calls)",
        ]
        for operation in sorted(self.call_stats):
            stats = self.call_stats[operation]
            lines.append(
                f"  {operation}: {stats.calls} calls, "
                f"mean {stats.total_time.mean:.3f}s, "
                f"queue {stats.queue_wait.mean:.3f}s"
            )
        if self.tree.processes_spawned:
            lines.append(
                f"  process tree: {self.tree.processes_spawned} spawned, "
                f"{self.tree.processes_dropped} dropped, "
                f"avg fanouts {['%.1f' % f for f in self.tree.average_fanouts()]}"
            )
        if self.cache_stats is not None:
            lines.append("  " + self.cache_report())
        if self.message_stats.param_batches or self.message_stats.result_batches:
            lines.append("  " + self.batch_report())
        if self.fault_stats.any():
            lines.append("  " + self.fault_report())
        return "\n".join(lines)

    def fault_report(self) -> str:
        """One-line failure report (the CLI's ``\\faults`` output)."""
        stats = self.fault_stats
        if not stats.any():
            return "faults: none"
        return (
            f"faults: {stats.failed_calls} failed calls, "
            f"{stats.redeliveries} redelivered, {stats.skipped_rows} skipped, "
            f"{stats.respawns} children respawned, "
            f"{stats.breaker_trips} breaker trips"
        )

    def batch_report(self) -> str:
        """One-line micro-batching report (the CLI's ``\\batch`` output)."""
        stats = self.message_stats
        if not stats.any():
            return "batching: no inter-process messages (central plan?)"
        parts = [
            f"messages: {stats.total_messages} "
            f"({stats.downlink_messages} down, {stats.uplink_messages} up)",
            f"param batches: {stats.param_batches} "
            f"carrying {stats.batched_params} tuples "
            f"(+{stats.param_tuples} singles)",
            f"result batches: {stats.result_batches} "
            f"carrying {stats.batched_results} rows "
            f"(+{stats.result_tuples} singles)",
        ]
        if stats.flushes:
            triggers = ", ".join(
                f"{trigger}={count}" for trigger, count in sorted(stats.flushes.items())
            )
            parts.append(f"flushes: {triggers}")
        return "; ".join(parts)

    def cache_report(self) -> str:
        """One-line call-cache report (the CLI's ``\\cache`` output)."""
        if self.cache_stats is None:
            return "call cache: off"
        stats = self.cache_stats
        return (
            f"call cache: {stats.hits} hits, {stats.misses} misses, "
            f"{stats.collapsed} collapsed, {stats.evictions} evicted, "
            f"{stats.expirations} expired "
            f"({stats.hit_rate:.0%} hit rate, {stats.calls_avoided} calls avoided)"
        )
