"""The unified per-query options object.

Every per-query planning and execution knob lives in one frozen
dataclass, :class:`QueryOptions`, accepted by :meth:`WSMED.sql` /
:meth:`WSMED.plan` / :meth:`WSMED.explain`, by
:meth:`~repro.engine.QueryEngine.sql` / ``sql_async`` / ``sql_many``,
by the CLI, and (as a nested JSON object) by the HTTP front end's
``POST /sql``.

The old keyword arguments keep working on every surface — they are
merged over ``options`` and emit a :class:`DeprecationWarning`::

    wsmed.sql(q, mode="adaptive", retries=2)              # deprecated
    wsmed.sql(q, options=QueryOptions(mode="adaptive", retries=2))

Some fields only make sense on one surface: ``kernel`` / ``fault_rate``
are rejected by the resident engine (which owns its kernel), and
``tenant`` / ``deadline_ms`` / ``observed`` are engine-level admission /
statistics knobs rejected by the one-shot :meth:`WSMED.sql` path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Optional

from repro.algebra.plan import AdaptationParams
from repro.cache import CacheConfig
from repro.parallel.costs import ProcessCosts
from repro.parallel.faults import FaultInjection
from repro.util.errors import PlanError


@dataclass(frozen=True)
class QueryOptions:
    """All per-query knobs; every field has the surface's old default.

    Planning:
      ``mode``           execution mode (``central``/``parallel``/``adaptive``).
      ``fanouts``        manual FF_APPLYP fanout vector (parallel mode).
      ``adaptation``     AFF_APPLYP parameters (adaptive mode).
      ``name``           query name for traces and reports.
      ``optimize``       ``"heuristic"`` (seed default) or ``"cost"``.
      ``observed``       measured (call cost, fanout) overlay for the
                         cost model (one-shot :meth:`WSMED.sql` only; the
                         resident engine feeds its own statistics).

    Execution:
      ``retries``        per-call retries of retriable service faults.
      ``cache``          per-query web-service call cache configuration.
      ``process_costs``  process cost model override (batching etc.).
      ``on_error``       pool failure policy shortcut (fail/retry/skip).
      ``faults``         fault-injection knobs.
      ``obs``            a TraceRecorder for span tracing.
      ``limit_pushdown`` let a LIMIT above FF/AFF stop dispatching calls
                         early (same rows, fewer calls; default on).

    One-shot only (:meth:`WSMED.sql`):
      ``kernel``         execution kernel (defaults to a fresh SimKernel).
      ``fault_rate``     broker-level random fault rate.

    Engine only (:class:`~repro.engine.QueryEngine`):
      ``tenant``         fair-queue admission identity.
      ``deadline_ms``    admission deadline in model milliseconds.
    """

    mode: object = "central"  # ExecutionMode | str (typed loosely: the
    # enum lives in repro.wsmed.system, which imports this module)
    fanouts: Optional[list] = None
    adaptation: Optional[AdaptationParams] = None
    retries: int = 0
    cache: Optional[CacheConfig] = None
    process_costs: Optional[ProcessCosts] = None
    on_error: Optional[str] = None
    faults: Optional[FaultInjection] = None
    name: str = "Query"
    obs: Optional[object] = None
    optimize: str = "heuristic"
    observed: Optional[dict] = None
    limit_pushdown: bool = True
    kernel: Optional[object] = None
    fault_rate: float = 0.0
    tenant: str = "default"
    deadline_ms: Optional[float] = None

    def replace(self, **overrides) -> "QueryOptions":
        """A copy with the given fields changed (field names validated)."""
        return replace(self, **overrides)


_FIELD_NAMES = frozenset(f.name for f in fields(QueryOptions))

#: Fields only the one-shot WSMED.sql surface honors.
ONE_SHOT_ONLY = frozenset({"kernel", "fault_rate"})
#: Fields only the resident engine honors.
ENGINE_ONLY = frozenset({"tenant", "deadline_ms"})


def resolve_options(
    options: QueryOptions | None,
    legacy: dict,
    *,
    where: str,
    rejected: frozenset = frozenset(),
) -> QueryOptions:
    """Merge deprecated keyword arguments over ``options``.

    ``legacy`` keys must be :class:`QueryOptions` field names; unknown
    names raise :class:`TypeError` exactly like a bad keyword argument
    would have.  Passing any legacy keyword emits a single
    :class:`DeprecationWarning` naming the call site.  ``rejected`` lists
    fields this surface does not support: setting one (to a non-default
    value) raises :class:`~repro.util.errors.PlanError`.
    """
    if options is not None and not isinstance(options, QueryOptions):
        raise PlanError(
            f"{where} options must be a QueryOptions, got {type(options).__name__}"
        )
    resolved = options if options is not None else QueryOptions()
    if legacy:
        unknown = set(legacy) - _FIELD_NAMES
        if unknown:
            raise TypeError(
                f"{where}() got unexpected keyword arguments: "
                + ", ".join(sorted(unknown))
            )
        warnings.warn(
            f"passing {', '.join(sorted(legacy))} as keyword arguments to "
            f"{where} is deprecated; pass options=QueryOptions(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        resolved = replace(resolved, **legacy)
    defaults = QueryOptions()
    for name in rejected:
        if getattr(resolved, name) != getattr(defaults, name):
            raise PlanError(f"{where} does not support the {name!r} option")
    return resolved
