"""Flattened SQL views over OWFs.

WSMED exposes every OWF as a flat SQL view whose columns are the
operation's *input parameters* followed by its flattened *result columns*;
queries bind the input columns with equality predicates (Sec. II.A's
restriction that OWF input values must be known in the query).
"""

from __future__ import annotations

from repro.fdb.functions import FunctionDef, FunctionKind


def view_columns(function: FunctionDef) -> list[tuple[str, str, str]]:
    """The view's columns: (name, type, role) with role input/output."""
    columns = [
        (parameter.name, str(parameter.type), "input")
        for parameter in function.parameters
    ]
    columns.extend(
        (name, str(atom), "output") for name, atom in function.result.columns
    )
    return columns


def render_view(function: FunctionDef) -> str:
    """CREATE VIEW-style description of one OWF view."""
    kind = "web service view" if function.kind is FunctionKind.OWF else "function view"
    lines = [f"-- {kind} {function.name}"]
    lines.append(f"CREATE VIEW {function.name} (")
    rendered = [
        f"    {name} {type_name} -- {role}"
        for name, type_name, role in view_columns(function)
    ]
    lines.append(",\n".join(rendered))
    lines.append(")")
    if function.documentation:
        lines.append(f"-- {function.documentation}")
    return "\n".join(lines)
