"""WSMED: the Web Service MEDiator (the paper's system, Sec. III-IV).

:class:`~repro.wsmed.system.WSMED` is the public facade: import WSDL
documents (which generates operation wrapper functions and flattened SQL
views, and records metadata in the local catalog), then run SQL queries
with a central, manually-fanned-out parallel, or adaptive execution plan.
"""

from repro.wsmed.owf import OperationWrapper, generate_owf
from repro.wsmed.results import QueryResult
from repro.wsmed.system import WSMED, ExecutionMode
from repro.wsmed.views import render_view, view_columns

__all__ = [
    "OperationWrapper",
    "generate_owf",
    "QueryResult",
    "WSMED",
    "ExecutionMode",
    "render_view",
    "view_columns",
]
