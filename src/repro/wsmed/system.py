"""The WSMED system facade.

Typical use::

    from repro import WSMED

    wsmed = WSMED(profile="paper")
    wsmed.import_all()                     # read WSDLs, generate OWF views
    result = wsmed.sql(QUERY2, mode="adaptive")
    print(result.summary())

Execution modes (Sec. V of the paper):

``central``
    The naive sequential plan (Figs 6/10); every web-service call in
    sequence.
``parallel``
    The plan rewritten with ``FF_APPLYP`` for a manually chosen fanout
    vector (Figs 9/13) — ``fanouts=[5, 4]`` is the paper's best Query1
    tree; a 0 entry fuses levels into a flat tree (Fig 14).
``adaptive``
    ``AFF_APPLYP``: starts from a binary tree and adapts each process's
    subtree at run time (Sec. V.A).
"""

from __future__ import annotations

import enum

from repro.algebra.central import create_central_plan
from repro.algebra.cost import (
    CostModel,
    estimate_nodes,
    estimate_plan,
    model_from_observations,
)
from repro.algebra.explain import render_plan
from dataclasses import replace as _replace

from repro.algebra.interpreter import ExecutionContext
from repro.algebra.optimizer import OptimizerConfig, create_cost_based_plan
from repro.algebra.plan import (
    AdaptationParams,
    DistinctNode,
    LimitNode,
    PlanNode,
    SortNode,
    UnionNode,
)
from repro.cache import CacheConfig, aggregate_stats
from repro.calculus.expressions import CalculusQuery
from repro.calculus.generator import generate_calculus
from repro.calculus.rewrite import rewrite_unfittable
from repro.fdb.catalog import Catalog
from repro.parallel.batching import message_stats_from_trace
from repro.fdb.functions import FunctionDef, FunctionRegistry, helping_function
from repro.fdb.types import CHARSTRING, TupleType
from repro.obs.spans import NULL_RECORDER
from repro.parallel.costs import ProcessCosts
from repro.parallel.executor import ParallelExecutor
from repro.parallel.faults import fault_stats_from_trace
from repro.parallel.parallelizer import parallelize
from repro.parallel.tree import tree_stats_from_trace
from repro.runtime.simulated import SimKernel
from repro.services.registry import ServiceRegistry, build_registry
from repro.sql.ast import FuncCall, Star
from repro.sql.parser import parse_query
from repro.util.errors import CalculusError, PlanError
from repro.wsmed.options import ENGINE_ONLY, QueryOptions, resolve_options
from repro.wsmed.owf import generate_owf
from repro.wsmed.results import QueryResult
from repro.wsmed.views import render_view


class ExecutionMode(enum.Enum):
    CENTRAL = "central"
    PARALLEL = "parallel"
    ADAPTIVE = "adaptive"

    @staticmethod
    def of(value: "ExecutionMode | str") -> "ExecutionMode":
        if isinstance(value, ExecutionMode):
            return value
        try:
            return ExecutionMode(value)
        except ValueError:
            raise PlanError(
                f"unknown execution mode {value!r}; "
                "use central, parallel or adaptive"
            ) from None


def _default_costs(profile: str) -> ProcessCosts:
    costs = ProcessCosts()
    return costs.scaled(0.01) if profile == "fast" else costs


def _getzipcode(zipstr: str) -> list[tuple[str]]:
    """The paper's ``getzipcode`` helping function (Sec. II.B).

    Module-level (not a lambda) so the definition can be pickled into
    worker processes by the multi-process kernel's code shipping.
    """
    return [(code,) for code in zipstr.split(",") if code]


class DisjunctiveCalculus:
    """The calculus of an ``OR`` query: one conjunctive branch per disjunct.

    The execution plan unions the branch plans and eliminates duplicates,
    so a disjunctive query returns the DISTINCT of the true SQL result.
    """

    def __init__(self, branches: tuple[CalculusQuery, ...]) -> None:
        self.branches = branches

    def to_text(self) -> str:
        return "\nOR\n".join(branch.to_text() for branch in self.branches)


class WSMED:
    """The mediator: WSDL import, view generation, query execution."""

    def __init__(
        self,
        registry: ServiceRegistry | None = None,
        *,
        profile: str = "paper",
        seed: int = 2009,
        process_costs: ProcessCosts | None = None,
        cache: CacheConfig | None = None,
    ) -> None:
        self.registry = registry or build_registry(profile, seed=seed)
        self.seed = seed
        self.process_costs = process_costs or _default_costs(profile)
        # Default web-service call cache configuration; None (or a config
        # with enabled=False) executes every call against the broker.
        self.cache_config = cache
        self.catalog = Catalog()
        self.functions = FunctionRegistry()
        self._wrappers: dict[str, object] = {}
        # Notified with the (lower-cased) function name whenever a
        # definition is replaced — the resident engine subscribes to
        # invalidate cached plans and condemn warm pools.  Must exist
        # before the constructor registers the built-in views below.
        self._replace_listeners: list = []
        # Lazily computed by _profile_call_costs() / _profile_fanouts();
        # invalidated by _notify_replace so a swapped registry (or a
        # re-imported endpoint with a new profile) is re-profiled.
        self._call_costs: dict[str, float] | None = None
        self._fanout_hints: dict[str, float] | None = None
        # The paper's helping function (Sec. II.B) ships with the system.
        self.register_helping_function(
            helping_function(
                "getzipcode",
                [("zipstr", CHARSTRING)],
                TupleType((("zipcode", CHARSTRING),)),
                _getzipcode,
                documentation=(
                    "Extracts the set of zip codes from a comma-separated string."
                ),
            )
        )
        self._register_catalog_views()

    def _register_catalog_views(self) -> None:
        """Expose the WSMED local database (Sec. III) as queryable views.

        ``SELECT * FROM ws_operations`` etc. work like any other view —
        the mediator's metadata is data.
        """
        from repro.fdb.types import INTEGER

        for view_name, table, columns in (
            (
                "ws_services",
                self.catalog.services,
                (("uri", CHARSTRING), ("service", CHARSTRING), ("port", CHARSTRING)),
            ),
            (
                "ws_operations",
                self.catalog.operations,
                (
                    ("uri", CHARSTRING),
                    ("service", CHARSTRING),
                    ("operation", CHARSTRING),
                    ("owf", CHARSTRING),
                ),
            ),
            (
                "ws_parameters",
                self.catalog.parameters,
                (
                    ("owf", CHARSTRING),
                    ("position", INTEGER),
                    ("name", CHARSTRING),
                    ("type", CHARSTRING),
                ),
            ),
            (
                "ws_result_columns",
                self.catalog.result_columns,
                (
                    ("owf", CHARSTRING),
                    ("position", INTEGER),
                    ("name", CHARSTRING),
                    ("type", CHARSTRING),
                ),
            ),
        ):
            self.register_helping_function(
                helping_function(
                    view_name,
                    [],
                    TupleType(columns),
                    (lambda table=table: list(table.scan())),
                    documentation=f"WSMED catalog table {view_name}",
                )
            )

    # -- metadata import --------------------------------------------------------

    def import_wsdl(self, uri: str) -> list[str]:
        """Import one WSDL document: catalog metadata + OWF views.

        Returns the names of the generated OWFs.  Re-importing replaces
        the previous definitions.
        """
        document = self.registry.document(uri)
        self.catalog.record_service(uri, document.service_name, document.port_name)
        generated = []
        for operation_name in document.operations:
            wrapper = generate_owf(document, operation_name)
            function = wrapper.as_function()
            self.functions.replace(function)
            self._notify_replace(function.name)
            self._wrappers[function.name.lower()] = wrapper
            self.catalog.record_operation(
                uri,
                document.service_name,
                operation_name,
                function.name,
                parameters=[(n, str(t)) for n, t in wrapper.parameters],
                result_columns=[(n, str(t)) for n, t in wrapper.result_columns],
            )
            generated.append(function.name)
        return generated

    def import_all(self) -> list[str]:
        """Import every WSDL the registry publishes."""
        generated = []
        for uri in self.registry.wsdl_uris():
            generated.extend(self.import_wsdl(uri))
        return generated

    def register_helping_function(self, function: FunctionDef) -> None:
        self.functions.replace(function)
        self._notify_replace(function.name)

    def add_replace_listener(self, listener) -> None:
        """Subscribe to definition replacements.

        ``listener(name)`` fires after a function named ``name`` (lower
        case) is replaced by :meth:`import_wsdl` or
        :meth:`register_helping_function` — plans and process trees
        compiled against the old definition are stale from that point.
        """
        self._replace_listeners.append(listener)

    def _notify_replace(self, name: str) -> None:
        # A replaced definition may come from a re-registered endpoint
        # whose cost profile changed; drop the lazily cached profile
        # snapshots so the next explain()/cost_model() re-reads them.
        self._call_costs = None
        self._fanout_hints = None
        for listener in self._replace_listeners:
            listener(name.lower())

    # -- introspection -------------------------------------------------------------

    def owf_source(self, name: str) -> str:
        """AmosQL-style source of a generated OWF (like the paper's Fig 2)."""
        wrapper = self._wrappers.get(name.lower())
        if wrapper is None:
            raise PlanError(f"no generated OWF named {name!r}")
        return wrapper.render_source()

    def views(self) -> str:
        """Render all registered views."""
        return "\n\n".join(
            render_view(function) for function in self.functions.all()
        )

    # -- planning ---------------------------------------------------------------------

    def _compile(
        self,
        sql_text: str,
        *,
        mode: ExecutionMode | str,
        fanouts: list[int] | None,
        adaptation: AdaptationParams | None,
        name: str,
        obs=NULL_RECORDER,
        optimize: str = "heuristic",
        observed: dict[str, tuple[float, float]] | None = None,
        optimizer_config: OptimizerConfig | None = None,
    ):
        """One compilation pass: returns ``(calculus, plan, report)``.

        Shared by :meth:`plan` and :meth:`explain` so explain does not
        parse and generate the calculus twice.  ``obs`` (a
        :class:`repro.obs.TraceRecorder`) records one span per compile
        phase: parse, calculus, algebra, parallelize, plan_functions.
        Compile spans run on the recorder's wall clock (there is no kernel
        yet), so they form their own root rather than nesting under the
        kernel-clocked query span.

        ``optimize`` selects the central plan creator: ``"heuristic"``
        (the paper's greedy signature heuristic — the default, identical
        to the seed behavior) or ``"cost"`` (the cost-based optimizer of
        :mod:`repro.algebra.optimizer`, with access-path rewriting of
        unfittable binding patterns).  ``observed`` overlays measured
        per-function ``(call cost, fanout)`` statistics onto the profiled
        cost model — the resident engine feeds its
        :class:`~repro.services.broker.CallStats` back through this.
        ``report`` is ``None`` for heuristic compilations.
        """
        mode = ExecutionMode.of(mode)
        if optimize not in ("heuristic", "cost"):
            raise PlanError(
                f"unknown optimize level {optimize!r}; use heuristic or cost"
            )
        root = current = -1
        if obs.enabled:
            root = obs.start(
                f"compile:{name}",
                category="compile",
                process="compiler",
                mode=mode.value,
            )

        def phase(label: str) -> int:
            nonlocal current
            if obs.enabled:
                current = obs.start(
                    label, category="compile", parent=root, process="compiler"
                )
            return current

        try:
            phase("parse")
            query = parse_query(sql_text)
            obs.finish(current)
            phase("calculus")
            if query.is_disjunctive:
                branches = self._disjunct_calculi(query, name, optimize)
                calculus = DisjunctiveCalculus(
                    tuple(branch for branch, _ in branches)
                )
            elif optimize == "cost":
                calculus = generate_calculus(
                    query, self.functions, name, allow_unbound=True
                )
                calculus, rewrites = rewrite_unfittable(calculus, self.functions)
            else:
                calculus = generate_calculus(query, self.functions, name)
                rewrites = []
            obs.finish(current)
            phase("algebra")
            if query.is_disjunctive:
                central = self._union_plan(
                    branches,
                    optimize=optimize,
                    observed=observed,
                    optimizer_config=optimizer_config,
                )
                report = None
            elif optimize == "cost":
                central, report = create_cost_based_plan(
                    calculus,
                    self.functions,
                    self.cost_model(observed),
                    optimizer_config,
                    rewrites=rewrites,
                )
            else:
                central = create_central_plan(calculus, self.functions)
                report = None
            obs.finish(current)
            if mode is ExecutionMode.CENTRAL:
                return calculus, central, report
            phase("parallelize")
            if mode is ExecutionMode.PARALLEL:
                if fanouts is None:
                    raise PlanError("parallel mode requires a fanout vector")
                plan = parallelize(
                    central,
                    self.functions,
                    fanouts=fanouts,
                    obs=obs if obs.enabled else None,
                    obs_parent=current,
                )
            else:
                plan = parallelize(
                    central,
                    self.functions,
                    adaptation=adaptation or AdaptationParams(),
                    obs=obs if obs.enabled else None,
                    obs_parent=current,
                )
            obs.finish(current)
            return calculus, plan, report
        finally:
            if obs.enabled:
                obs.finish(current)  # no-op unless a phase failed mid-way
                obs.finish(root)

    def _disjunct_calculi(
        self, query, name: str, optimize: str
    ) -> list[tuple[CalculusQuery, list]]:
        """One conjunctive calculus (plus rewrites) per OR branch.

        Every branch must independently satisfy the binding patterns: a
        branch whose conjuncts cannot bind an operation's inputs raises
        :class:`~repro.util.errors.BindingError` like any conjunctive
        query would.
        """
        aggregated = query.group_by or (
            not isinstance(query.select, Star)
            and any(isinstance(item.expression, FuncCall) for item in query.select)
        )
        if aggregated:
            raise CalculusError(
                "OR cannot be combined with aggregates or GROUP BY; "
                "aggregate each branch in its own query instead"
            )
        branches = []
        for index, branch in enumerate(query.disjuncts):
            branch_query = _replace(query, predicates=branch, disjuncts=(branch,))
            branch_name = f"{name}_or{index + 1}"
            if optimize == "cost":
                calc = generate_calculus(
                    branch_query, self.functions, branch_name, allow_unbound=True
                )
                calc, rewrites = rewrite_unfittable(calc, self.functions)
            else:
                calc = generate_calculus(branch_query, self.functions, branch_name)
                rewrites = []
            branches.append((calc, rewrites))
        return branches

    def _union_plan(
        self,
        branches: list[tuple[CalculusQuery, list]],
        *,
        optimize: str,
        observed: dict[str, tuple[float, float]] | None,
        optimizer_config: OptimizerConfig | None,
    ) -> PlanNode:
        """Union the branch plans; DISTINCT / ORDER BY / LIMIT go on top.

        Branch plans are built without post-processing (it must apply to
        the union, not per branch); the calculus of the first branch
        carries the resolved ORDER BY keys and LIMIT for the whole query.
        """
        plans = []
        for calc, rewrites in branches:
            bare = _replace(calc, distinct=False, order_by=(), limit=None)
            if optimize == "cost":
                plan, _ = create_cost_based_plan(
                    bare,
                    self.functions,
                    self.cost_model(observed),
                    optimizer_config,
                    rewrites=rewrites,
                )
            else:
                plan = create_central_plan(bare, self.functions)
            plans.append(plan)
        # OR has set semantics here: duplicate rows across (or within)
        # branches are eliminated, i.e. the DISTINCT of the SQL result.
        plan: PlanNode = DistinctNode(UnionNode(tuple(plans)))
        spine = branches[0][0]
        if spine.order_by:
            for column, _ in spine.order_by:
                if column not in plan.schema:
                    raise PlanError(f"unknown ORDER BY column {column!r}")
            plan = SortNode(plan, tuple(spine.order_by))
        if spine.limit is not None:
            plan = LimitNode(plan, spine.limit)
        return plan

    def plan(
        self,
        sql_text: str,
        *,
        options: QueryOptions | None = None,
        **legacy,
    ) -> PlanNode:
        """Compile SQL down to an executable plan for the given mode.

        Accepts a :class:`~repro.wsmed.options.QueryOptions` (planning
        fields only); the old individual keyword arguments still work but
        are deprecated.
        """
        opts = resolve_options(
            options, legacy, where="WSMED.plan", rejected=ENGINE_ONLY
        )
        _, plan, _ = self._compile(
            sql_text,
            mode=opts.mode,
            fanouts=opts.fanouts,
            adaptation=opts.adaptation,
            name=opts.name,
            obs=opts.obs if opts.obs is not None else NULL_RECORDER,
            optimize=opts.optimize,
            observed=opts.observed,
        )
        return plan

    def explain(
        self,
        sql_text: str,
        *,
        options: QueryOptions | None = None,
        **legacy,
    ) -> str:
        """Calculus, plan tree and cost estimate as a report.

        With ``optimize="cost"`` the report shows the cost-chosen plan
        annotated with per-operator estimates, the heuristic plan it was
        compared against, and any access-path rewrites applied (with the
        binding-pattern reason) — or, when the heuristic pipeline cannot
        plan the query at all, the error the rewrite repaired.
        """
        opts = resolve_options(
            options, legacy, where="WSMED.explain", rejected=ENGINE_ONLY
        )
        if opts.optimize == "cost":
            return self._explain_cost(
                sql_text,
                mode=opts.mode,
                fanouts=opts.fanouts,
                adaptation=opts.adaptation,
                name=opts.name,
                observed=opts.observed,
            )
        calculus, plan, _ = self._compile(
            sql_text,
            mode=opts.mode,
            fanouts=opts.fanouts,
            adaptation=opts.adaptation,
            name=opts.name,
        )
        model = CostModel(call_costs=self._profile_call_costs())
        estimate = estimate_plan(plan, self.functions, model)
        sections = [
            "-- calculus --",
            calculus.to_text(),
            "",
            "-- plan --",
            render_plan(plan),
            "",
            "-- estimate --",
            f"web service calls: "
            + ", ".join(f"{op}={calls:.0f}" for op, calls in sorted(estimate.calls.items())),
            f"sequential time: ~{estimate.sequential_time:.1f} s",
        ]
        return "\n".join(sections)

    def _explain_cost(
        self,
        sql_text: str,
        *,
        mode: ExecutionMode | str,
        fanouts: list[int] | None,
        adaptation: AdaptationParams | None,
        name: str,
        observed: dict[str, tuple[float, float]] | None,
    ) -> str:
        """The cost-based explain: chosen plan vs heuristic plan."""
        from repro.util.errors import BindingError

        calculus, plan, report = self._compile(
            sql_text,
            mode=mode,
            fanouts=fanouts,
            adaptation=adaptation,
            name=name,
            optimize="cost",
            observed=observed,
        )
        model = self.cost_model(observed)
        annotations = {
            node_id: (
                f"  -- in≈{e.input_cardinality:.1f} out≈{e.output_cardinality:.1f}"
                + (f" calls≈{e.calls:.0f} time≈{e.time:.1f}s" if e.calls else "")
            )
            for node_id, e in estimate_nodes(plan, self.functions, model).items()
        }
        sections = [
            "-- calculus --",
            calculus.to_text(),
            "",
            "-- cost-based plan --",
            render_plan(plan, annotations=annotations),
            "",
            "-- optimizer --",
            report.describe() if report is not None else "(no report)",
        ]
        estimate = report.estimate if report is not None else None
        if estimate is not None:
            sections += [
                "",
                "-- estimate (cost-based) --",
                "web service calls: "
                + ", ".join(
                    f"{op}={calls:.0f}"
                    for op, calls in sorted(estimate.calls.items())
                ),
                f"sequential time: ~{estimate.sequential_time:.1f} s",
            ]
        sections += ["", "-- heuristic plan --"]
        try:
            _, heuristic_plan, _ = self._compile(
                sql_text,
                mode=mode,
                fanouts=fanouts,
                adaptation=adaptation,
                name=name,
            )
        except BindingError as error:
            sections.append(f"(not plannable without rewrites: {error})")
        else:
            sections.append(render_plan(heuristic_plan))
            heuristic = estimate_plan(heuristic_plan, self.functions, model)
            sections += [
                "",
                "-- estimate (heuristic) --",
                "web service calls: "
                + ", ".join(
                    f"{op}={calls:.0f}"
                    for op, calls in sorted(heuristic.calls.items())
                ),
                f"sequential time: ~{heuristic.sequential_time:.1f} s",
            ]
            if estimate is not None and heuristic.sequential_time > 0:
                ratio = estimate.sequential_time / heuristic.sequential_time
                sections.append(
                    f"cost-based vs heuristic: {ratio:.2f}x estimated "
                    "sequential time"
                )
        return "\n".join(sections)

    def _profile_call_costs(self) -> dict[str, float]:
        if self._call_costs is None:
            costs = {}
            for service_costs in self.registry.costs.values():
                for operation, profile in service_costs.operations.items():
                    costs[operation] = profile.sequential_call_time()
            self._call_costs = costs
        return self._call_costs

    def _profile_fanouts(self) -> dict[str, float]:
        """Advisory rows-per-call hints from the endpoint profiles."""
        if self._fanout_hints is None:
            hints = {}
            for service_costs in self.registry.costs.values():
                for operation, profile in service_costs.operations.items():
                    if profile.fanout_hint is not None:
                        hints[operation] = profile.fanout_hint
            self._fanout_hints = hints
        return self._fanout_hints

    def cost_model(
        self, observed: dict[str, tuple[float, float]] | None = None
    ) -> CostModel:
        """The optimizer's cost model: profiled costs + fanout hints.

        ``observed`` overlays measured per-function ``(call cost,
        fanout)`` pairs — see
        :func:`repro.algebra.cost.model_from_observations`.
        """
        model = CostModel(
            fanouts=dict(self._profile_fanouts()),
            call_costs=dict(self._profile_call_costs()),
        )
        if observed:
            model = model_from_observations(model, observed)
        return model

    # -- execution -----------------------------------------------------------------------

    def sql(
        self,
        sql_text: str,
        *,
        options: QueryOptions | None = None,
        **legacy,
    ) -> QueryResult:
        """Run a SQL query and return rows plus execution statistics.

        All per-query knobs travel in ``options`` (a
        :class:`~repro.wsmed.options.QueryOptions`); the old individual
        keyword arguments still work but are deprecated.

        ``kernel`` defaults to a fresh simulated kernel (virtual time);
        pass an :class:`~repro.runtime.realtime.AsyncioKernel` to execute
        with real concurrency.  ``retries`` retries retriable service
        faults per call before giving up.  ``cache`` overrides the
        system-wide :class:`~repro.cache.CacheConfig` for this query;
        when enabled, every query process memoizes its web-service calls.
        ``process_costs`` overrides the system-wide cost model for this
        query (e.g. to enable micro-batching via ``batch_size``).
        ``on_error`` / ``faults`` are shortcuts that override the pool
        failure policy and fault-injection knobs of the effective
        process costs (see :class:`~repro.parallel.costs.ProcessCosts`).
        ``obs`` (a :class:`repro.obs.TraceRecorder`) turns on span
        tracing: compile phases, operator invocations, per-call and
        web-service spans land in its store, which the returned result
        exposes as ``QueryResult.spans`` (see ``critical_path()`` and
        ``chrome_trace()``).  The default no-op recorder leaves the
        execution byte-for-byte identical to an untraced run.
        ``optimize="cost"`` plans with the cost-based optimizer (and
        access-path rewriting) instead of the default greedy heuristic;
        ``observed`` overlays measured per-function (call cost, fanout)
        statistics onto the optimizer's cost model.
        """
        opts = resolve_options(
            options, legacy, where="WSMED.sql", rejected=ENGINE_ONLY
        )
        mode = ExecutionMode.of(opts.mode)
        recorder = opts.obs if opts.obs is not None else NULL_RECORDER
        _, plan, _ = self._compile(
            sql_text,
            mode=mode,
            fanouts=opts.fanouts,
            adaptation=opts.adaptation,
            name=opts.name,
            obs=recorder,
            optimize=opts.optimize,
            observed=opts.observed,
        )
        effective_costs = opts.process_costs or self.process_costs
        if opts.on_error is not None:
            effective_costs = _replace(effective_costs, on_error=opts.on_error)
        if opts.faults is not None:
            effective_costs = _replace(effective_costs, faults=opts.faults)
        kernel = opts.kernel or SimKernel()
        broker = self.registry.bind(
            kernel, seed=self.seed, fault_rate=opts.fault_rate
        )
        ctx = ExecutionContext(
            kernel=kernel,
            broker=broker,
            functions=self.functions,
            retries=opts.retries,
            limit_pushdown=opts.limit_pushdown,
        )
        ctx.install_cache(opts.cache if opts.cache is not None else self.cache_config)
        attach_placement = getattr(kernel, "attach_placement", None)
        if attach_placement is not None:
            # Multi-process kernel: children of FF/AFF pools are placed in
            # OS worker processes; ship the (current) function registry.
            attach_placement(
                ctx,
                functions=self.functions,
                registry=self.registry,
                seed=self.seed,
                fault_rate=opts.fault_rate,
            )
        executor = ParallelExecutor(ctx, effective_costs)

        async def timed() -> tuple[list[tuple], float]:
            # Span bookkeeping happens inside the coroutine: the realtime
            # kernel's clock is only readable from within its event loop.
            query_span = -1
            if recorder.enabled:
                query_span = recorder.start(
                    f"query:{opts.name}",
                    category="query",
                    process=ctx.process_name,
                    at=kernel.now(),
                    mode=mode.value,
                )
                ctx.obs = recorder
                ctx.obs_span = query_span
                kernel.obs = recorder
            started = kernel.now()
            try:
                rows = await executor.execute(plan)
            except BaseException:
                if recorder.enabled:
                    kernel.obs = None
                    recorder.finish(query_span, at=kernel.now(), outcome="error")
                raise
            elapsed = kernel.now() - started
            if recorder.enabled:
                kernel.obs = None
                recorder.finish(query_span, at=kernel.now(), rows=len(rows))
            return rows, elapsed

        rows, elapsed = kernel.run(timed())
        return QueryResult(
            columns=plan.schema,
            rows=rows,
            elapsed=elapsed,
            mode=mode.value,
            total_calls=broker.total_calls(),
            call_stats=broker.all_stats(),
            trace=ctx.trace,
            tree=tree_stats_from_trace(ctx.trace),
            plan_text=render_plan(plan),
            cache_stats=(
                aggregate_stats(ctx.cache_registry) if ctx.cache_registry else None
            ),
            message_stats=message_stats_from_trace(ctx.trace),
            fault_stats=fault_stats_from_trace(ctx.trace),
            spans=recorder.store if recorder.enabled else None,
        )
