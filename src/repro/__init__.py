"""WSMED reproduction: adaptive parallelization of queries over dependent
web service calls (Sabesan & Risch, ICDE 2009).

Quick start::

    from repro import WSMED, QUERY1_SQL

    wsmed = WSMED(profile="paper")
    wsmed.import_all()
    central = wsmed.sql(QUERY1_SQL, mode="central")
    best = wsmed.sql(QUERY1_SQL, mode="parallel", fanouts=[5, 4])
    adaptive = wsmed.sql(QUERY1_SQL, mode="adaptive")
    print(central.elapsed, best.elapsed, adaptive.elapsed)

The package layers (see DESIGN.md for the full inventory):

* :mod:`repro.runtime` — virtual-time and real-time execution kernels,
* :mod:`repro.services` — the simulated web-service substrate,
* :mod:`repro.fdb` — the functional main-memory DBMS substrate,
* :mod:`repro.sql`, :mod:`repro.calculus`, :mod:`repro.algebra` — the
  query compiler (SQL -> calculus -> central plan),
* :mod:`repro.parallel` — ``FF_APPLYP`` / ``AFF_APPLYP`` and process trees,
* :mod:`repro.wsmed` — the mediator facade tying it all together.
"""

from repro.algebra.optimizer import (
    OptimizerConfig,
    OptimizerReport,
    create_cost_based_plan,
)
from repro.algebra.plan import AdaptationParams
from repro.cache import CacheConfig, CacheStats
from repro.calculus.rewrite import AppliedRewrite, rewrite_unfittable
from repro.engine import (
    AdmissionConfig,
    AdmissionRejected,
    EngineClosed,
    EngineStats,
    QueryEngine,
    ShareConfig,
    SharedStats,
)
from repro.obs import (
    CriticalPathReport,
    MetricsRegistry,
    SpanStore,
    TraceRecorder,
    analyze_critical_path,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.fdb.functions import AccessPath
from repro.parallel.costs import ProcessCosts
from repro.parallel.faults import FaultInjection, FaultStats
from repro.parallel.tree import FanoutVector
from repro.runtime.realtime import AsyncioKernel
from repro.runtime.simulated import SimKernel
from repro.services.geodata import GeoConfig, GeoDatabase
from repro.services.registry import ServiceRegistry, build_registry
from repro.util.errors import ReproError, SqlError
from repro.wsmed.options import QueryOptions
from repro.wsmed.results import QueryResult
from repro.wsmed.system import WSMED, ExecutionMode

__version__ = "1.0.0"

# The paper's two example queries (Figs 1 and 3), ready to run.
QUERY1_SQL = """
Select gl.placename, gl.state
From   GetAllStates gs, GetPlacesWithin gp, GetPlaceList gl
Where  gs.State = gp.state and gp.distance = 15.0
  and  gp.placeTypeToFind = 'City' and gp.place = 'Atlanta'
  and  gl.placeName = gp.ToCity + ', ' + gp.ToState
  and  gl.MaxItems = 100 and gl.imagePresence = 'true'
"""

QUERY2_SQL = """
Select gp.ToState, gp.zip
From   GetAllStates gs, GetInfoByState gi, getzipcode gc, GetPlacesInside gp
Where  gs.State = gi.USState and
       gi.GetInfoByStateResult = gc.zipstr and
       gc.zipcode = gp.zip and
       gp.ToPlace = 'USAF Academy'
"""


def __getattr__(name: str):
    # Lazy: the multi-process kernel and the HTTP front end sit above the
    # operator layers that import this package during initialization.
    if name == "ProcessKernel":
        from repro.runtime.multiprocess import ProcessKernel

        return ProcessKernel
    if name == "QueryServer":
        from repro.serve import QueryServer

        return QueryServer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AdaptationParams",
    "CacheConfig",
    "CacheStats",
    "ProcessCosts",
    "FaultInjection",
    "FaultStats",
    "FanoutVector",
    "AsyncioKernel",
    "ProcessKernel",
    "SimKernel",
    "QueryServer",
    "GeoConfig",
    "GeoDatabase",
    "ServiceRegistry",
    "build_registry",
    "ReproError",
    "SqlError",
    "QueryOptions",
    "QueryResult",
    "QueryEngine",
    "AdmissionConfig",
    "AdmissionRejected",
    "EngineClosed",
    "EngineStats",
    "ShareConfig",
    "SharedStats",
    "TraceRecorder",
    "SpanStore",
    "MetricsRegistry",
    "CriticalPathReport",
    "analyze_critical_path",
    "to_chrome_trace",
    "write_chrome_trace",
    "AccessPath",
    "AppliedRewrite",
    "OptimizerConfig",
    "OptimizerReport",
    "create_cost_based_plan",
    "rewrite_unfittable",
    "WSMED",
    "ExecutionMode",
    "QUERY1_SQL",
    "QUERY2_SQL",
    "__version__",
]
