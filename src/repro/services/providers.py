"""The four simulated service providers of the paper's scenario.

Each provider publishes a WSDL document (real XML, parsed by
:mod:`repro.services.wsdl`) and implements its operations against the
synthetic :class:`~repro.services.geodata.GeoDatabase`:

* **GeoPlaces** (codeBump PlaceLookup [3]): ``GetAllStates``,
  ``GetPlacesWithin``
* **TerraService** (TerraServer [17]): ``GetPlaceList``
* **USZip** [19]: ``GetInfoByState``
* **Zipcodes** (codeBump ZipCodeLookup [4]): ``GetPlacesInside``

``invoke`` returns plain Python payloads; the broker encodes them through
the WSDL output schema into XML and back (see :mod:`repro.services.soap`).
"""

from __future__ import annotations

from typing import Any

from repro.services.geodata import GeoDatabase
from repro.util.errors import ServiceFault

GEOPLACES_URI = "http://sim.codebump.com/services/PlaceLookup.wsdl"
TERRASERVICE_URI = "http://sim.terraservice.net/TerraService.wsdl"
USZIP_URI = "http://sim.webservicex.net/uszip.wsdl"
ZIPCODES_URI = "http://sim.codebump.com/services/ZipCodeLookup.wsdl"

_GEOPLACES_WSDL = """\
<definitions name="PlaceLookup" targetNamespace="urn:sim:geoplaces">
  <types>
    <schema>
      <element name="GetAllStates">
        <complexType><sequence/></complexType>
      </element>
      <element name="GetAllStatesResponse">
        <complexType><sequence>
          <element name="GetAllStatesResult">
            <complexType><sequence>
              <element name="GeoPlaceDetails" maxOccurs="unbounded">
                <complexType><sequence>
                  <element name="Name" type="xsd:string"/>
                  <element name="Type" type="xsd:string"/>
                  <element name="State" type="xsd:string"/>
                  <element name="LatDegrees" type="xsd:double"/>
                  <element name="LonDegrees" type="xsd:double"/>
                  <element name="LatRadians" type="xsd:double"/>
                  <element name="LonRadians" type="xsd:double"/>
                </sequence></complexType>
              </element>
            </sequence></complexType>
          </element>
        </sequence></complexType>
      </element>
      <element name="GetPlacesWithin">
        <complexType><sequence>
          <element name="place" type="xsd:string"/>
          <element name="state" type="xsd:string"/>
          <element name="distance" type="xsd:double"/>
          <element name="placeTypeToFind" type="xsd:string"/>
        </sequence></complexType>
      </element>
      <element name="GetPlacesWithinResponse">
        <complexType><sequence>
          <element name="GetPlacesWithinResult">
            <complexType><sequence>
              <element name="GeoPlaceDistance" maxOccurs="unbounded">
                <complexType><sequence>
                  <element name="ToCity" type="xsd:string"/>
                  <element name="ToState" type="xsd:string"/>
                  <element name="Distance" type="xsd:double"/>
                </sequence></complexType>
              </element>
            </sequence></complexType>
          </element>
        </sequence></complexType>
      </element>
    </schema>
  </types>
  <portType name="GeoPlacesSoap">
    <operation name="GetAllStates">
      <input element="GetAllStates"/>
      <output element="GetAllStatesResponse"/>
    </operation>
    <operation name="GetPlacesWithin">
      <input element="GetPlacesWithin"/>
      <output element="GetPlacesWithinResponse"/>
    </operation>
  </portType>
  <service name="GeoPlaces">
    <port name="GeoPlacesSoap"/>
  </service>
</definitions>
"""

_TERRASERVICE_WSDL = """\
<definitions name="TerraService" targetNamespace="urn:sim:terraservice">
  <types>
    <schema>
      <element name="GetPlaceList">
        <complexType><sequence>
          <element name="placeName" type="xsd:string"/>
          <element name="MaxItems" type="xsd:int"/>
          <element name="imagePresence" type="xsd:boolean"/>
        </sequence></complexType>
      </element>
      <element name="GetPlaceListResponse">
        <complexType><sequence>
          <element name="GetPlaceListResult">
            <complexType><sequence>
              <element name="PlaceFacts" maxOccurs="unbounded">
                <complexType><sequence>
                  <element name="placename" type="xsd:string"/>
                  <element name="state" type="xsd:string"/>
                  <element name="country" type="xsd:string"/>
                  <element name="placeLat" type="xsd:double"/>
                  <element name="placeLon" type="xsd:double"/>
                  <element name="availableThemeMask" type="xsd:int"/>
                  <element name="placeTypeId" type="xsd:int"/>
                  <element name="population" type="xsd:int"/>
                </sequence></complexType>
              </element>
            </sequence></complexType>
          </element>
        </sequence></complexType>
      </element>
    </schema>
  </types>
  <portType name="TerraServiceSoap">
    <operation name="GetPlaceList">
      <input element="GetPlaceList"/>
      <output element="GetPlaceListResponse"/>
    </operation>
  </portType>
  <service name="TerraService">
    <port name="TerraServiceSoap"/>
  </service>
</definitions>
"""

_USZIP_WSDL = """\
<definitions name="USZip" targetNamespace="urn:sim:uszip">
  <types>
    <schema>
      <element name="GetInfoByState">
        <complexType><sequence>
          <element name="USState" type="xsd:string"/>
        </sequence></complexType>
      </element>
      <element name="GetInfoByStateResponse">
        <complexType><sequence>
          <element name="GetInfoByStateResult" type="xsd:string"/>
        </sequence></complexType>
      </element>
    </schema>
  </types>
  <portType name="USZipSoap">
    <operation name="GetInfoByState">
      <input element="GetInfoByState"/>
      <output element="GetInfoByStateResponse"/>
    </operation>
  </portType>
  <service name="USZip">
    <port name="USZipSoap"/>
  </service>
</definitions>
"""

_ZIPCODES_WSDL = """\
<definitions name="ZipCodeLookup" targetNamespace="urn:sim:zipcodes">
  <types>
    <schema>
      <element name="GetPlacesInside">
        <complexType><sequence>
          <element name="zip" type="xsd:string"/>
        </sequence></complexType>
      </element>
      <element name="GetPlacesInsideResponse">
        <complexType><sequence>
          <element name="GetPlacesInsideResult">
            <complexType><sequence>
              <element name="GeoPlaceDistance" maxOccurs="unbounded">
                <complexType><sequence>
                  <element name="ToPlace" type="xsd:string"/>
                  <element name="ToState" type="xsd:string"/>
                  <element name="Distance" type="xsd:double"/>
                </sequence></complexType>
              </element>
            </sequence></complexType>
          </element>
        </sequence></complexType>
      </element>
    </schema>
  </types>
  <portType name="ZipCodesSoap">
    <operation name="GetPlacesInside">
      <input element="GetPlacesInside"/>
      <output element="GetPlacesInsideResponse"/>
    </operation>
  </portType>
  <service name="Zipcodes">
    <port name="ZipCodesSoap"/>
  </service>
</definitions>
"""

_PLACE_TYPE_IDS = {"City": 32, "Locale": 64}


class _Provider:
    """Common shape: dispatch ``invoke`` to ``op_<OperationName>``."""

    uri: str = ""
    wsdl: str = ""

    def __init__(self, geodata: GeoDatabase) -> None:
        self.geodata = geodata

    def wsdl_text(self) -> str:
        return self.wsdl

    def invoke(self, operation: str, arguments: list[Any]) -> Any:
        handler = getattr(self, f"op_{operation}", None)
        if handler is None:
            raise ServiceFault(f"operation {operation!r} not implemented")
        return handler(*arguments)


class GeoPlacesProvider(_Provider):
    """codeBump PlaceLookup: state directory and radius search."""

    uri = GEOPLACES_URI
    wsdl = _GEOPLACES_WSDL

    def op_GetAllStates(self) -> dict:
        details = [
            {
                "Name": state.name,
                "Type": "State",
                "State": state.name,
                "LatDegrees": round(state.lat, 6),
                "LonDegrees": round(state.lon, 6),
                "LatRadians": round(state.lat * 0.0174532925, 8),
                "LonRadians": round(state.lon * 0.0174532925, 8),
            }
            for state in self.geodata.all_states()
        ]
        return {"GetAllStatesResult": {"GeoPlaceDetails": details}}

    def op_GetPlacesWithin(
        self, place: str, state: str, distance: float, place_type_to_find: str
    ) -> dict:
        try:
            abbreviation = self.geodata.state_named(state).abbreviation
        except KeyError:
            raise ServiceFault(f"unknown state {state!r}") from None
        rows = [
            {
                "ToCity": found.name,
                "ToState": found.state,
                "Distance": round(dist, 2),
            }
            for found, dist in self.geodata.places_within(
                place, abbreviation, distance, place_type_to_find
            )
        ]
        return {"GetPlacesWithinResult": {"GeoPlaceDistance": rows}}


class TerraServiceProvider(_Provider):
    """Microsoft TerraServer: place directory lookup."""

    uri = TERRASERVICE_URI
    wsdl = _TERRASERVICE_WSDL

    def op_GetPlaceList(
        self, place_name: str, max_items: int, image_presence: bool
    ) -> dict:
        facts = [
            {
                "placename": place.name,
                "state": place.state,
                "country": "US",
                "placeLat": round(place.lat, 6),
                "placeLon": round(place.lon, 6),
                "availableThemeMask": 7 if place.has_map else 0,
                "placeTypeId": _PLACE_TYPE_IDS.get(place.place_type, 0),
                "population": place.population,
            }
            for place in self.geodata.place_list(place_name, max_items, image_presence)
        ]
        return {"GetPlaceListResult": {"PlaceFacts": facts}}


class USZipProvider(_Provider):
    """USZip: all zip codes of a state as one comma-separated string."""

    uri = USZIP_URI
    wsdl = _USZIP_WSDL

    def op_GetInfoByState(self, us_state: str) -> dict:
        try:
            codes = self.geodata.zipcodes_of(us_state)
        except KeyError:
            raise ServiceFault(f"unknown state {us_state!r}") from None
        return {"GetInfoByStateResult": ",".join(codes)}


class ZipcodesProvider(_Provider):
    """codeBump ZipCodeLookup: places inside a zip-code area."""

    uri = ZIPCODES_URI
    wsdl = _ZIPCODES_WSDL

    def op_GetPlacesInside(self, zip_code: str) -> dict:
        rows = [
            {
                "ToPlace": place.name,
                "ToState": place.state,
                "Distance": round(dist, 2),
            }
            for place, dist in self.geodata.places_inside(zip_code)
        ]
        return {"GetPlacesInsideResult": {"GeoPlaceDistance": rows}}


ALL_PROVIDERS = (
    GeoPlacesProvider,
    TerraServiceProvider,
    USZipProvider,
    ZipcodesProvider,
)
