"""Endpoint wiring and named cost profiles.

A :class:`ServiceRegistry` bundles the synthetic geo database, the four
providers, their parsed WSDL documents, and a cost profile.  ``bind``
attaches all of it to a kernel run as a :class:`ServiceBroker`.

Profiles
--------
``paper``
    Calibrated so the central plans land near the paper's measurements
    (Query1 ~245 s, Query2 ~2413 s) and server capacities create the
    paper's interior optimum in the fanout grid.  EXPERIMENTS.md records
    the resulting paper-vs-measured numbers.
``fast``
    All time constants divided by 100 — same *shape*, used by unit and
    integration tests to keep virtual times small and readable.
``uncontended``
    The ``paper`` constants with effectively unlimited server capacity.
    Used by the ablation bench: without capacity limits the best tree is
    simply the largest one, demonstrating that server contention is what
    creates the optimum the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.base import Kernel
from repro.services.broker import ServiceBroker
from repro.services.geodata import GeoConfig, GeoDatabase
from repro.services.latency import EndpointProfile
from repro.services.providers import (
    GeoPlacesProvider,
    TerraServiceProvider,
    USZipProvider,
    ZipcodesProvider,
)
from repro.services.wsdl import WsdlDocument, parse_wsdl
from repro.util.errors import UnknownServiceError


@dataclass(frozen=True)
class ServiceCosts:
    """Cost description of one service: capacity + per-operation profiles."""

    capacity: int
    operations: dict[str, EndpointProfile]

    def scaled(self, factor: float) -> "ServiceCosts":
        return ServiceCosts(
            capacity=self.capacity,
            operations={
                name: profile.scaled(factor)
                for name, profile in self.operations.items()
            },
        )

    def with_capacity(self, capacity: int) -> "ServiceCosts":
        return ServiceCosts(capacity=capacity, operations=dict(self.operations))

    def without_contention(self) -> "ServiceCosts":
        """Unlimited capacity and no load degradation (ablation profile)."""
        from dataclasses import replace

        return ServiceCosts(
            capacity=1_000_000,
            operations={
                name: replace(
                    profile, overload_penalty=0.0, overload_quadratic=0.0
                )
                for name, profile in self.operations.items()
            },
        )


# The calibrated paper profile.
#
# Sequential per-call times (what the central plans see):
#   GetAllStates    ~2.3 s   (one call)
#   GetPlacesWithin ~1.5 s   (50 calls   -> ~75 s)
#   GetPlaceList    ~0.65 s  (260 calls  -> ~168 s)  => Query1 central ~245 s
#   GetInfoByState  ~40 s    (50 calls   -> ~2000 s; USZip returns every
#                             zip code of a state in one giant string)
#   GetPlacesInside ~0.08 s  (4950 calls -> ~405 s)  => Query2 central ~2410 s
#
# Contention model: every service is processor-sharing (many worker
# slots) but *degrades* linearly + quadratically with concurrent load
# (``overload_penalty``/``overload_quadratic`` above ``degrade_above``).
# The quadratic term is what produces the paper's interior optimum in the
# fanout grids: Query1's best tree lands at {5,4} (paper: {5,4}, 56.4 s)
# and Query2's at {4,3} (paper: {4,3}, 1243.9 s).
_PAPER_COSTS: dict[str, ServiceCosts] = {
    "GeoPlaces": ServiceCosts(
        capacity=40,
        operations={
            "GetAllStates": EndpointProfile(
                rtt=0.6,
                setup=0.05,
                service_time=1.2,
                per_row=0.01,
                jitter=0.05,
                fanout_hint=50.0,
            ),
            "GetPlacesWithin": EndpointProfile(
                rtt=0.45,
                setup=0.05,
                service_time=1.0,
                jitter=0.05,
                overload_penalty=0.6,
                overload_quadratic=0.08,
                degrade_above=1,
                fanout_hint=5.2,
            ),
        },
    ),
    "TerraService": ServiceCosts(
        capacity=40,
        operations={
            "GetPlaceList": EndpointProfile(
                rtt=0.225,
                setup=0.02,
                service_time=0.40,
                jitter=0.05,
                overload_penalty=0.2,
                overload_quadratic=0.018,
                degrade_above=1,
                fanout_hint=3.0,
            ),
        },
    ),
    "USZip": ServiceCosts(
        capacity=40,
        operations={
            "GetInfoByState": EndpointProfile(
                rtt=1.5,
                setup=0.1,
                service_time=38.4,
                jitter=0.05,
                overload_penalty=0.24,
                overload_quadratic=0.068,
                degrade_above=1,
                fanout_hint=99.0,
            ),
        },
    ),
    "Zipcodes": ServiceCosts(
        capacity=40,
        operations={
            "GetPlacesInside": EndpointProfile(
                rtt=0.05,
                setup=0.01,
                service_time=0.0228,
                jitter=0.05,
                overload_penalty=1.6,
                overload_quadratic=0.2,
                degrade_above=1,
                fanout_hint=2.0,
            ),
        },
    ),
}

_UNLIMITED = 1_000_000


def profile_by_name(name: str) -> dict[str, ServiceCosts]:
    """Return the per-service cost map for a named profile."""
    if name == "paper":
        return dict(_PAPER_COSTS)
    if name == "fast":
        return {svc: costs.scaled(0.01) for svc, costs in _PAPER_COSTS.items()}
    if name == "uncontended":
        return {
            svc: costs.without_contention() for svc, costs in _PAPER_COSTS.items()
        }
    raise UnknownServiceError(
        f"unknown cost profile {name!r}; known: paper, fast, uncontended"
    )


class ServiceRegistry:
    """The static world a query runs against: data, providers, costs.

    ``extra_providers`` lets applications plug additional simulated
    services in beside the standard four; each entry is either a provider
    instance or a factory called with the registry's geo database.  A
    provider exposes ``uri``, ``wsdl_text()`` and ``invoke()`` and needs a
    matching entry in ``costs`` keyed by its WSDL service name.
    """

    def __init__(
        self,
        geodata: GeoDatabase,
        costs: dict[str, ServiceCosts],
        extra_providers: tuple = (),
    ) -> None:
        self.geodata = geodata
        self.costs = costs
        self.providers = [
            provider_class(geodata)
            for provider_class in (
                GeoPlacesProvider,
                TerraServiceProvider,
                USZipProvider,
                ZipcodesProvider,
            )
        ]
        self.providers.extend(
            extra(geodata) if callable(extra) else extra
            for extra in extra_providers
        )
        self.documents: dict[str, WsdlDocument] = {
            provider.uri: parse_wsdl(provider.wsdl_text(), provider.uri)
            for provider in self.providers
        }

    def wsdl_uris(self) -> list[str]:
        return [provider.uri for provider in self.providers]

    def document(self, uri: str) -> WsdlDocument:
        try:
            return self.documents[uri]
        except KeyError:
            raise UnknownServiceError(f"no WSDL published at {uri!r}") from None

    def costs_for(self, service_name: str) -> ServiceCosts:
        try:
            return self.costs[service_name]
        except KeyError:
            raise UnknownServiceError(
                f"no cost description for service {service_name!r}"
            ) from None

    def bind(
        self, kernel: Kernel, *, seed: int = 2009, fault_rate: float = 0.0
    ) -> ServiceBroker:
        """Create a broker for one kernel run with every endpoint registered."""
        broker = ServiceBroker(kernel, seed=seed, fault_rate=fault_rate)
        for provider in self.providers:
            document = self.documents[provider.uri]
            costs = self.costs_for(document.service_name)
            broker.register(
                document,
                provider,
                capacity=costs.capacity,
                profiles=costs.operations,
            )
        return broker


def build_registry(
    profile: str = "paper",
    *,
    seed: int = 2009,
    geo_config: GeoConfig | None = None,
    capacity_overrides: dict[str, int] | None = None,
    extra_providers: tuple = (),
    extra_costs: dict[str, ServiceCosts] | None = None,
) -> ServiceRegistry:
    """Build the standard four-service world.

    ``capacity_overrides`` maps service names to replacement capacities —
    used by the contention ablation bench.  ``extra_providers`` /
    ``extra_costs`` add further simulated services beside the standard
    four (see ``examples/custom_service.py``).
    """
    costs = profile_by_name(profile)
    if capacity_overrides:
        for service, capacity in capacity_overrides.items():
            if service not in costs:
                raise UnknownServiceError(
                    f"capacity override for unknown service {service!r}"
                )
            costs[service] = costs[service].with_capacity(capacity)
    if extra_costs:
        costs.update(extra_costs)
    geodata = GeoDatabase(geo_config or GeoConfig(seed=seed))
    return ServiceRegistry(geodata, costs, extra_providers=extra_providers)
