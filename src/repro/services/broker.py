"""The service broker: the simulated network and server farm.

Every web-service call in the system goes through :meth:`ServiceBroker.call`:

1. the caller pays the message set-up cost and half the round trip,
2. the request queues for one of the service's ``capacity`` server slots
   (FIFO — this is where contention appears under high fanout),
3. the server holds the slot for the profile's service time (plus per-row
   time and seeded jitter) while computing the real result through the
   provider and round-tripping it through XML,
4. the response pays the other half of the round trip.

The broker also keeps per-operation statistics (call counts, queue waits,
busy time) that benchmarks and tests assert on — e.g. "Query2 makes more
than 5000 calls".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.fdb.values import Sequence
from repro.runtime.base import Kernel, Semaphore
from repro.services import soap
from repro.services.latency import EndpointProfile
from repro.services.wsdl import WsdlDocument
from repro.util.errors import ServiceFault, UnknownServiceError
from repro.util.rng import derive_rng
from repro.util.stats import RunningStat


@dataclass
class CallStats:
    """Aggregate statistics for one operation."""

    calls: int = 0
    rows: int = 0
    bytes_transferred: int = 0
    faults: int = 0  # injected transient ServiceFaults raised by the server
    timeouts: int = 0  # calls that lost the race against profile.timeout
    queue_wait: RunningStat = field(default_factory=RunningStat)
    server_time: RunningStat = field(default_factory=RunningStat)
    total_time: RunningStat = field(default_factory=RunningStat)


class CallRecorder:
    """Per-query view of broker statistics.

    The broker's own ``_stats`` dict aggregates every call it has ever
    served, which is the right scope for a broker bound to a single
    query run but corrupts results once several queries share one broker
    (the resident :class:`~repro.engine.QueryEngine`).  A recorder is a
    second sink with the same read surface (``stats`` / ``total_calls``
    / ``all_stats``): the broker mirrors each statistics write into the
    recorder of the query that issued the call, so concurrent queries
    see only their own traffic.
    """

    def __init__(self) -> None:
        self._stats: dict[str, CallStats] = {}

    def stats(self, operation: str) -> CallStats:
        return self._stats.setdefault(operation, CallStats())

    def total_calls(self) -> int:
        return sum(stat.calls for stat in self._stats.values())

    def all_stats(self) -> dict[str, CallStats]:
        return dict(self._stats)


@dataclass
class BatchRequest:
    """One sub-call of a coalesced :meth:`ServiceBroker.call_many`.

    Each entry keeps its own recorder and observability span so a
    multi-query engine can coalesce the *transport* while keeping every
    query's statistics and traces disjoint.  ``done``/``value``/``error``
    are the demultiplexing rendezvous filled in by the broker; ``done``
    may be ``None`` when the caller gathers the batch synchronously.
    """

    arguments: list[Any]
    recorder: CallRecorder | None = None
    obs: Any = None
    obs_span: int = -1
    done: Any = None  # kernel Event, set once value/error is filled
    value: Any = None
    error: BaseException | None = None
    coalesced: bool = False


class _Endpoint:
    """One registered service host: provider + capacity + profiles."""

    def __init__(
        self,
        document: WsdlDocument,
        provider: Any,
        capacity: int,
        profiles: dict[str, EndpointProfile],
    ) -> None:
        if capacity < 1:
            raise UnknownServiceError(
                f"service {document.service_name!r} capacity must be >= 1"
            )
        self.document = document
        self.provider = provider
        self.capacity = capacity
        self.profiles = profiles
        self.slots: Semaphore | None = None  # bound to a kernel per run
        self.slots_generation = -1  # kernel generation the slots belong to
        self.concurrent = 0  # requests currently queued or in service

    def profile_for(self, operation: str) -> EndpointProfile:
        try:
            return self.profiles[operation]
        except KeyError:
            raise UnknownServiceError(
                f"no cost profile for operation {operation!r} of service "
                f"{self.document.service_name!r}"
            ) from None


class ServiceBroker:
    """Routes ``cwo`` calls to simulated endpoints under a kernel clock.

    A broker instance is bound to one kernel run.  ``fault_rate`` injects
    :class:`ServiceFault` on a seeded fraction of calls (0 by default);
    failure-injection tests use it to exercise operator error paths.
    """

    def __init__(
        self, kernel: Kernel, *, seed: int = 2009, fault_rate: float = 0.0
    ) -> None:
        if not 0.0 <= fault_rate < 1.0:
            raise ValueError("fault_rate must be in [0, 1)")
        self.kernel = kernel
        self.fault_rate = fault_rate
        self._endpoints: dict[str, _Endpoint] = {}
        self._stats: dict[str, CallStats] = {}
        self._rng = derive_rng(seed, "broker")

    # -- registration -----------------------------------------------------------

    def register(
        self,
        document: WsdlDocument,
        provider: Any,
        *,
        capacity: int,
        profiles: dict[str, EndpointProfile],
    ) -> None:
        """Register a provider under its WSDL document URI."""
        missing = set(document.operations) - set(profiles)
        if missing:
            raise UnknownServiceError(
                f"service {document.service_name!r} lacks profiles for: "
                f"{sorted(missing)}"
            )
        self._endpoints[document.uri] = _Endpoint(
            document, provider, capacity, profiles
        )

    def endpoint_document(self, uri: str) -> WsdlDocument:
        return self._endpoint(uri).document

    def documents(self) -> list[WsdlDocument]:
        return [endpoint.document for endpoint in self._endpoints.values()]

    def _endpoint(self, uri: str) -> _Endpoint:
        try:
            return self._endpoints[uri]
        except KeyError:
            known = ", ".join(sorted(self._endpoints))
            raise UnknownServiceError(
                f"no service registered at {uri!r}; registered: {known or '<none>'}"
            ) from None

    # -- statistics --------------------------------------------------------------

    def stats(self, operation: str) -> CallStats:
        return self._stats.setdefault(operation, CallStats())

    def total_calls(self) -> int:
        return sum(stat.calls for stat in self._stats.values())

    def all_stats(self) -> dict[str, CallStats]:
        return dict(self._stats)

    def contention(self) -> dict[str, dict[str, float]]:
        """Measured queue pressure per called operation.

        For every operation that has served at least one call, report the
        endpoint's ``capacity`` alongside the mean queue wait and mean
        server time — the ratio of the two is how saturated the endpoint's
        slot queue runs.  The admission controller's AFF fanout cap
        (:meth:`repro.engine.admission.AdmissionController.fanout_cap`)
        derives its ceiling from this.
        """
        report: dict[str, dict[str, float]] = {}
        for endpoint in self._endpoints.values():
            for operation in endpoint.document.operations:
                stats = self._stats.get(operation)
                if stats is None or not stats.calls:
                    continue
                report[operation] = {
                    "capacity": endpoint.capacity,
                    "queue_wait_mean": stats.queue_wait.mean,
                    "server_time_mean": stats.server_time.mean,
                }
        return report

    # -- the call path -------------------------------------------------------------

    def _sinks(
        self, operation: str, recorder: CallRecorder | None
    ) -> list[CallStats]:
        """Statistics sinks for one call: broker-global plus per-query."""
        sinks = [self.stats(operation)]
        if recorder is not None:
            sinks.append(recorder.stats(operation))
        return sinks

    async def call(
        self,
        uri: str,
        service: str,
        operation: str,
        arguments: list[Any],
        *,
        recorder: CallRecorder | None = None,
        obs=None,
        obs_span: int = -1,
    ) -> Sequence:
        """Invoke a web-service operation; returns the decoded value model.

        This is the transport behind the ``cwo`` built-in of the paper's
        Fig 2 (line 14).  If the operation's profile declares a timeout,
        the whole call races a deadline and raises a retriable
        :class:`ServiceFault` when it loses.  When ``recorder`` is given,
        every statistics write is mirrored into it so a multi-query
        engine can attribute the call to the query that made it.  When an
        ``obs`` recorder is given, queue-wait and server-busy sub-spans are
        recorded under ``obs_span`` (the caller's web-service span).
        """
        endpoint = self._endpoint(uri)
        document = endpoint.document
        if document.service_name != service:
            raise UnknownServiceError(
                f"URI {uri!r} serves {document.service_name!r}, not {service!r}"
            )
        wsdl_operation = document.operation(operation)
        profile = endpoint.profile_for(operation)
        if profile.timeout is None:
            return await self._perform(
                endpoint, wsdl_operation, profile, arguments, recorder,
                obs=obs, obs_span=obs_span,
            )
        try:
            return await self.kernel.wait_for(
                self._perform(
                    endpoint, wsdl_operation, profile, arguments, recorder,
                    obs=obs, obs_span=obs_span,
                ),
                profile.timeout,
            )
        except TimeoutError:
            for sink in self._sinks(operation, recorder):
                sink.timeouts += 1
            raise ServiceFault(
                f"{service}.{operation} timed out after "
                f"{profile.timeout} model seconds",
                retriable=True,
            ) from None

    async def _perform(
        self,
        endpoint: _Endpoint,
        wsdl_operation,
        profile,
        arguments: list[Any],
        recorder: CallRecorder | None = None,
        *,
        obs=None,
        obs_span: int = -1,
    ) -> Sequence:
        operation = wsdl_operation.name
        sinks = self._sinks(operation, recorder)
        kernel = self.kernel
        started = kernel.now()

        # Request: marshalling + set-up + half the round trip.
        request_text = soap.encode_request(wsdl_operation, arguments)
        await kernel.sleep(profile.setup + profile.rtt / 2.0)

        payload, rows = await self._service_round(
            endpoint, wsdl_operation, profile, request_text, sinks,
            obs=obs, obs_span=obs_span,
        )

        response_text = soap.encode_response(wsdl_operation, payload)
        await kernel.sleep(profile.rtt / 2.0)

        total_time = kernel.now() - started
        for sink in sinks:
            sink.calls += 1
            sink.rows += rows
            sink.bytes_transferred += len(request_text) + len(response_text)
            sink.total_time.add(total_time)
        return soap.decode_response(wsdl_operation, response_text)

    async def _service_round(
        self,
        endpoint: _Endpoint,
        wsdl_operation,
        profile,
        request_text: str,
        sinks: list[CallStats],
        *,
        obs=None,
        obs_span: int = -1,
    ) -> tuple[Any, int]:
        """Queue for a server slot and hold it for the service time.

        The slot-bounded middle of every call — shared by the per-call
        path (:meth:`_perform`) and the coalesced path
        (:meth:`call_many`), which pays the transport once around many
        of these.  Returns ``(payload, rows)``.
        """
        operation = wsdl_operation.name
        service = endpoint.document.service_name
        kernel = self.kernel

        # Queue for a server slot (lazily bound to this kernel — and to
        # its current generation: a shutdown kills whatever run the old
        # semaphore belonged to, so a broker reused across shutdowns must
        # not queue new calls on the dead run's primitive).
        if (
            endpoint.slots is None
            or endpoint.slots_generation != kernel.generation
        ):
            endpoint.slots = kernel.semaphore(endpoint.capacity)
            endpoint.slots_generation = kernel.generation
            endpoint.concurrent = 0
        queue_entered = kernel.now()
        endpoint.concurrent += 1
        acquired = False
        obs_process = f"ws:{service}" if obs is not None else ""
        queue_span = server_span = -1
        if obs is not None:
            queue_span = obs.start(
                f"queue:{operation}",
                category="queue",
                parent=obs_span,
                process=obs_process,
                at=queue_entered,
                capacity=endpoint.capacity,
            )
        try:
            await endpoint.slots.acquire()
            acquired = True
            queue_wait = kernel.now() - queue_entered
            if obs is not None:
                obs.finish(queue_span, at=kernel.now(), wait=queue_wait)
                server_span = obs.start(
                    f"serve:{operation}",
                    category="server",
                    parent=obs_span,
                    process=obs_process,
                    at=kernel.now(),
                )
            for sink in sinks:
                sink.queue_wait.add(queue_wait)
            if self.fault_rate and self._rng.random() < self.fault_rate:
                await kernel.sleep(profile.service_time)
                for sink in sinks:
                    sink.faults += 1
                raise ServiceFault(
                    f"{service}.{operation} failed transiently", retriable=True
                )
            decoded_arguments = soap.decode_request(wsdl_operation, request_text)
            payload = endpoint.provider.invoke(operation, decoded_arguments)
            rows = soap.count_rows(wsdl_operation.output_element, payload)
            # Load-dependent degradation: every concurrent client beyond
            # the degradation knee slows processing down.
            knee = (
                profile.degrade_above
                if profile.degrade_above is not None
                else endpoint.capacity
            )
            overload = endpoint.concurrent - knee
            server_time = profile.server_time(
                rows, self._rng.uniform(-1.0, 1.0), overload
            )
            await kernel.sleep(server_time)
            for sink in sinks:
                sink.server_time.add(server_time)
        finally:
            endpoint.concurrent -= 1
            if acquired:
                endpoint.slots.release()
            if obs is not None:
                # Close whatever is still open: a timeout can cancel the
                # call mid-queue or mid-service.
                obs.finish(queue_span, at=kernel.now())
                obs.finish(server_span, at=kernel.now())
        return payload, rows

    async def call_many(
        self,
        uri: str,
        service: str,
        operation: str,
        requests: list[BatchRequest],
    ) -> list[BatchRequest]:
        """Invoke one operation for many argument lists in one transport.

        The coalesced form of :meth:`call` used by cross-query batching:
        the batch pays ``setup + rtt`` *once* while every sub-call still
        queues for its own server slot, pays its own server time, counts
        as its own call in the broker's (and its query's) statistics and
        fails independently — a fault or timeout lands in that entry's
        ``error`` without disturbing its batch-mates.  Entries are filled
        in place (``value``/``error``/``done``) and also returned.
        """
        endpoint = self._endpoint(uri)
        document = endpoint.document
        if document.service_name != service:
            raise UnknownServiceError(
                f"URI {uri!r} serves {document.service_name!r}, not {service!r}"
            )
        wsdl_operation = document.operation(operation)
        profile = endpoint.profile_for(operation)
        kernel = self.kernel
        started = kernel.now()

        request_texts = [
            soap.encode_request(wsdl_operation, request.arguments)
            for request in requests
        ]
        await kernel.sleep(profile.setup + profile.rtt / 2.0)

        async def serve(request: BatchRequest, request_text: str):
            sinks = self._sinks(operation, request.recorder)
            round_trip = self._service_round(
                endpoint, wsdl_operation, profile, request_text, sinks,
                obs=request.obs, obs_span=request.obs_span,
            )
            try:
                if profile.timeout is None:
                    return await round_trip
                return await kernel.wait_for(round_trip, profile.timeout)
            except TimeoutError:
                for sink in sinks:
                    sink.timeouts += 1
                raise ServiceFault(
                    f"{service}.{operation} timed out after "
                    f"{profile.timeout} model seconds",
                    retriable=True,
                ) from None

        async def guarded(request: BatchRequest, request_text: str):
            try:
                return await serve(request, request_text), None
            except BaseException as error:  # noqa: BLE001 - demuxed per entry
                return None, error

        outcomes = await kernel.gather(
            *[
                guarded(request, text)
                for request, text in zip(requests, request_texts)
            ]
        )

        await kernel.sleep(profile.rtt / 2.0)
        total_time = kernel.now() - started
        for request, request_text, (served, error) in zip(
            requests, request_texts, outcomes
        ):
            if error is not None:
                request.error = error
                continue
            payload, rows = served
            response_text = soap.encode_response(wsdl_operation, payload)
            for sink in self._sinks(operation, request.recorder):
                sink.calls += 1
                sink.rows += rows
                sink.bytes_transferred += len(request_text) + len(response_text)
                sink.total_time.add(total_time)
            request.value = soap.decode_response(wsdl_operation, response_text)
        return requests
