"""Simulated web-service substrate.

The paper queries four public 2009 services — codeBump GeoPlaces and
Zipcodes, Microsoft TerraService and USZip — which no longer exist.  This
subpackage rebuilds them end to end:

* :mod:`repro.services.geodata` — a seeded synthetic USA (states, places,
  zip codes) shaped to the paper's cardinalities,
* :mod:`repro.services.wsdl` / :mod:`repro.services.soap` — WSDL documents
  (authored as real XML, parsed with a real parser) and SOAP-style result
  encoding/decoding through actual XML text,
* :mod:`repro.services.providers` — the four service implementations,
* :mod:`repro.services.broker` — the latency/contention model: per-service
  k-slot FIFO server capacity, network round-trip time, per-call set-up
  cost and seeded jitter.  This is what creates the paper's "optimal number
  of parallel calls" phenomenon,
* :mod:`repro.services.registry` — wiring plus named cost profiles,
  including the calibrated ``paper`` profile.
"""

from repro.services.broker import CallStats, ServiceBroker
from repro.services.geodata import GeoConfig, GeoDatabase, Place
from repro.services.latency import EndpointProfile
from repro.services.registry import ServiceRegistry, build_registry, profile_by_name
from repro.services.wsdl import WsdlDocument, parse_wsdl

__all__ = [
    "CallStats",
    "ServiceBroker",
    "GeoConfig",
    "GeoDatabase",
    "Place",
    "EndpointProfile",
    "ServiceRegistry",
    "build_registry",
    "profile_by_name",
    "WsdlDocument",
    "parse_wsdl",
]
