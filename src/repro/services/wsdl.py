"""WSDL document model and parser.

WSMED "enables general query capabilities over data accessible through any
data providing web service by reading the WSDL meta-data description".  We
keep that property: the simulated providers publish genuine WSDL XML
(document/literal style), and everything downstream — catalog metadata, OWF
generation, result decoding — is derived from parsing these documents, not
hard-wired to the four known services.

The supported WSDL subset: ``definitions > types > schema`` with element
declarations using inline ``complexType/sequence``, ``portType`` operations
referencing request/response elements, and a ``service/port`` pair.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from repro.fdb.types import AtomicType, BOOLEAN, CHARSTRING, INTEGER, REAL
from repro.util.errors import WsdlError

# XSD atomic type -> database atomic type.
_XSD_ATOMS: dict[str, AtomicType] = {
    "string": CHARSTRING,
    "double": REAL,
    "float": REAL,
    "decimal": REAL,
    "int": INTEGER,
    "integer": INTEGER,
    "long": INTEGER,
    "short": INTEGER,
    "boolean": BOOLEAN,
}


@dataclass(frozen=True)
class XsdElement:
    """A schema element: either atomic (``atom`` set) or complex."""

    name: str
    atom: AtomicType | None = None
    complex: "XsdComplex | None" = None
    repeated: bool = False

    @property
    def is_atomic(self) -> bool:
        return self.atom is not None

    def __post_init__(self) -> None:
        if (self.atom is None) == (self.complex is None):
            raise WsdlError(
                f"element {self.name!r} must be exactly one of atomic/complex"
            )


@dataclass(frozen=True)
class XsdComplex:
    """An inline complex type: an ordered sequence of child elements."""

    children: tuple[XsdElement, ...] = field(default=())

    def child(self, name: str) -> XsdElement:
        for element in self.children:
            if element.name == name:
                return element
        raise WsdlError(f"complex type has no child element {name!r}")


@dataclass(frozen=True)
class WsdlOperation:
    """One operation: request element (inputs) and response element."""

    name: str
    input_element: XsdElement
    output_element: XsdElement

    def input_parameters(self) -> list[tuple[str, AtomicType]]:
        """The operation's input parameters, in declared order.

        Inputs must be atomic — data providing services take scalar
        parameters (Sec. I) — so a complex input is a schema error.
        """
        if self.input_element.complex is None:
            raise WsdlError(
                f"operation {self.name!r} request element is not complex"
            )
        parameters = []
        for child in self.input_element.complex.children:
            if not child.is_atomic:
                raise WsdlError(
                    f"operation {self.name!r} input {child.name!r} is not atomic"
                )
            parameters.append((child.name, child.atom))
        return parameters


@dataclass(frozen=True)
class WsdlDocument:
    """A parsed WSDL document."""

    uri: str
    name: str
    target_namespace: str
    service_name: str
    port_name: str
    operations: dict[str, WsdlOperation]

    def operation(self, name: str) -> WsdlOperation:
        try:
            return self.operations[name]
        except KeyError:
            known = ", ".join(sorted(self.operations))
            raise WsdlError(
                f"service {self.service_name!r} has no operation {name!r}; "
                f"operations: {known}"
            ) from None


def _local(tag: str) -> str:
    """Strip any XML namespace from a tag."""
    return tag.rsplit("}", 1)[-1]


def _children(node: ET.Element, name: str) -> list[ET.Element]:
    return [child for child in node if _local(child.tag) == name]


def _only_child(node: ET.Element, name: str, context: str) -> ET.Element:
    found = _children(node, name)
    if len(found) != 1:
        raise WsdlError(
            f"{context}: expected exactly one <{name}>, found {len(found)}"
        )
    return found[0]


def _parse_element(node: ET.Element) -> XsdElement:
    name = node.get("name")
    if not name:
        raise WsdlError("schema <element> without a name attribute")
    repeated = node.get("maxOccurs", "1") == "unbounded"
    type_name = node.get("type")
    if type_name is not None:
        atom_key = type_name.rsplit(":", 1)[-1]
        atom = _XSD_ATOMS.get(atom_key)
        if atom is None:
            raise WsdlError(f"element {name!r} has unsupported type {type_name!r}")
        return XsdElement(name=name, atom=atom, repeated=repeated)
    complex_nodes = _children(node, "complexType")
    if len(complex_nodes) != 1:
        raise WsdlError(
            f"element {name!r} needs a type attribute or inline <complexType>"
        )
    sequence_nodes = _children(complex_nodes[0], "sequence")
    children: tuple[XsdElement, ...] = ()
    if sequence_nodes:
        children = tuple(
            _parse_element(child)
            for child in sequence_nodes[0]
            if _local(child.tag) == "element"
        )
    return XsdElement(name=name, complex=XsdComplex(children), repeated=repeated)


_ATOM_TO_XSD = {
    "Charstring": "string",
    "Real": "double",
    "Integer": "int",
    "Boolean": "boolean",
}


def _render_element(element: XsdElement, indent: str) -> list[str]:
    occurs = ' maxOccurs="unbounded"' if element.repeated else ""
    if element.is_atomic:
        xsd = _ATOM_TO_XSD[element.atom.name]
        return [f'{indent}<element name="{element.name}" type="xsd:{xsd}"{occurs}/>']
    lines = [f'{indent}<element name="{element.name}"{occurs}>']
    lines.append(f"{indent}  <complexType><sequence>")
    for child in element.complex.children:
        lines.extend(_render_element(child, indent + "    "))
    lines.append(f"{indent}  </sequence></complexType>")
    lines.append(f"{indent}</element>")
    return lines


def render_wsdl(document: WsdlDocument) -> str:
    """Serialize a document model back to WSDL XML.

    ``parse_wsdl(render_wsdl(doc), doc.uri)`` reconstructs an equal model,
    so programmatically-built services can publish real WSDL text the same
    way the built-in providers do.
    """
    lines = [
        f'<definitions name="{document.name}" '
        f'targetNamespace="{document.target_namespace}">',
        "  <types>",
        "    <schema>",
    ]
    seen: set[str] = set()
    for operation in document.operations.values():
        for element in (operation.input_element, operation.output_element):
            if element.name not in seen:
                seen.add(element.name)
                lines.extend(_render_element(element, "      "))
    lines.append("    </schema>")
    lines.append("  </types>")
    lines.append(f'  <portType name="{document.port_name}">')
    for operation in document.operations.values():
        lines.append(f'    <operation name="{operation.name}">')
        lines.append(f'      <input element="{operation.input_element.name}"/>')
        lines.append(f'      <output element="{operation.output_element.name}"/>')
        lines.append("    </operation>")
    lines.append("  </portType>")
    lines.append(f'  <service name="{document.service_name}">')
    lines.append(f'    <port name="{document.port_name}"/>')
    lines.append("  </service>")
    lines.append("</definitions>")
    return "\n".join(lines)


def parse_wsdl(text: str, uri: str) -> WsdlDocument:
    """Parse WSDL XML ``text`` fetched from ``uri`` into a document model."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as error:
        raise WsdlError(f"WSDL at {uri!r} is not well-formed XML: {error}") from error
    if _local(root.tag) != "definitions":
        raise WsdlError(f"WSDL at {uri!r} does not start with <definitions>")

    types_node = _only_child(root, "types", uri)
    schema_node = _only_child(types_node, "schema", uri)
    elements: dict[str, XsdElement] = {}
    for node in _children(schema_node, "element"):
        element = _parse_element(node)
        if element.name in elements:
            raise WsdlError(f"duplicate schema element {element.name!r}")
        elements[element.name] = element

    port_type = _only_child(root, "portType", uri)
    operations: dict[str, WsdlOperation] = {}
    for op_node in _children(port_type, "operation"):
        op_name = op_node.get("name")
        if not op_name:
            raise WsdlError("portType <operation> without a name")
        input_ref = _only_child(op_node, "input", op_name).get("element")
        output_ref = _only_child(op_node, "output", op_name).get("element")
        for ref in (input_ref, output_ref):
            if ref not in elements:
                raise WsdlError(
                    f"operation {op_name!r} references unknown element {ref!r}"
                )
        operations[op_name] = WsdlOperation(
            name=op_name,
            input_element=elements[input_ref],
            output_element=elements[output_ref],
        )

    service_node = _only_child(root, "service", uri)
    service_name = service_node.get("name")
    if not service_name:
        raise WsdlError("service without a name")
    port_node = _only_child(service_node, "port", service_name)
    return WsdlDocument(
        uri=uri,
        name=root.get("name", service_name),
        target_namespace=root.get("targetNamespace", ""),
        service_name=service_name,
        port_name=port_node.get("name", service_name),
        operations=operations,
    )
