"""Synthetic geographic database backing the simulated web services.

The dataset is generated deterministically from a seed and is *shaped* to
reproduce the paper's workload cardinalities:

* 50 US states (``GetAllStates`` returns one row per state);
* 26 states contain a city named ``Atlanta`` with exactly 9 neighbouring
  cities within 15 km, so Query1 issues 26 x 10 = 260 ``GetPlaceList``
  calls (paper: "more than 300 web service calls" counting all levels) and
  returns 360 rows (some places also exist as a ``Locale`` entity);
* every state has exactly 99 zip codes, so Query2 issues
  1 + 50 + 4950 calls (paper: "more than 5000");
* the place ``USAF Academy`` lives in Colorado zip ``80840``, the answer
  the paper's Query2 returns.

All counts are configurable through :class:`GeoConfig`; the defaults encode
the paper's scenario and are pinned by tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.util.rng import derive_rng

# (name, abbreviation) for the 50 US states.
US_STATES: list[tuple[str, str]] = [
    ("Alabama", "AL"), ("Alaska", "AK"), ("Arizona", "AZ"), ("Arkansas", "AR"),
    ("California", "CA"), ("Colorado", "CO"), ("Connecticut", "CT"),
    ("Delaware", "DE"), ("Florida", "FL"), ("Georgia", "GA"), ("Hawaii", "HI"),
    ("Idaho", "ID"), ("Illinois", "IL"), ("Indiana", "IN"), ("Iowa", "IA"),
    ("Kansas", "KS"), ("Kentucky", "KY"), ("Louisiana", "LA"), ("Maine", "ME"),
    ("Maryland", "MD"), ("Massachusetts", "MA"), ("Michigan", "MI"),
    ("Minnesota", "MN"), ("Mississippi", "MS"), ("Missouri", "MO"),
    ("Montana", "MT"), ("Nebraska", "NE"), ("Nevada", "NV"),
    ("New Hampshire", "NH"), ("New Jersey", "NJ"), ("New Mexico", "NM"),
    ("New York", "NY"), ("North Carolina", "NC"), ("North Dakota", "ND"),
    ("Ohio", "OH"), ("Oklahoma", "OK"), ("Oregon", "OR"),
    ("Pennsylvania", "PA"), ("Rhode Island", "RI"), ("South Carolina", "SC"),
    ("South Dakota", "SD"), ("Tennessee", "TN"), ("Texas", "TX"),
    ("Utah", "UT"), ("Vermont", "VT"), ("Virginia", "VA"),
    ("Washington", "WA"), ("West Virginia", "WV"), ("Wisconsin", "WI"),
    ("Wyoming", "WY"),
]

_EARTH_RADIUS_KM = 6371.0

_TOWN_STEMS = [
    "Springfield", "Fairview", "Riverside", "Franklin", "Greenville",
    "Bristol", "Clinton", "Salem", "Georgetown", "Madison", "Arlington",
    "Ashland", "Dover", "Hudson", "Kingston", "Milton", "Newport",
    "Oxford", "Burlington", "Manchester", "Milford", "Auburn", "Clayton",
    "Dayton", "Lexington", "Monroe", "Oakland", "Troy", "Winchester",
    "Jackson",
]


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in kilometres between two lat/lon points."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2) ** 2
    return 2 * _EARTH_RADIUS_KM * math.asin(math.sqrt(a))


@dataclass(frozen=True)
class State:
    """One US state with a synthetic geographic centre."""

    name: str
    abbreviation: str
    lat: float
    lon: float


@dataclass(frozen=True)
class Place:
    """A named place: a City or a Locale entity."""

    name: str
    state: str  # state abbreviation
    place_type: str  # 'City' or 'Locale'
    lat: float
    lon: float
    population: int
    zip_code: str
    has_map: bool = True


@dataclass(frozen=True)
class GeoConfig:
    """Knobs shaping the synthetic dataset (defaults = paper scenario)."""

    seed: int = 2009
    atlanta_state_count: int = 26
    neighbors_per_atlanta: int = 9
    locale_twin_total: int = 100
    zipcodes_per_state: int = 99
    usaf_state: str = "CO"
    usaf_zip: str = "80840"
    usaf_place: str = "USAF Academy"


class GeoDatabase:
    """Deterministic synthetic USA plus the query helpers providers need."""

    def __init__(self, config: GeoConfig | None = None) -> None:
        self.config = config or GeoConfig()
        self._states: list[State] = []
        self._places: list[Place] = []
        self._zips_by_state: dict[str, list[str]] = {}
        self._places_by_zip: dict[str, list[Place]] = {}
        self._places_by_state: dict[str, list[Place]] = {}
        self.atlanta_states: list[str] = []
        self._build()

    # -- construction ---------------------------------------------------------

    def _build(self) -> None:
        config = self.config
        rng = derive_rng(config.seed, "geodata")
        for index, (name, abbreviation) in enumerate(US_STATES):
            lat = 30.0 + (index % 10) * 2.0 + rng.uniform(-0.5, 0.5)
            lon = -70.0 - (index // 10) * 10.0 + rng.uniform(-2.0, 2.0)
            self._states.append(State(name, abbreviation, lat, lon))

        self._allocate_zipcodes()
        self._populate_places(rng)
        self._place_atlantas(rng)
        self._place_usaf(rng)

        for place in self._places:
            self._places_by_zip.setdefault(place.zip_code, []).append(place)
            self._places_by_state.setdefault(place.state, []).append(place)

    def _allocate_zipcodes(self) -> None:
        per_state = self.config.zipcodes_per_state
        for index, state in enumerate(self._states):
            if state.abbreviation == self.config.usaf_state:
                start = 80800  # block containing the USAF Academy zip 80840
            else:
                start = 10000 + index * 200
            codes = [f"{start + offset:05d}" for offset in range(per_state)]
            self._zips_by_state[state.abbreviation] = codes

    def _populate_places(self, rng) -> None:
        """One ordinary City per zip code.

        Ordinary towns live on a ring 0.4-1.5 degrees (>= ~40 km) from the
        state centre.  Atlanta clusters sit within 12 km of the centre, so
        no ordinary town ever falls inside a cluster's 15 km radius — which
        keeps Query1's call count exactly at the configured value.
        """
        for state in self._states:
            for zip_index, zip_code in enumerate(self._zips_by_state[state.abbreviation]):
                stem = _TOWN_STEMS[zip_index % len(_TOWN_STEMS)]
                suffix = zip_index // len(_TOWN_STEMS)
                name = stem if suffix == 0 else f"{stem} {suffix + 1}"
                angle = rng.uniform(0.0, 2 * math.pi)
                ring = rng.uniform(0.4, 1.5)
                self._places.append(
                    Place(
                        name=name,
                        state=state.abbreviation,
                        place_type="City",
                        lat=state.lat + ring * math.sin(angle),
                        lon=state.lon + ring * math.cos(angle),
                        population=rng.randint(500, 80000),
                        zip_code=zip_code,
                    )
                )

    def _place_atlantas(self, rng) -> None:
        """Atlanta clusters: anchor city + 9 neighbours within 15 km each.

        ``locale_twin_total`` of the cluster members additionally exist as a
        ``Locale`` entity with the same name, which is what brings Query1's
        result from 260 rows up to the paper's 360.
        """
        config = self.config
        chosen = sorted(
            rng.sample(range(len(self._states)), config.atlanta_state_count)
        )
        self.atlanta_states = [self._states[i].abbreviation for i in chosen]
        twins_left = config.locale_twin_total
        for state_rank, state_index in enumerate(chosen):
            state = self._states[state_index]
            zip_codes = self._zips_by_state[state.abbreviation]
            anchor = Place(
                name="Atlanta",
                state=state.abbreviation,
                place_type="City",
                lat=state.lat,
                lon=state.lon,
                population=rng.randint(20000, 500000),
                zip_code=zip_codes[0],
            )
            cluster = [anchor]
            for neighbor_index in range(config.neighbors_per_atlanta):
                # Offsets well inside 15 km: < 0.09 degrees of latitude.
                angle = rng.uniform(0.0, 2 * math.pi)
                radius_km = rng.uniform(2.0, 12.0)
                dlat = (radius_km / 111.0) * math.sin(angle)
                dlon = (radius_km / 111.0) * math.cos(angle) / max(
                    0.2, math.cos(math.radians(anchor.lat))
                )
                cluster.append(
                    Place(
                        name=f"Atlanta Heights {neighbor_index + 1}",
                        state=state.abbreviation,
                        place_type="City",
                        lat=anchor.lat + dlat,
                        lon=anchor.lon + dlon,
                        population=rng.randint(1000, 50000),
                        zip_code=zip_codes[(neighbor_index + 1) % len(zip_codes)],
                    )
                )
            self._places.extend(cluster)
            # Deterministic locale twins: earlier states get one more so the
            # configured total is met exactly.
            remaining_states = len(chosen) - state_rank
            quota = -(-twins_left // remaining_states)  # ceil division
            for place in cluster[:quota]:
                if twins_left == 0:
                    break
                self._places.append(
                    Place(
                        name=place.name,
                        state=place.state,
                        place_type="Locale",
                        lat=place.lat,
                        lon=place.lon,
                        population=0,
                        zip_code=place.zip_code,
                        has_map=False,
                    )
                )
                twins_left -= 1

    def _place_usaf(self, rng) -> None:
        config = self.config
        state = next(
            s for s in self._states if s.abbreviation == config.usaf_state
        )
        # Fixed offset > 15 km from the state centre so the academy never
        # joins an Atlanta cluster even when Colorado has one.
        self._places.append(
            Place(
                name=config.usaf_place,
                state=config.usaf_state,
                place_type="City",
                lat=state.lat + 0.6,
                lon=state.lon + 0.6,
                population=6500,
                zip_code=config.usaf_zip,
            )
        )

    # -- query helpers used by the providers -----------------------------------

    def all_states(self) -> list[State]:
        return list(self._states)

    def state_named(self, name: str) -> State:
        for state in self._states:
            if state.name == name or state.abbreviation == name:
                return state
        raise KeyError(f"unknown state {name!r}")

    def places_in_state(self, state: str) -> list[Place]:
        return list(self._places_by_state.get(state, []))

    def places_within(
        self, place_prefix: str, state: str, distance_km: float, place_type: str
    ) -> list[tuple[Place, float]]:
        """Places of ``place_type`` within ``distance_km`` of any place in
        ``state`` whose name starts with ``place_prefix``.

        Returns (place, distance-to-nearest-anchor) pairs, nearest first,
        mirroring ``GetPlacesWithin``.
        """
        in_state = self._places_by_state.get(state, [])
        anchors = [
            p for p in in_state
            if p.name.startswith(place_prefix) and p.place_type == "City"
        ]
        results: dict[tuple[str, str], tuple[Place, float]] = {}
        for candidate in in_state:
            if candidate.place_type != place_type:
                continue
            for anchor in anchors:
                distance = haversine_km(
                    anchor.lat, anchor.lon, candidate.lat, candidate.lon
                )
                if distance <= distance_km:
                    key = (candidate.name, candidate.place_type)
                    best = results.get(key)
                    if best is None or distance < best[1]:
                        results[key] = (candidate, distance)
                    break
        return sorted(results.values(), key=lambda pair: (pair[1], pair[0].name))

    def place_list(
        self, specification: str, max_items: int, image_presence: bool
    ) -> list[Place]:
        """Places matching a ``'Name, ST'`` specification (``GetPlaceList``).

        A bare name without a state part matches across all states.  When
        ``image_presence`` is set, places without an associated map are
        still returned with ``has_map`` False — like TerraService, the flag
        requests the attribute rather than filtering (the paper's Query1
        passes 'true' and still sees 360 rows).
        """
        name, _, state_part = specification.partition(",")
        name = name.strip()
        state_part = state_part.strip()
        matches = [
            place
            for place in self._places
            if place.name == name and (not state_part or place.state == state_part)
        ]
        matches.sort(key=lambda place: (place.state, place.place_type))
        return matches[: max_items if max_items > 0 else len(matches)]

    def zipcodes_of(self, state_name: str) -> list[str]:
        state = self.state_named(state_name)
        return list(self._zips_by_state[state.abbreviation])

    def zip_origin(self, zip_code: str) -> tuple[float, float] | None:
        places = self._places_by_zip.get(zip_code)
        if not places:
            return None
        return places[0].lat, places[0].lon

    def places_inside(self, zip_code: str) -> list[tuple[Place, float]]:
        """Places located in a zip-code area plus their distance from the
        area origin (``GetPlacesInside``)."""
        places = self._places_by_zip.get(zip_code, [])
        origin = self.zip_origin(zip_code)
        if origin is None:
            return []
        return [
            (place, haversine_km(origin[0], origin[1], place.lat, place.lon))
            for place in places
        ]

    # -- dataset statistics (used by tests and DESIGN verification) ------------

    def total_places(self) -> int:
        return len(self._places)

    def total_zipcodes(self) -> int:
        return sum(len(codes) for codes in self._zips_by_state.values())

    def expected_query1_level2_calls(self, distance_km: float = 15.0) -> int:
        """How many GetPlaceList calls Query1 issues with this dataset."""
        return sum(
            len(self.places_within("Atlanta", state, distance_km, "City"))
            for state in self.atlanta_states
        )
