"""SOAP-style encoding and decoding of operation payloads.

Providers return plain Python data (dicts / lists / atoms).  The broker
encodes that into a response XML document guided by the operation's WSDL
output schema, and the client side (``cwo``) decodes the XML back into the
functional DBMS value model (:class:`Record` / :class:`Sequence`) — the
structures the paper's generated OWFs navigate in Fig 2.  Round-tripping
through real XML text keeps the substrate honest: a schema mismatch fails
the same way a real doc/literal endpoint would.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any

from repro.fdb.types import AtomicType, BOOLEAN, INTEGER, REAL
from repro.fdb.values import Record, Sequence
from repro.services.wsdl import WsdlOperation, XsdElement
from repro.util.errors import WsdlError


def _atom_to_text(atom: AtomicType, value: Any) -> str:
    if not atom.accepts(value):
        raise WsdlError(f"value {value!r} does not match schema type {atom}")
    if atom is BOOLEAN:
        return "true" if value else "false"
    return str(value)


def _text_to_atom(atom: AtomicType, text: str) -> Any:
    if atom is BOOLEAN:
        if text not in ("true", "false", "1", "0"):
            raise WsdlError(f"invalid boolean literal {text!r}")
        return text in ("true", "1")
    if atom is INTEGER:
        return int(text)
    if atom is REAL:
        return float(text)
    return text


def _build(schema: XsdElement, data: Any, parent: ET.Element) -> None:
    """Append one instance of ``schema`` holding ``data`` under ``parent``."""
    node = ET.SubElement(parent, schema.name)
    if schema.is_atomic:
        node.text = _atom_to_text(schema.atom, data)
        return
    if not isinstance(data, dict):
        raise WsdlError(
            f"element {schema.name!r} is complex; expected a dict payload, "
            f"got {type(data).__name__}"
        )
    unknown = set(data) - {child.name for child in schema.complex.children}
    if unknown:
        raise WsdlError(
            f"payload for {schema.name!r} has keys not in schema: {sorted(unknown)}"
        )
    for child in schema.complex.children:
        if child.repeated:
            instances = data.get(child.name, [])
            if not isinstance(instances, list):
                raise WsdlError(
                    f"repeated element {child.name!r} expects a list payload"
                )
            for instance in instances:
                _build(child, instance, node)
        else:
            if child.name not in data:
                raise WsdlError(
                    f"payload for {schema.name!r} is missing {child.name!r}"
                )
            _build(child, data[child.name], node)


def encode_response(operation: WsdlOperation, payload: Any) -> bytes:
    """Encode a provider payload as response XML per the output schema."""
    holder = ET.Element("soap-body")
    _build(operation.output_element, payload, holder)
    return ET.tostring(holder[0], encoding="utf-8")


def encode_request(operation: WsdlOperation, arguments: list[Any]) -> bytes:
    """Encode positional call arguments as a request document."""
    parameters = operation.input_parameters()
    if len(arguments) != len(parameters):
        raise WsdlError(
            f"operation {operation.name!r} takes {len(parameters)} arguments, "
            f"got {len(arguments)}"
        )
    payload = {name: value for (name, _), value in zip(parameters, arguments)}
    holder = ET.Element("soap-body")
    _build(operation.input_element, payload, holder)
    return ET.tostring(holder[0], encoding="utf-8")


def decode_request(operation: WsdlOperation, text: bytes) -> list[Any]:
    """Decode a request document back to positional arguments."""
    record = _element_to_value(ET.fromstring(text), operation.input_element)
    return [record[name] for name, _ in operation.input_parameters()]


def _element_to_value(node: ET.Element, schema: XsdElement) -> Any:
    if schema.is_atomic:
        return _text_to_atom(schema.atom, node.text or "")
    attrs: dict[str, Any] = {}
    instances: dict[str, list[ET.Element]] = {}
    for child_node in node:
        instances.setdefault(child_node.tag, []).append(child_node)
    for child in schema.complex.children:
        nodes = instances.get(child.name, [])
        if child.repeated:
            attrs[child.name] = Sequence(
                _element_to_value(n, child) for n in nodes
            )
        elif nodes:
            attrs[child.name] = _element_to_value(nodes[0], child)
        else:
            raise WsdlError(
                f"response element {node.tag!r} is missing child {child.name!r}"
            )
    return Record(attrs)


def decode_response(operation: WsdlOperation, text: bytes) -> Sequence:
    """Decode response XML into the value model.

    The result is a :class:`Sequence` holding the converted response
    record, matching the paper's Fig 2 where the output of ``cwo`` is a
    sequence the OWF iterates with the ``in`` operator.
    """
    root = ET.fromstring(text)
    if root.tag != operation.output_element.name:
        raise WsdlError(
            f"expected response element {operation.output_element.name!r}, "
            f"got {root.tag!r}"
        )
    return Sequence([_element_to_value(root, operation.output_element)])


def count_rows(schema: XsdElement, payload: Any) -> int:
    """Number of result rows in a payload: instances of the innermost
    repeated element (1 when the schema has no repeated part).

    The broker uses this for the per-row component of the service time.
    """
    if schema.is_atomic or schema.complex is None or not _has_repeated(schema):
        return 1
    total = 0
    for child in schema.complex.children:
        if child.repeated:
            instances = payload.get(child.name, []) if isinstance(payload, dict) else []
            total += sum(count_rows(child, instance) for instance in instances)
        elif not child.is_atomic and _has_repeated(child) and isinstance(payload, dict):
            total += count_rows(child, payload.get(child.name, {}))
    return total


def _has_repeated(schema: XsdElement) -> bool:
    if schema.is_atomic or schema.complex is None:
        return False
    return any(
        child.repeated or _has_repeated(child) for child in schema.complex.children
    )
