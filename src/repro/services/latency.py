"""Cost model for simulated web-service endpoints.

Each operation has an :class:`EndpointProfile`; each *service* (host) has a
server capacity.  Together with the broker's k-slot FIFO queueing this
reproduces the two facts the paper's design exploits:

* every call pays a fixed latency + set-up overhead, so sequential plans
  are slow (Sec. I), and
* a server saturates beyond some number of concurrent calls, so "normally
  there is an optimal number of parallel calls for a given web service
  operation" (Sec. I) — which is what makes the process-tree shape matter.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.errors import PlanError


@dataclass(frozen=True)
class EndpointProfile:
    """Per-operation timing parameters, in model seconds.

    ``rtt``          network round trip (request + response transit).
    ``setup``        per-call message set-up cost paid by the caller.
    ``service_time`` server processing time per call.
    ``per_row``      additional server time per result row.
    ``jitter``       fraction of uniform noise applied to the server time.
    ``overload_penalty`` / ``overload_quadratic``
        linear and quadratic fractional slowdown of the server time per
        concurrent request beyond the service's capacity.  Public services
        degrade under load — gently at first, then sharply (thrashing) —
        which is why "normally there is an optimal number of parallel
        calls for a given web service operation" (paper Sec. I): beyond
        the optimum, extra clients make every request slower.  The
        quadratic term is what creates an *interior* optimum in the fanout
        grid rather than a flat saturation plateau.
    """

    rtt: float = 0.2
    setup: float = 0.02
    service_time: float = 0.3
    per_row: float = 0.0
    jitter: float = 0.05
    overload_penalty: float = 0.0
    overload_quadratic: float = 0.0
    # Degradation sets in above this many concurrent requests; None means
    # "above the service's server capacity".  Lets a service with many
    # worker slots (processor sharing) still thrash under load.
    degrade_above: int | None = None
    # Client-side call timeout in model seconds (None = wait forever).  A
    # timed-out call raises a *retriable* ServiceFault after ``timeout``
    # seconds, so the retry policy can recover from overloaded servers.
    timeout: float | None = None
    # Expected rows per call, published for the cost-based optimizer's
    # cardinality propagation.  Purely advisory: never used by the
    # simulated server itself, so adding it cannot change any timing.
    fanout_hint: float | None = None

    def __post_init__(self) -> None:
        for name in (
            "rtt",
            "setup",
            "service_time",
            "per_row",
            "overload_penalty",
            "overload_quadratic",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")

    def server_time(self, rows: int, noise: float, overload: int = 0) -> float:
        """Server processing time for a call returning ``rows`` rows.

        ``noise`` is a uniform [-1, 1) draw from the endpoint's RNG
        stream; ``overload`` is the number of concurrent requests beyond
        the service's capacity when this call entered the server.
        """
        base = self.service_time + self.per_row * rows
        excess = max(0, overload)
        slowdown = (
            1.0
            + self.overload_penalty * excess
            + self.overload_quadratic * excess * excess
        )
        return base * slowdown * (1.0 + self.jitter * noise)

    def sequential_call_time(self, rows: int = 1) -> float:
        """Expected wall time of one uncontended call — used by the
        heuristic cost model and by calibration sanity checks."""
        return self.setup + self.rtt + self.service_time + self.per_row * rows

    def scaled(self, factor: float) -> "EndpointProfile":
        """A profile with all time constants multiplied by ``factor``."""
        if factor < 0:
            raise PlanError(
                f"endpoint profile scale factor must be non-negative, got {factor}"
            )
        return replace(
            self,
            rtt=self.rtt * factor,
            setup=self.setup * factor,
            service_time=self.service_time * factor,
            per_row=self.per_row * factor,
        )
