"""Network front end: SQL over HTTP against a resident query engine.

::

    python -m repro serve --port 8080 --kernel process --workers 4

    curl -s localhost:8080/sql -d '{"sql": "Select ...", "mode": "parallel"}'

See :mod:`repro.serve.server` for the protocol.
"""

from repro.serve.server import QueryServer

__all__ = ["QueryServer"]
