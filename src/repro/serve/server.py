"""A small stdlib-only HTTP server over a resident :class:`QueryEngine`.

Protocol (all bodies JSON, all responses either JSON or NDJSON):

``POST /sql``
    Request body::

        {"sql": "Select ...",        -- required
         "mode": "parallel",         -- central | parallel | adaptive
         "fanouts": [5, 4],
         "retries": 0,
         "on_error": "retry",
         "cache": true,              -- or {"max_entries": N, "ttl": T}
         "name": "Query",
         "trace": false,             -- per-request span tracing
         "optimize": "cost",         -- heuristic | cost (planner level)
         "tenant": "analytics",      -- fair-queue identity (adaptive admission)
         "deadline_ms": 60000}       -- model-ms deadline; unmeetable -> 429

    Under ``--admission adaptive`` a query shed by the deadline policy
    gets ``429 Too Many Requests`` with a ``Retry-After`` header (the
    controller's wait estimate, whole seconds).

    Response is ``application/x-ndjson`` streamed as chunked transfer
    encoding: one header line carrying the column names, one line per
    result row, and one trailer line with the execution statistics (and,
    for traced requests, the path of the exported Chrome trace file)::

        {"columns": ["placename", "state"]}
        ["Decatur", "GA"]
        ...
        {"rows": 360, "elapsed": 48.3, "total_calls": 311, ...}

``GET /stats``
    The engine's resident-state snapshot
    (:meth:`repro.engine.QueryEngine.stats`) as JSON.

``GET /healthz``
    Liveness probe.

The server's accept loop runs *inside* the engine's resident kernel
(``engine.kernel.run(server.run())``), so queries execute on the same
event loop that owns the warm pools — including the OS worker fleet when
the kernel is a :class:`~repro.runtime.multiprocess.ProcessKernel`
(``repro serve --kernel process``).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import math
import os
import re
from typing import Any, Optional

from repro.algebra.plan import AdaptationParams
from repro.cache import CacheConfig
from repro.engine import AdmissionRejected, EngineClosed
from repro.obs import TraceRecorder, write_chrome_trace
from repro.util.errors import ReproError
from repro.wsmed.options import QueryOptions

_MAX_BODY = 4 * 1024 * 1024
_SAFE_NAME = re.compile(r"[^A-Za-z0-9_.-]+")


def _chunk(data: bytes) -> bytes:
    return f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class QueryServer:
    """HTTP front end bound to one resident :class:`QueryEngine`.

    ``port=0`` binds an ephemeral port (``self.port`` holds the real one
    after :meth:`start`).  ``trace_dir`` is where per-request Chrome
    trace files land for ``"trace": true`` requests.  ``default_optimize``
    is the planner level used when a request doesn't set ``"optimize"``
    (``repro serve --optimize cost`` makes the cost-based optimizer the
    server default).
    """

    def __init__(
        self,
        engine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        trace_dir: str = "traces",
        default_optimize: str = "heuristic",
    ) -> None:
        if default_optimize not in ("heuristic", "cost"):
            raise ReproError(
                f'default_optimize must be "heuristic" or "cost", '
                f"got {default_optimize!r}"
            )
        self.engine = engine
        self.host = host
        self.port = port
        self.trace_dir = trace_dir
        self.default_optimize = default_optimize
        self.requests_served = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._trace_ids = itertools.count(1)
        # Live connection-handler tasks; run() drains them at shutdown so
        # no query dies mid-NDJSON-stream when the kernel goes down.
        self._handlers: set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (inside the kernel's event loop)."""
        if self._server is not None:
            return
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def run(self) -> None:
        """Serve until :meth:`stop` is called; the ``repro serve`` body.

        Shutdown closes the listener first (no new connections), then
        waits for in-flight handlers to finish their streams — the caller
        tears the engine down only after ``run`` returns, so a query that
        was mid-NDJSON-stream when stop() fired still ends with its
        trailer and terminating chunk instead of a severed body.
        """
        await self.start()
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            if self._handlers:
                await asyncio.gather(
                    *list(self._handlers), return_exceptions=True
                )
            self._server = None

    def stop(self) -> None:
        """Request shutdown; safe to call from any thread (or a signal)."""
        if self._loop is None or self._stop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._stop.set)
        except RuntimeError:
            pass  # loop already closed

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as error:
                await self._send_json(
                    writer, error.status, {"error": str(error)}
                )
                return
            self.requests_served += 1
            try:
                if method == "POST" and path == "/sql":
                    await self._serve_sql(writer, body)
                elif method == "GET" and path == "/stats":
                    await self._send_json(
                        writer, 200, self.engine.stats().as_dict()
                    )
                elif method == "GET" and path == "/healthz":
                    await self._send_json(
                        writer,
                        200,
                        {"status": "ok", "queries": self.engine.stats().queries},
                    )
                elif path in ("/sql", "/stats", "/healthz"):
                    raise _HttpError(405, f"method {method} not allowed on {path}")
                else:
                    raise _HttpError(404, f"no such endpoint: {path}")
            except _HttpError as error:
                await self._send_json(writer, error.status, {"error": str(error)})
            except AdmissionRejected as error:
                # Load shed: tell the client when a retry could make it.
                await self._send_json(
                    writer,
                    429,
                    {
                        "error": str(error),
                        "tenant": error.tenant,
                        "retry_after": error.retry_after,
                    },
                    headers={
                        "Retry-After": str(
                            max(1, math.ceil(error.retry_after))
                        )
                    },
                )
            except EngineClosed as error:
                await self._send_json(writer, 503, {"error": str(error)})
            except ReproError as error:
                await self._send_json(writer, 400, {"error": str(error)})
            except Exception as error:  # noqa: BLE001 - report, keep serving
                await self._send_json(
                    writer, 500, {"error": f"{type(error).__name__}: {error}"}
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        finally:
            if task is not None:
                self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise _HttpError(400, "malformed HTTP request") from None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                key, _, value = line.partition(":")
                headers[key.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise _HttpError(
                400, f"malformed Content-Length: {raw_length!r}"
            ) from None
        if length < 0:
            raise _HttpError(
                400, f"negative Content-Length: {raw_length!r}"
            )
        if length > _MAX_BODY:
            raise _HttpError(413, f"request body over {_MAX_BODY} bytes")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, body

    # -- endpoints ---------------------------------------------------------

    async def _serve_sql(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        if not body:
            raise _HttpError(400, "POST /sql requires a JSON request body")
        sql_text, trace, option_kwargs = self._parse_sql_request(body)
        recorder = TraceRecorder() if trace else None
        if recorder is not None:
            option_kwargs["obs"] = recorder
        if getattr(self.engine, "_closed", False):
            raise _HttpError(503, "engine is shut down")
        try:
            options = QueryOptions(**option_kwargs)
        except TypeError as error:
            raise _HttpError(400, f"bad query options: {error}")
        result = await self.engine.sql_async(sql_text, options=options)

        trace_file = None
        if recorder is not None and result.spans is not None:
            os.makedirs(self.trace_dir, exist_ok=True)
            stem = _SAFE_NAME.sub("-", option_kwargs.get("name", "query")) or "query"
            trace_file = os.path.join(
                self.trace_dir, f"{stem}-{next(self._trace_ids)}.trace.json"
            )
            write_chrome_trace(result.spans, trace_file)

        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        writer.write(_chunk(self._line({"columns": list(result.columns)})))
        await writer.drain()
        # Past this point the 200 header is on the wire: any failure —
        # including cancellation when the kernel shuts down mid-stream —
        # must still end the body with a well-formed error trailer and
        # the terminating chunk, never a severed stream.
        sent = 0
        error_trailer: str | None = None
        interrupted: BaseException | None = None
        try:
            for index, row in enumerate(result.rows):
                writer.write(_chunk(self._line(list(row))))
                sent = index + 1
                if index % 100 == 99:
                    await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            raise  # client is gone; there is nobody to finish the body for
        except BaseException as error:  # noqa: BLE001 - trailer then re-raise
            error_trailer = (
                "stream interrupted"
                if isinstance(error, asyncio.CancelledError)
                else f"{type(error).__name__}: {error}"
            )
            interrupted = error
        if error_trailer is not None:
            trailer: dict[str, Any] = {
                "error": error_trailer,
                "rows_sent": sent,
                "rows": len(result.rows),
            }
        else:
            trailer = {
                "rows": len(result.rows),
                "elapsed": result.elapsed,
                "total_calls": result.total_calls,
                "mode": result.mode,
            }
            if result.cache_stats is not None:
                trailer["cache"] = result.cache_stats.as_dict()
            if trace_file is not None:
                trailer["trace_file"] = trace_file
        writer.write(_chunk(self._line(trailer)))
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        if isinstance(interrupted, asyncio.CancelledError):
            raise interrupted

    @staticmethod
    def _line(payload: Any) -> bytes:
        return (json.dumps(payload, default=str) + "\n").encode("utf-8")

    #: QueryOptions fields expressible in the POST /sql JSON schema, both
    #: inside the nested ``"options"`` object (the versioned schema) and at
    #: the top level (legacy aliases kept for old clients).
    _OPTION_FIELDS = frozenset(
        {
            "mode",
            "fanouts",
            "adaptation",
            "retries",
            "cache",
            "on_error",
            "name",
            "optimize",
            "limit_pushdown",
            "tenant",
            "deadline_ms",
        }
    )

    def _parse_sql_request(self, body: bytes) -> tuple[str, bool, dict]:
        """Returns ``(sql, trace, option_kwargs)`` for :class:`QueryOptions`.

        Per-query knobs live in the nested ``"options"`` object; the same
        names are also accepted at the top level as legacy aliases.  A
        field set in both places with different values is a 400 — silently
        preferring either would mask a confused client.
        """
        try:
            request = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, f"request body is not valid JSON: {error}")
        if not isinstance(request, dict) or not isinstance(
            request.get("sql"), str
        ):
            raise _HttpError(400, 'request must be a JSON object with a "sql" string')
        unknown = set(request) - self._OPTION_FIELDS - {"sql", "trace", "options"}
        if unknown:
            raise _HttpError(400, f"unknown request fields: {sorted(unknown)}")
        options = request.get("options", {})
        if not isinstance(options, dict):
            raise _HttpError(400, '"options" must be a JSON object')
        unknown = set(options) - self._OPTION_FIELDS
        if unknown:
            raise _HttpError(400, f"unknown options fields: {sorted(unknown)}")
        merged = dict(options)
        for name in self._OPTION_FIELDS & set(request):
            if name in merged and merged[name] != request[name]:
                raise _HttpError(
                    400,
                    f"field {name!r} conflicts between the top level "
                    'and "options"',
                )
            merged[name] = request[name]
        tenant = merged.get("tenant")
        if tenant is not None and (
            not isinstance(tenant, str) or not tenant.strip()
        ):
            raise _HttpError(400, f"bad tenant field: {tenant!r}")
        deadline = merged.get("deadline_ms")
        if deadline is not None:
            if isinstance(deadline, bool) or not isinstance(
                deadline, (int, float)
            ) or deadline <= 0:
                raise _HttpError(
                    400, f"deadline_ms must be a positive number: {deadline!r}"
                )
        optimize = merged.setdefault("optimize", self.default_optimize)
        if optimize not in ("heuristic", "cost"):
            raise _HttpError(
                400,
                f'optimize must be "heuristic" or "cost": {optimize!r}',
            )
        limit_pushdown = merged.get("limit_pushdown")
        if limit_pushdown is not None and not isinstance(limit_pushdown, bool):
            raise _HttpError(
                400, f"limit_pushdown must be a boolean: {limit_pushdown!r}"
            )
        adaptation = merged.get("adaptation")
        if isinstance(adaptation, dict):
            try:
                merged["adaptation"] = AdaptationParams(**adaptation)
            except TypeError as error:
                raise _HttpError(400, f"bad adaptation config: {error}")
        elif adaptation is not None:
            raise _HttpError(400, f"bad adaptation field: {adaptation!r}")
        cache = merged.get("cache")
        if cache is True:
            merged["cache"] = CacheConfig(enabled=True)
        elif isinstance(cache, dict):
            try:
                merged["cache"] = CacheConfig(enabled=True, **cache)
            except (TypeError, ReproError) as error:
                raise _HttpError(400, f"bad cache config: {error}")
        elif cache in (False, None):
            merged.pop("cache", None)
        else:
            raise _HttpError(400, f"bad cache field: {cache!r}")
        for name in ("tenant", "deadline_ms"):
            if merged.get(name) is None:
                merged.pop(name, None)
        return request["sql"], bool(request.get("trace", False)), merged

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        text = _STATUS_TEXT.get(status, "Error")
        extra = "".join(
            f"{key}: {value}\r\n" for key, value in (headers or {}).items()
        )
        writer.write(
            f"HTTP/1.1 {status} {text}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n".encode("ascii")
        )
        writer.write(body)
        await writer.drain()
