"""Fig 16 — Query1 execution time over fanout vectors {fo1, fo2}.

The paper varies fo1 and fo2 manually (up to 60 query processes) and
finds the lowest execution-time region at 50-60 s with the best tree
{5,4} at 56.4 s — a bushy tree close to, but not exactly, balanced —
against a central plan of 244.8 s (speed-up 4.3).
"""

from benchmarks.harness import (
    PAPER,
    QUERY1_SQL,
    Comparison,
    fanout_grid,
    format_grid,
    near_balanced,
    report,
    run_central,
)


def _grid():
    return fanout_grid(QUERY1_SQL)


def test_fig16_query1_grid(benchmark) -> None:
    cells = benchmark.pedantic(_grid, rounds=1, iterations=1)
    central = run_central(QUERY1_SQL).elapsed
    best = min(cells, key=cells.get)
    best_time = cells[best]
    print()
    print(format_grid(cells, "Fig 16 — Query1 execution time (model s)"))
    print(report([
        Comparison("fig16", "central time (s)", PAPER["query1_central"],
                   round(central, 1)),
        Comparison("fig16", "best time (s)", PAPER["query1_best"],
                   round(best_time, 1)),
        Comparison("fig16", "best fanout vector",
                   str(PAPER["query1_best_fanouts"]), str(best)),
        Comparison("fig16", "speed-up over central", PAPER["query1_speedup"],
                   round(central / best_time, 2)),
    ]))

    # Shape assertions mirroring the paper's findings.
    assert 45.0 < best_time < 75.0  # lowest region 50-60 s
    assert near_balanced(best)  # "close to, but not exactly, balanced"
    assert 3.3 < central / best_time < 5.5  # speed-up ~4.3
    # The optimum is interior: both the smallest and the largest trees in
    # the grid are clearly worse than the best one.
    assert cells[(1, 1)] > 2.5 * best_time
    largest = max(cells, key=lambda c: c[0] + c[0] * c[1])
    assert cells[largest] > 1.05 * best_time
    # {1,1} is as slow as the central plan (same sequential behaviour plus
    # messaging overhead).
    assert cells[(1, 1)] > 0.9 * central


def main() -> None:
    cells = _grid()
    print(format_grid(cells, "Fig 16 — Query1 execution time (model s)"))
    print(f"central: {run_central(QUERY1_SQL).elapsed:.1f} s")


if __name__ == "__main__":
    main()
