"""Web-service call memoization on a skewed-key workload.

The paper's queries have mostly distinct call keys, so the cache is off by
default and changes nothing there.  This bench runs the workload the cache
is *for*: a parameter stream where a few hot keys repeat many times (the
shape of real dependent joins over foreign-key-like attributes).  Measured
claims:

* memoization cuts broker calls by well over 25% and shortens the
  makespan, in both central and parallel mode, and
* ``hash_affinity`` dispatch routes repeated keys to the same child, so
  the per-process caches see a far higher hit rate than under
  first-finished placement (children are separate processes — there is no
  shared cache to fall back on).
"""

from __future__ import annotations

from repro import CacheConfig, ProcessCosts, WSMED
from repro.fdb.functions import helping_function
from repro.fdb.types import CHARSTRING, TupleType

SKEW_SQL = """
Select gp.ToPlace, gp.ToState
From   skewed_zips sz, GetPlacesInside gp
Where  gp.zip = sz.zip
"""

HOT_KEYS = 8  # repeated 25x each
COLD_KEYS = 32  # repeated 6x each
FANOUTS = [6]


def _skewed_stream(zips: list[str]) -> list[tuple[str]]:
    """392 parameter tuples over 40 distinct keys, hot keys interleaved."""
    counts = {zips[i]: 25 if i < HOT_KEYS else 6 for i in range(HOT_KEYS + COLD_KEYS)}
    stream: list[tuple[str]] = []
    while counts:
        for code in list(counts):
            stream.append((code,))
            counts[code] -= 1
            if not counts[code]:
                del counts[code]
    return stream


def _system(dispatch: str) -> WSMED:
    system = WSMED(profile="paper", process_costs=ProcessCosts(dispatch=dispatch))
    system.import_all()
    zips = system.registry.geodata.zipcodes_of("Colorado")[: HOT_KEYS + COLD_KEYS]
    stream = _skewed_stream(zips)
    system.register_helping_function(
        helping_function(
            "skewed_zips",
            [],
            TupleType((("zip", CHARSTRING),)),
            lambda: list(stream),
            documentation="Skewed parameter stream: 8 hot + 32 cold zip codes.",
        )
    )
    return system


def _sweep():
    ff = _system("first_finished")
    affinity = _system("hash_affinity")
    cache = CacheConfig(enabled=True)
    return {
        "central off": ff.sql(SKEW_SQL),
        "central on": ff.sql(SKEW_SQL, cache=cache),
        "parallel ff off": ff.sql(SKEW_SQL, mode="parallel", fanouts=FANOUTS),
        "parallel ff on": ff.sql(
            SKEW_SQL, mode="parallel", fanouts=FANOUTS, cache=cache
        ),
        "parallel affinity on": affinity.sql(
            SKEW_SQL, mode="parallel", fanouts=FANOUTS, cache=cache
        ),
    }


def _report(results) -> None:
    print()
    print("Call cache on a skewed stream (392 tuples, 40 distinct keys):")
    for label, result in results.items():
        hit_rate = (
            f"{result.cache_stats.hit_rate:5.0%} hit rate"
            if result.cache_stats
            else "   cache off"
        )
        print(
            f"  {label:21s}: {result.elapsed:7.1f} s, "
            f"{result.total_calls:3d} calls, {hit_rate}"
        )


def _emit_json(results) -> None:
    from benchmarks.report import save_bench_json

    save_bench_json(
        "call_cache",
        {
            "workload": {
                "sql": "GetPlacesInside per zip (skewed keys)",
                "tuples": 392,
                "distinct_keys": HOT_KEYS + COLD_KEYS,
                "fanouts": FANOUTS,
            },
            "runs": [
                {
                    "label": label,
                    "elapsed": result.elapsed,
                    "total_calls": result.total_calls,
                    "hit_rate": (
                        result.cache_stats.hit_rate if result.cache_stats else None
                    ),
                }
                for label, result in results.items()
            ],
        },
    )


def test_call_cache_skewed_keys(benchmark) -> None:
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    _report(results)
    _emit_json(results)

    baseline = results["central off"].as_bag()
    assert all(result.as_bag() == baseline for result in results.values())

    # Memoization removes >= 25% of broker calls and shortens the makespan.
    for off, on in (
        ("central off", "central on"),
        ("parallel ff off", "parallel ff on"),
        ("parallel ff off", "parallel affinity on"),
    ):
        assert results[on].total_calls <= 0.75 * results[off].total_calls
        assert results[on].elapsed < results[off].elapsed

    # Affinity routing concentrates repeats on the owning child's cache.
    assert (
        results["parallel affinity on"].cache_stats.hit_rate
        > results["parallel ff on"].cache_stats.hit_rate
    )
    assert (
        results["parallel affinity on"].total_calls
        < results["parallel ff on"].total_calls
    )


def main() -> None:
    results = _sweep()
    _report(results)
    _emit_json(results)


if __name__ == "__main__":
    main()
