"""Resident-engine throughput: cold vs warm latency, concurrent clients.

The one-shot ``WSMED.sql`` path pays compilation, child-process spawning
and an empty call cache on every query.  The resident
:class:`~repro.engine.QueryEngine` amortizes all three, which matters for
the workload a mediator actually serves: the *same* parameterized queries
arriving over and over (dashboard refreshes, polling clients).

Measured claims, all in deterministic model seconds on the ``fast``
profile (Query1, ``parallel`` mode with the paper's best {5,4} tree,
call cache on, cache-affinity dispatch):

* a warm query — compiled plan cached, process tree resident, child
  caches populated — runs >= 5x faster than the cold first query;
* 16 concurrent clients on one engine achieve >= 3x the queries/second
  of a single client, because warm all-hit queries never contend on the
  capacity-limited simulated services.

``prefetch=16`` keeps cache-affinity routing strict (the affinity target
never saturates, so no first-finished fallback), which makes warm-tree
hit rates — and therefore this bench — fully deterministic.

The warm steady state above is fully cached (``broker_calls: 0``), so it
says nothing about broker work.  The *cold workloads* section measures
that side: fresh engines, no warm-up, identical and partially
overlapping client batches — every row there issues real broker calls.
The full clients x overlap x sharing grid lives in
:mod:`benchmarks.bench_multiquery`.

Usage::

    python -m benchmarks.bench_throughput [--smoke]
"""

from __future__ import annotations

import argparse
import time

from repro import QUERY1_SQL, CacheConfig, ProcessCosts, QueryEngine, WSMED

QUERY_KWARGS = dict(mode="parallel", fanouts=[5, 4])
COSTS = ProcessCosts(dispatch="hash_affinity", prefetch=16).scaled(0.01)
CLIENT_COUNTS = (1, 4, 16)
COLD_WORKLOADS = ("overlapping", "partial")
COLD_CLIENTS = 4
WARM_ROUNDS = 2  # per-client warm-up batches before measuring


def _engine(max_concurrency: int = 16) -> QueryEngine:
    wsmed = WSMED(
        profile="fast", process_costs=COSTS, cache=CacheConfig(enabled=True)
    )
    wsmed.import_all()
    return QueryEngine(wsmed, max_concurrency=max_concurrency)


def measure_latency() -> dict:
    """Cold first query vs fully warm repeat on one engine."""
    engine = _engine()
    wall_start = time.perf_counter()
    cold = engine.sql(QUERY1_SQL, **QUERY_KWARGS)
    cold_wall = time.perf_counter() - wall_start

    # One warm-up round populates the child caches; the next repeat is
    # the steady state a resident engine serves.
    engine.sql(QUERY1_SQL, **QUERY_KWARGS)
    wall_start = time.perf_counter()
    warm = engine.sql(QUERY1_SQL, **QUERY_KWARGS)
    warm_wall = time.perf_counter() - wall_start
    stats = engine.stats()
    engine.close()

    assert warm.rows and sorted(warm.rows) == sorted(cold.rows)
    return {
        "cold_model_s": cold.elapsed,
        "warm_model_s": warm.elapsed,
        "speedup": cold.elapsed / warm.elapsed,
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "cold_calls": cold.total_calls,
        "warm_calls": warm.total_calls,
        "warm_cache_hits": warm.cache_stats.hits,
        "plan_cache_hits": stats.plan_cache_hits,
        "warm_leases": stats.warm_leases,
    }


def measure_throughput(clients: int) -> dict:
    """Steady-state queries/second with ``clients`` concurrent clients.

    Warm-up rounds first build ``clients`` resident trees (each concurrent
    query leases its own) and populate their caches; the measured batch is
    then pure steady state.
    """
    engine = _engine(max_concurrency=max(CLIENT_COUNTS))
    batch = [QUERY1_SQL] * clients
    for _ in range(WARM_ROUNDS):
        engine.sql_many(batch, **QUERY_KWARGS)
    kernel = engine.kernel
    started = kernel.now()
    wall_start = time.perf_counter()
    results = engine.sql_many(batch, **QUERY_KWARGS)
    wall = time.perf_counter() - wall_start
    makespan = kernel.now() - started
    stats = engine.stats()
    engine.close()

    assert len(results) == clients and all(r.rows for r in results)
    return {
        "clients": clients,
        "makespan_model_s": makespan,
        "queries_per_model_s": clients / makespan,
        "wall_s": wall,
        "broker_calls": sum(r.total_calls for r in results),
        "peak_concurrency": stats.peak_concurrency,
        "resident_trees": stats.idle_pools,
    }


def measure_cold_workload(workload: str, clients: int) -> dict:
    """Broker work of ``clients`` concurrent *cold* queries.

    No warm-up rounds and a fresh engine, so unlike the steady-state
    rows above every query here pays real broker round trips —
    ``broker_calls`` must come out positive.  ``workload`` picks the
    overlap shape (see :func:`benchmarks.bench_multiquery.workload_batch`).
    """
    from benchmarks.bench_multiquery import workload_batch

    engine = _engine(max_concurrency=max(CLIENT_COUNTS))
    batch = workload_batch(workload, clients)
    kernel = engine.kernel
    started = kernel.now()
    results = engine.sql_many(batch, **QUERY_KWARGS)
    makespan = kernel.now() - started
    broker_calls = engine.broker.total_calls()
    engine.close()

    assert len(results) == clients and all(r.rows for r in results)
    return {
        "workload": workload,
        "clients": clients,
        "makespan_model_s": makespan,
        "broker_calls": broker_calls,
        "calls_per_query": broker_calls / clients,
    }


def run(smoke: bool = False) -> dict:
    latency = measure_latency()
    counts = CLIENT_COUNTS[:2] + CLIENT_COUNTS[-1:] if not smoke else (1, 16)
    throughput = [measure_throughput(clients) for clients in counts]
    cold = [
        measure_cold_workload(workload, COLD_CLIENTS)
        for workload in COLD_WORKLOADS
    ]
    single = throughput[0]["queries_per_model_s"]
    scaling = {
        str(row["clients"]): row["queries_per_model_s"] / single
        for row in throughput
    }
    return {
        "workload": {
            "sql": "Query1",
            "profile": "fast",
            "mode": "parallel",
            "fanouts": [5, 4],
            "dispatch": "hash_affinity",
            "prefetch": 16,
            "cache": True,
        },
        "latency": latency,
        "throughput": throughput,
        "throughput_scaling_vs_1_client": scaling,
        "cold_workloads": cold,
    }


def _report(payload: dict) -> None:
    latency = payload["latency"]
    print(
        f"latency: cold {latency['cold_model_s']:.4f} model s "
        f"({latency['cold_calls']} calls), warm {latency['warm_model_s']:.4f} "
        f"model s ({latency['warm_calls']} calls) -> "
        f"{latency['speedup']:.1f}x"
    )
    for row in payload["throughput"]:
        print(
            f"{row['clients']:>3} clients: {row['queries_per_model_s']:8.1f} q/s "
            f"(makespan {row['makespan_model_s']:.4f} model s, "
            f"{row['broker_calls']} broker calls, "
            f"peak concurrency {row['peak_concurrency']})"
        )
    scaling = payload["throughput_scaling_vs_1_client"]
    last = payload["throughput"][-1]["clients"]
    print(f"scaling at {last} clients: {scaling[str(last)]:.1f}x one client")
    for row in payload["cold_workloads"]:
        print(
            f"cold {row['workload']:>11} x{row['clients']} clients: "
            f"{row['broker_calls']} broker calls "
            f"({row['calls_per_query']:.0f}/query, "
            f"makespan {row['makespan_model_s']:.4f} model s)"
        )


def _emit_json(payload: dict) -> None:
    from benchmarks.report import save_bench_json

    save_bench_json("throughput", payload)


def _check(payload: dict) -> None:
    assert payload["latency"]["speedup"] >= 5.0, payload["latency"]
    scaling = payload["throughput_scaling_vs_1_client"]
    assert scaling[str(payload["throughput"][-1]["clients"])] >= 3.0, scaling
    for row in payload["cold_workloads"]:
        # The cold rows exist to measure broker work; all-zero calls
        # would mean this bench regressed into replaying caches again.
        assert row["broker_calls"] >= row["clients"], row


def test_resident_engine_throughput(benchmark) -> None:
    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(payload)
    _emit_json(payload)
    _check(payload)


def main(smoke: bool = False) -> None:
    payload = run(smoke=smoke)
    _report(payload)
    _emit_json(payload)
    _check(payload)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer client counts (CI: verifies the ratios, minimal runtime)",
    )
    main(smoke=parser.parse_args().smoke)
