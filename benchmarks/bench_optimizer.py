"""Cost-based optimizer: adversarial orderings, rewrites, drift recovery.

Three sections, all deterministic model seconds over the synthetic
optimizer world of :mod:`benchmarks.optimizer_world`:

* **adversarial** — ``ADVERSARIAL_SQL`` names the expensive audit before
  the selective probe.  The heuristic (query-order) plan audits all 12
  regions; the cost plan probes first and audits only the 3 active ones.
  The JSON carries both plans' model seconds and call counts and asserts
  the cost plan wins on identical row bags.

* **rewrite** — ``REWRITE_SQL`` binds only the output side of ``NameOf``,
  so the heuristic pipeline rejects it with ``BindingError``.  The cost
  path rewrites the call to the declared ``CodeOf`` access path and the
  query executes; rows are checked against the hand-rewritten direct
  query and the ground truth.

* **drift** — the misdeclared world lies about ``CheckRegion``'s fanout
  (hint 6.0, true 0.25), so the *cold* cost plan audits first.  A
  resident engine runs the query twice: live call statistics expose the
  drift after the first execution, the plan cache entry is re-optimized,
  and the warm run matches the well-declared plan's call count.

Usage::

    python -m benchmarks.bench_optimizer [--smoke]
"""

from __future__ import annotations

import argparse

from benchmarks.optimizer_world import (
    ADVERSARIAL_SQL,
    REWRITE_DIRECT_SQL,
    REWRITE_SQL,
    build_optimizer_world,
    expected_adversarial_rows,
    expected_rewrite_rows,
)
from repro import QueryEngine
from repro.util.errors import BindingError

DRIFT_RUNS = 4
SMOKE_DRIFT_RUNS = 2


def _row_bag(result) -> list[tuple]:
    return sorted(tuple(row) for row in result.rows)


def measure_adversarial() -> dict:
    """Heuristic (query-order) vs cost-chosen ordering, same row bag."""
    wsmed = build_optimizer_world()
    heuristic = wsmed.sql(ADVERSARIAL_SQL, mode="central")
    cost = wsmed.sql(ADVERSARIAL_SQL, mode="central", optimize="cost")
    return {
        "heuristic_model_s": heuristic.elapsed,
        "heuristic_calls": heuristic.total_calls,
        "cost_model_s": cost.elapsed,
        "cost_calls": cost.total_calls,
        "speedup": heuristic.elapsed / cost.elapsed,
        "rows": len(cost.rows),
        "rows_identical": _row_bag(cost) == _row_bag(heuristic),
        "rows_correct": _row_bag(cost) == expected_adversarial_rows(),
    }


def measure_rewrite() -> dict:
    """A formerly-BindingError query executes via the access path."""
    wsmed = build_optimizer_world()
    try:
        wsmed.sql(REWRITE_SQL, mode="central")
        heuristic_rejects = False
    except BindingError:
        heuristic_rejects = True
    rewritten = wsmed.sql(REWRITE_SQL, mode="central", optimize="cost")
    direct = wsmed.sql(REWRITE_DIRECT_SQL, mode="central")
    return {
        "heuristic_rejects": heuristic_rejects,
        "rewritten_model_s": rewritten.elapsed,
        "rewritten_calls": rewritten.total_calls,
        "direct_model_s": direct.elapsed,
        "rows": len(rewritten.rows),
        "rows_match_direct": _row_bag(rewritten) == _row_bag(direct),
        "rows_correct": _row_bag(rewritten) == expected_rewrite_rows(),
    }


def measure_drift(runs: int) -> dict:
    """Cold (misdeclared) vs warmed (re-optimized) plan in the engine."""
    engine = QueryEngine(build_optimizer_world(misdeclared=True))
    try:
        results = [
            engine.sql(ADVERSARIAL_SQL, mode="central", optimize="cost")
            for _ in range(runs)
        ]
        stats = engine.stats()
    finally:
        engine.close()
    cold, warm = results[0], results[-1]
    bags = {tuple(_row_bag(result)) for result in results}
    return {
        "runs": runs,
        "cold_model_s": cold.elapsed,
        "cold_calls": cold.total_calls,
        "warm_model_s": warm.elapsed,
        "warm_calls": warm.total_calls,
        "recovery_speedup": cold.elapsed / warm.elapsed,
        "reoptimizations": stats.reoptimizations,
        "observed_operations": stats.observed_operations,
        "rows_stable": len(bags) == 1,
        "rows_correct": _row_bag(warm) == expected_adversarial_rows(),
    }


def run(smoke: bool = False) -> dict:
    return {
        "workload": {
            "world": "benchmarks.optimizer_world",
            "profile": "fast",
            "mode": "central",
            "regions": 12,
            "active_regions": 3,
            "findings_per_region": 6,
        },
        "adversarial": measure_adversarial(),
        "rewrite": measure_rewrite(),
        "drift": measure_drift(SMOKE_DRIFT_RUNS if smoke else DRIFT_RUNS),
    }


def _report(payload: dict) -> None:
    adversarial = payload["adversarial"]
    print(
        f"adversarial ordering: heuristic "
        f"{adversarial['heuristic_model_s']:.2f} model s "
        f"({adversarial['heuristic_calls']} calls), cost "
        f"{adversarial['cost_model_s']:.2f} model s "
        f"({adversarial['cost_calls']} calls) -> "
        f"{adversarial['speedup']:.2f}x, rows identical: "
        f"{adversarial['rows_identical']}"
    )
    rewrite = payload["rewrite"]
    print(
        f"rewrite: heuristic rejects: {rewrite['heuristic_rejects']}, "
        f"cost path runs {rewrite['rows']} rows in "
        f"{rewrite['rewritten_model_s']:.2f} model s, matches direct "
        f"query: {rewrite['rows_match_direct']}"
    )
    drift = payload["drift"]
    print(
        f"drift recovery: cold {drift['cold_model_s']:.2f} model s "
        f"({drift['cold_calls']} calls) -> warm "
        f"{drift['warm_model_s']:.2f} model s ({drift['warm_calls']} "
        f"calls), {drift['reoptimizations']} re-optimizations over "
        f"{drift['runs']} runs ({drift['recovery_speedup']:.2f}x)"
    )


def _emit_json(payload: dict) -> None:
    from benchmarks.report import save_bench_json

    save_bench_json("optimizer", payload)


def _check(payload: dict) -> None:
    adversarial = payload["adversarial"]
    # The headline claim: on the adversarial ordering the cost plan
    # beats the heuristic plan in both calls and model time, without
    # changing the answer.
    assert adversarial["cost_model_s"] < adversarial["heuristic_model_s"], (
        adversarial
    )
    assert adversarial["cost_calls"] < adversarial["heuristic_calls"], (
        adversarial
    )
    assert adversarial["rows_identical"], adversarial
    assert adversarial["rows_correct"], adversarial
    rewrite = payload["rewrite"]
    assert rewrite["heuristic_rejects"], rewrite
    assert rewrite["rows_match_direct"], rewrite
    assert rewrite["rows_correct"], rewrite
    drift = payload["drift"]
    assert drift["reoptimizations"] >= 1, drift
    assert drift["warm_calls"] < drift["cold_calls"], drift
    assert drift["warm_model_s"] < drift["cold_model_s"], drift
    assert drift["rows_stable"], drift
    assert drift["rows_correct"], drift


def test_optimizer(benchmark) -> None:
    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(payload)
    _emit_json(payload)
    _check(payload)


def main(smoke: bool = False) -> None:
    payload = run(smoke=smoke)
    _report(payload)
    _emit_json(payload)
    _check(payload)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer drift runs (CI: verifies the claims, minimal runtime)",
    )
    main(smoke=parser.parse_args().smoke)
