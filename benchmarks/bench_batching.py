"""Micro-batched messaging: batch size x fanout on a cheap-call workload.

The per-tuple protocol (Sec. III.A) pays ``message_latency`` three times
per call (parameter down, result up, end-of-call up) plus the per-row
shipping CPU — for wide fan-outs over cheap calls that messaging, not the
web services, dominates the client.  This bench runs exactly that regime:
``GetPlacesInside`` on the uncontended profile (no server queueing, so the
client side is the bottleneck) with elevated messaging costs, and sweeps
``ProcessCosts.batch_size`` against the fanout.  Measured claims:

* batching cuts uplink+downlink messages by well over 30% (a batch of k
  replaces ~3k messages with 2),
* completion time drops measurably versus the per-tuple protocol, and
* ``batch_adaptive`` lands within ~10% of the best fixed batch size
  without being told the right size.

Results are also written to ``benchmarks/results/BENCH_batching.json``
via :func:`benchmarks.report.save_bench_json`.
"""

from __future__ import annotations

from dataclasses import replace

from repro import ProcessCosts, WSMED
from repro.fdb.functions import helping_function
from repro.fdb.types import CHARSTRING, TupleType

SQL = """
Select gp.ToPlace, gp.ToState
From   zip_stream zs, GetPlacesInside gp
Where  gp.zip = zs.zip
"""

TUPLES = 240
FANOUTS = (8, 12)
BATCH_SIZES = (1, 2, 4, 8, 16)

# Messaging-heavy cost point: transit 20 ms per message, cheap per-row
# CPU.  One GetPlacesInside call occupies a child ~83 ms on the
# uncontended profile, so per-tuple messaging (~3 transits/call) is a
# large fraction of useful work — the regime batching is for.
COSTS = ProcessCosts(
    message_latency=0.02,
    ship_param=0.002,
    result_tuple=0.001,
)


def _system() -> WSMED:
    system = WSMED(profile="uncontended", process_costs=COSTS)
    system.import_all()
    zips = system.registry.geodata.zipcodes_of("Colorado")
    stream = [(code,) for code in (zips * 40)[:TUPLES]]
    system.register_helping_function(
        helping_function(
            "zip_stream",
            [],
            TupleType((("zip", CHARSTRING),)),
            lambda: list(stream),
            documentation=f"Parameter stream of {TUPLES} zip codes.",
        )
    )
    return system


def _run(system: WSMED, fanout: int, batch) -> dict:
    if batch == "adaptive":
        costs = replace(COSTS, batch_adaptive=True)
    else:
        costs = replace(COSTS, batch_size=batch)
    result = system.sql(
        SQL, mode="parallel", fanouts=[fanout], process_costs=costs
    )
    stats = result.message_stats
    return {
        "batch": batch,
        "fanout": fanout,
        "elapsed": result.elapsed,
        "messages": stats.total_messages,
        "downlink": stats.downlink_messages,
        "uplink": stats.uplink_messages,
        "param_batches": stats.param_batches,
        "result_batches": stats.result_batches,
        "rows": len(result.rows),
        "bag": result.as_bag(),
    }


def _sweep() -> list[dict]:
    system = _system()
    runs = []
    for fanout in FANOUTS:
        for batch in (*BATCH_SIZES, "adaptive"):
            runs.append(_run(system, fanout, batch))
    return runs


def _report(runs: list[dict]) -> None:
    print()
    print(
        f"Micro-batching, {TUPLES} GetPlacesInside calls "
        "(uncontended profile, 20 ms message transit):"
    )
    for fanout in FANOUTS:
        rows = [run for run in runs if run["fanout"] == fanout]
        base = next(run for run in rows if run["batch"] == 1)
        print(f"  fanout {fanout}:")
        for run in rows:
            label = (
                "adaptive"
                if run["batch"] == "adaptive"
                else f"batch={run['batch']}"
            )
            speedup = base["elapsed"] / run["elapsed"]
            fewer = 1.0 - run["messages"] / base["messages"]
            print(
                f"    {label:9s}: {run['elapsed']:6.2f} s "
                f"({speedup:4.2f}x), {run['messages']:4d} messages "
                f"({fewer:5.1%} fewer)"
            )


def _emit_json(runs: list[dict]) -> None:
    from benchmarks.report import save_bench_json

    save_bench_json(
        "batching",
        {
            "workload": {
                "sql": "GetPlacesInside per zip (dependent join)",
                "tuples": TUPLES,
                "profile": "uncontended",
                "message_latency": COSTS.message_latency,
                "ship_param": COSTS.ship_param,
                "result_tuple": COSTS.result_tuple,
            },
            "runs": [
                {key: value for key, value in run.items() if key != "bag"}
                for run in runs
            ],
        },
    )


def test_batching_sweep(benchmark) -> None:
    runs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    _report(runs)
    _emit_json(runs)

    # Batching never changes what the query computes.
    baseline = runs[0]["bag"]
    assert all(run["bag"] == baseline for run in runs)

    for fanout in FANOUTS:
        rows = [run for run in runs if run["fanout"] == fanout]
        base = next(run for run in rows if run["batch"] == 1)
        fixed = [run for run in rows if run["batch"] not in (1, "adaptive")]
        adaptive = next(run for run in rows if run["batch"] == "adaptive")

        # >= 30% fewer uplink+downlink messages at every batched size.
        for run in fixed:
            assert run["messages"] <= 0.7 * base["messages"], run
        assert adaptive["messages"] <= 0.7 * base["messages"]

        # A measurable completion-time win over the per-tuple protocol.
        best = min(fixed, key=lambda run: run["elapsed"])
        assert best["elapsed"] < 0.95 * base["elapsed"]

        # Adaptive sizing lands within ~10% of the best fixed size.
        assert adaptive["elapsed"] <= 1.10 * best["elapsed"]


def main() -> None:
    runs = _sweep()
    _report(runs)
    _emit_json(runs)


if __name__ == "__main__":
    main()
