"""Benchmark harness reproducing every table and figure of the paper.

Each ``bench_*.py`` module regenerates one artefact of the evaluation
section (Sec. V) and doubles as a pytest-benchmark target::

    pytest benchmarks/ --benchmark-only      # run everything, timed
    python -m benchmarks.report              # print all tables + paper-vs-measured

Modules:

* ``bench_central_plans``   — the naive sequential baselines (Sec. I/II claims)
* ``bench_fig16_query1_grid`` — Fig 16: Query1 time over fanout vectors
* ``bench_fig17_query2_grid`` — Fig 17: Query2 time over fanout vectors
* ``bench_tree_shapes``     — Figs 14/15: flat vs unbalanced vs balanced trees
* ``bench_fig21_adaptive``  — Fig 21: AFF_APPLYP vs best manual trees
* ``bench_adaptation_trace``— Figs 18-20: the add/drop dynamics of one run
* ``bench_ablations``       — design-choice ablations (contention model,
  dispatch policy) called out in DESIGN.md
"""
