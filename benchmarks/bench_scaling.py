"""Workload scaling: does the adaptive operator stay competitive as the
data grows?

The paper evaluates two fixed workloads.  This bench sweeps the size of
the Query1 workload (number of states containing an Atlanta cluster, i.e.
the number of level-two call bursts) and compares the best manual tree
against AFF_APPLYP at each size.  The point of adaptivity is exactly
this: the manual vector {5,4} was tuned for one workload, while the
adaptive operator re-derives a tree per run.
"""

from repro import WSMED, AdaptationParams, GeoConfig, build_registry

from benchmarks.harness import QUERY1_SQL

ATLANTA_COUNTS = (8, 16, 26, 40)


def _world(atlanta_states: int) -> WSMED:
    config = GeoConfig(
        atlanta_state_count=atlanta_states,
        locale_twin_total=4 * atlanta_states,
    )
    system = WSMED(build_registry("paper", geo_config=config))
    system.import_all()
    return system


def _sweep():
    rows = []
    for count in ATLANTA_COUNTS:
        system = _world(count)
        central = system.sql(QUERY1_SQL, mode="central")
        manual = system.sql(QUERY1_SQL, mode="parallel", fanouts=[5, 4])
        adaptive = system.sql(
            QUERY1_SQL, mode="adaptive", adaptation=AdaptationParams(p=2)
        )
        rows.append(
            {
                "atlanta_states": count,
                "calls": central.total_calls,
                "central": central.elapsed,
                "manual": manual.elapsed,
                "adaptive": adaptive.elapsed,
                "rows": len(central),
            }
        )
        assert manual.as_bag() == central.as_bag() == adaptive.as_bag()
    return rows


def test_scaling(benchmark) -> None:
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print("Workload scaling — Query1 with varying Atlanta-cluster counts:")
    print(f"{'states':>7} {'calls':>6} {'central':>9} {'manual{5,4}':>12} {'adaptive':>9}")
    for row in rows:
        print(
            f"{row['atlanta_states']:>7} {row['calls']:>6} "
            f"{row['central']:>9.1f} {row['manual']:>12.1f} {row['adaptive']:>9.1f}"
        )

    # Work (and central time) grows with the dataset.
    centrals = [row["central"] for row in rows]
    assert centrals == sorted(centrals)
    for row in rows:
        # Parallel execution always wins clearly...
        assert row["manual"] < 0.5 * row["central"]
        # ...and the adaptive tree stays within 60% of the tuned manual
        # tree at every size without re-tuning.
        assert row["adaptive"] < 1.6 * row["manual"]


def main() -> None:
    for row in _sweep():
        print(row)


if __name__ == "__main__":
    main()
