"""Shared benchmark infrastructure.

Everything runs under the *paper* cost profile on the simulated kernel, so
"seconds" below are model seconds comparable to the paper's wall-clock
measurements, while the benchmarks themselves finish in wall milliseconds
to minutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro import WSMED, AdaptationParams, QueryResult
from repro import QUERY1_SQL, QUERY2_SQL  # noqa: F401  (re-exported for benches)

# Reference values from the paper (Sec. V).
PAPER = {
    "query1_central": 244.8,
    "query1_best": 56.4,
    "query1_best_fanouts": (5, 4),
    "query1_speedup": 4.3,
    "query2_central": 2412.95,
    "query2_best": 1243.89,
    "query2_best_fanouts": (4, 3),
    "query2_speedup": 2.0,
    "query1_calls": 311,  # "more than 300 web service calls"
    "query2_calls": 5001,  # "more than 5000 web service calls"
    "query1_rows": 360,
    "aff_best_ratio_query1": 0.80,  # p=2, no drop (Sec. V.A)
    "aff_best_ratio_query2": 0.96,
}

MAX_PROCESSES = 60  # the paper explores trees of up to 60 query processes
MAX_FANOUT = 7


@lru_cache(maxsize=4)
def wsmed(profile: str = "paper") -> WSMED:
    system = WSMED(profile=profile)
    system.import_all()
    return system


def run_central(sql: str, profile: str = "paper") -> QueryResult:
    return wsmed(profile).sql(sql, mode="central")


def run_parallel(
    sql: str, fanouts: tuple[int, ...], profile: str = "paper"
) -> QueryResult:
    return wsmed(profile).sql(sql, mode="parallel", fanouts=list(fanouts))


def run_adaptive(
    sql: str, p: int, drop_stage: bool, profile: str = "paper"
) -> QueryResult:
    return wsmed(profile).sql(
        sql,
        mode="adaptive",
        adaptation=AdaptationParams(p=p, drop_stage=drop_stage),
    )


def fanout_grid(
    sql: str,
    *,
    profile: str = "paper",
    max_fanout: int = MAX_FANOUT,
    max_processes: int = MAX_PROCESSES,
) -> dict[tuple[int, int], float]:
    """Execution time for every fanout vector within the paper's bounds."""
    cells: dict[tuple[int, int], float] = {}
    for fo1 in range(1, max_fanout + 1):
        for fo2 in range(1, max_fanout + 1):
            if fo1 + fo1 * fo2 > max_processes:
                continue
            cells[(fo1, fo2)] = run_parallel(sql, (fo1, fo2), profile).elapsed
    return cells


def format_grid(cells: dict[tuple[int, int], float], title: str) -> str:
    """Render a fanout grid as the table behind Figs 16/17."""
    fo1_values = sorted({fo1 for fo1, _ in cells})
    fo2_values = sorted({fo2 for _, fo2 in cells})
    lines = [title, "fo1\\fo2 " + "".join(f"{fo2:>8}" for fo2 in fo2_values)]
    for fo1 in fo1_values:
        row = [f"{fo1:>7} "]
        for fo2 in fo2_values:
            value = cells.get((fo1, fo2))
            row.append(f"{value:8.1f}" if value is not None else "       -")
        lines.append("".join(row))
    best = min(cells, key=cells.get)
    lines.append(
        f"best: {{{best[0]},{best[1]}}} = {cells[best]:.1f} s "
        f"(N = {best[0] + best[0] * best[1]} processes)"
    )
    return "\n".join(lines)


@dataclass
class Comparison:
    """One paper-vs-measured line of EXPERIMENTS.md."""

    experiment: str
    metric: str
    paper: float | str
    measured: float | str

    def line(self) -> str:
        return (
            f"{self.experiment:<12} {self.metric:<38} "
            f"paper={self.paper!s:<12} measured={self.measured!s}"
        )


def report(comparisons: list[Comparison]) -> str:
    return "\n".join(comparison.line() for comparison in comparisons)


def near_balanced(cell: tuple[int, int], slack: int = 2) -> bool:
    """The paper's observation: the optimum is close to a balanced tree."""
    return abs(cell[0] - cell[1]) <= slack
