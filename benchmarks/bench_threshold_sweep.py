"""AFF_APPLYP sensitivity to the change threshold.

Sec. V.A: "We experimented with different values of p and different
change thresholds, with and without the drop stage.  The results for 25 %
change are shown in Fig 21."  This bench regenerates the threshold
dimension: Query1 with p=2, no drop stage, across thresholds.

Expected shape: a small threshold keeps adding children aggressively
(larger trees, adaptation overhead), a large threshold stops early
(undersized trees); the paper's 25 % sits in the efficient middle.
"""

from repro import AdaptationParams

from benchmarks.harness import PAPER, QUERY1_SQL, run_parallel, wsmed

THRESHOLDS = (0.05, 0.15, 0.25, 0.40, 0.60)


def _sweep():
    rows = []
    for threshold in THRESHOLDS:
        result = wsmed().sql(
            QUERY1_SQL,
            mode="adaptive",
            adaptation=AdaptationParams(p=2, threshold=threshold, drop_stage=False),
        )
        rows.append(
            {
                "threshold": threshold,
                "time": result.elapsed,
                "spawned": result.tree.processes_spawned,
                "fanouts": [round(f, 1) for f in result.tree.average_fanouts()],
            }
        )
    return rows


def test_threshold_sweep(benchmark) -> None:
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    best_manual = run_parallel(QUERY1_SQL, PAPER["query1_best_fanouts"]).elapsed
    print()
    print(f"Threshold sweep — Query1, p=2, no drop (best manual {best_manual:.1f} s)")
    for row in rows:
        print(
            f"  threshold={row['threshold']:<5} time={row['time']:7.1f} s  "
            f"spawned={row['spawned']:>3}  avg fanouts={row['fanouts']}"
        )

    by_threshold = {row["threshold"]: row for row in rows}
    # Lower thresholds keep expanding longer: tree sizes decrease (weakly)
    # as the threshold grows.
    spawned = [row["spawned"] for row in rows]
    assert all(a >= b for a, b in zip(spawned, spawned[1:]))
    # The paper's 25% choice stays within a reasonable factor of the best
    # manual tree.
    assert by_threshold[0.25]["time"] < 1.5 * best_manual
    # Every threshold still produces a correct, finished run far faster
    # than the central plan.
    assert all(row["time"] < 150.0 for row in rows)


def main() -> None:
    for row in _sweep():
        print(row)


if __name__ == "__main__":
    main()
