"""Naive central plans — the baselines of the paper's Secs. I and II.

Paper claims regenerated here:

* Query2's naive plan "makes 5000 calls sequentially and takes nearly
  2400 seconds" (Sec. I) — measured 2412.95 s in Sec. V.
* Query1's naive plan "invokes more than 300 web service calls" and takes
  244.8 s (Sec. V).
"""

from benchmarks.harness import (
    PAPER,
    QUERY1_SQL,
    QUERY2_SQL,
    Comparison,
    report,
    run_central,
)


def _comparisons():
    query1 = run_central(QUERY1_SQL)
    query2 = run_central(QUERY2_SQL)
    return query1, query2, [
        Comparison("central", "Query1 time (s)", PAPER["query1_central"],
                   round(query1.elapsed, 1)),
        Comparison("central", "Query1 web service calls", PAPER["query1_calls"],
                   query1.total_calls),
        Comparison("central", "Query1 result rows", PAPER["query1_rows"],
                   len(query1)),
        Comparison("central", "Query2 time (s)", PAPER["query2_central"],
                   round(query2.elapsed, 1)),
        Comparison("central", "Query2 web service calls", PAPER["query2_calls"],
                   query2.total_calls),
        Comparison("central", "Query2 answer", "<CO, 80840>",
                   str(query2.rows)),
    ]


def test_central_plans(benchmark) -> None:
    query1, query2, comparisons = benchmark.pedantic(
        _comparisons, rounds=1, iterations=1
    )
    print()
    print(report(comparisons))

    assert query2.rows == [("CO", "80840")]
    assert query2.total_calls == 5001
    assert query1.total_calls == 311
    assert len(query1) == 360
    # Within 5% of the paper's wall-clock numbers.
    assert abs(query1.elapsed - PAPER["query1_central"]) < 0.05 * PAPER["query1_central"]
    assert abs(query2.elapsed - PAPER["query2_central"]) < 0.05 * PAPER["query2_central"]


def main() -> None:
    _, _, comparisons = _comparisons()
    print(report(comparisons))


if __name__ == "__main__":
    main()
