"""Fig 21 — AFF_APPLYP execution times vs the best manual process trees.

The paper varies p (children added per add stage) with and without the
drop stage at a 25 % change threshold, reports average fanouts, and
concludes that the adaptive operator reaches 80 % (Query1) / 96 % (Query2)
of the best manually specified tree, with the drop stage making
insignificant changes.
"""

from benchmarks.harness import (
    PAPER,
    QUERY1_SQL,
    QUERY2_SQL,
    Comparison,
    report,
    run_adaptive,
    run_parallel,
)

P_VALUES = (1, 2, 3, 4)


def _sweep(sql: str, best_manual: float):
    rows = []
    for p in P_VALUES:
        for drop_stage in (False, True):
            result = run_adaptive(sql, p, drop_stage)
            fanouts = [round(f, 1) for f in result.tree.average_fanouts()]
            rows.append(
                {
                    "p": p,
                    "drop": drop_stage,
                    "time": result.elapsed,
                    "ratio": best_manual / result.elapsed,
                    "fanouts": fanouts,
                    "spawned": result.tree.processes_spawned,
                    "dropped": result.tree.processes_dropped,
                }
            )
    return rows


def _format(rows, title):
    lines = [title, f"{'p':>3} {'drop':>5} {'time(s)':>9} {'ratio':>6} "
                    f"{'avg fanouts':>14} {'spawned':>8} {'dropped':>8}"]
    for row in rows:
        lines.append(
            f"{row['p']:>3} {'on' if row['drop'] else 'off':>5} "
            f"{row['time']:>9.1f} {row['ratio']:>6.2f} "
            f"{str(row['fanouts']):>14} {row['spawned']:>8} {row['dropped']:>8}"
        )
    return "\n".join(lines)


def _run_both():
    best_q1 = run_parallel(QUERY1_SQL, PAPER["query1_best_fanouts"]).elapsed
    best_q2 = run_parallel(QUERY2_SQL, PAPER["query2_best_fanouts"]).elapsed
    return (
        best_q1,
        best_q2,
        _sweep(QUERY1_SQL, best_q1),
        _sweep(QUERY2_SQL, best_q2),
    )


def test_fig21_adaptive(benchmark) -> None:
    best_q1, best_q2, rows_q1, rows_q2 = benchmark.pedantic(
        _run_both, rounds=1, iterations=1
    )
    print()
    print(_format(rows_q1, f"Fig 21a — Query1 AFF_APPLYP (best manual {best_q1:.1f} s)"))
    print(_format(rows_q2, f"Fig 21b — Query2 AFF_APPLYP (best manual {best_q2:.1f} s)"))
    q1_p2 = next(r for r in rows_q1 if r["p"] == 2 and not r["drop"])
    q2_p2 = next(r for r in rows_q2 if r["p"] == 2 and not r["drop"])
    print(report([
        Comparison("fig21", "Query1 ratio to best manual (p=2, no drop)",
                   PAPER["aff_best_ratio_query1"], round(q1_p2["ratio"], 2)),
        Comparison("fig21", "Query2 ratio to best manual (p=2, no drop)",
                   PAPER["aff_best_ratio_query2"], round(q2_p2["ratio"], 2)),
    ]))

    # The paper's conclusions as shape assertions:
    # 1. Every adaptive configuration lands near the best manual tree.
    assert all(row["ratio"] > 0.70 for row in rows_q1 + rows_q2)
    # 2. p=2 without drop stage is close to the best manual tree
    #    (paper: 80% for Query1, 96% for Query2).
    assert q1_p2["ratio"] > 0.75
    assert q2_p2["ratio"] > 0.90
    # 3. Dropping processes makes insignificant changes (< 15%).
    for p in P_VALUES:
        for rows in (rows_q1, rows_q2):
            with_drop = next(r for r in rows if r["p"] == p and r["drop"])
            without = next(r for r in rows if r["p"] == p and not r["drop"])
            assert abs(with_drop["time"] - without["time"]) < 0.15 * without["time"]
    # 4. The adaptation actually grew the tree beyond the initial binary
    #    shape (average level-one fanout above init fanout 2).
    assert all(max(row["fanouts"]) > 2.0 for row in rows_q1 + rows_q2)


def main() -> None:
    best_q1, best_q2, rows_q1, rows_q2 = _run_both()
    print(_format(rows_q1, f"Fig 21a — Query1 (best manual {best_q1:.1f} s)"))
    print(_format(rows_q2, f"Fig 21b — Query2 (best manual {best_q2:.1f} s)"))


if __name__ == "__main__":
    main()
