"""Mixed-workload driver: replay a diverse query trace, check every row.

Generates a deterministic trace of ``--queries`` queries over the
synthetic chain world of :mod:`benchmarks.worlds`, mixing the five
workload classes this repo's dialect supports:

* **chain** — the classic dependent-call expansion (central, parallel,
  or adaptive),
* **join** — two chains joined on the shared ``tag`` column,
* **aggregate** — GROUP BY over a chain's leaves,
* **or** — a disjunctive tag filter (union + distinct),
* **limit** — a chain under ``LIMIT k`` with pushdown into the pool.

Every query's row bag is diffed against the naive in-memory reference
evaluator (the ``reference_*`` methods on :class:`benchmarks.worlds.World`),
so the bench doubles as an end-to-end equivalence check.  A dedicated
section measures LIMIT pushdown: the limited query must make *strictly
fewer* web-service calls than the limit-less run while returning exactly
its first ``k`` rows.

``--serve`` additionally replays the same trace over HTTP against an
in-process ``repro serve`` front end (real-time asyncio kernel) using the
versioned nested ``"options"`` request schema, and diffs those row bags
against the simulated-kernel results.

Usage::

    python -m benchmarks.workload [--queries 20] [--serve] [--smoke]
"""

from __future__ import annotations

import argparse
import http.client
import json
import random
import threading

from benchmarks.worlds import World, WorldSpec, build_world
from repro import QueryEngine, QueryOptions

TRACE_SEED = 2009
DEFAULT_QUERIES = 20
LIMIT_K = 5

#: (class, weight, option templates to rotate through)
_CLASSES = (
    ("chain", 3, ({"mode": "central"}, {"mode": "parallel"}, {"mode": "adaptive"})),
    ("join", 2, ({"mode": "central"},)),
    ("aggregate", 2, ({"mode": "central"}, {"mode": "adaptive"})),
    ("or", 2, ({"mode": "central"},)),
    ("limit", 2, ({"mode": "parallel"}, {"mode": "adaptive"})),
)


def default_spec() -> WorldSpec:
    return WorldSpec(
        seed=11,
        chains=2,
        depth=2,
        roots=4,
        fanout=2,
        tags=4,
        skew=0.5,
        flaky_ops=1,
        flaky_tries=1,
    )


def build_trace(world: World, count: int, seed: int = TRACE_SEED) -> list[dict]:
    """``count`` queries with per-query options and reference row bags."""
    rng = random.Random(seed)
    names = [name for name, weight, _ in _CLASSES for _ in range(weight)]
    templates = {name: options for name, _, options in _CLASSES}
    depth = world.spec.depth
    trace = []
    for index in range(count):
        kind = rng.choice(names)
        options = dict(rng.choice(templates[kind]))
        options["retries"] = 1  # heal the world's flaky operation
        if options["mode"] == "parallel":
            options["fanouts"] = [2] * depth
        chain = rng.randrange(world.spec.chains)
        if kind == "chain":
            sql = world.chain_sql(chain)
            reference = world.reference_chain(chain)
        elif kind == "join":
            left, right = 0, world.spec.chains - 1
            sql = world.join_sql(left, right)
            reference = world.reference_join(left, right)
        elif kind == "aggregate":
            sql = world.aggregate_sql(chain)
            reference = world.reference_aggregate(chain)
        elif kind == "or":
            sql = world.or_sql(chain)
            reference = world.reference_or(chain)
        else:  # limit
            sql = world.chain_sql(chain, limit=LIMIT_K)
            reference = world.reference_chain(chain)
        trace.append(
            {
                "index": index,
                "class": kind,
                "sql": sql,
                "options": options,
                "reference": reference,
            }
        )
    return trace


def _rows_ok(kind: str, rows: list[tuple], reference: list[tuple]) -> bool:
    """LIMIT rows are any k-prefix of an arrival order: check containment."""
    bag = sorted(tuple(row) for row in rows)
    if kind == "limit":
        expected = min(LIMIT_K, len(reference))
        return len(bag) == expected and not [r for r in bag if r not in reference]
    return bag == reference


def replay_engine(world: World, trace: list[dict]) -> tuple[dict, list]:
    """Run the trace on a resident engine over the simulated kernel."""
    engine = QueryEngine(world.build())
    results = []
    per_class: dict[str, dict] = {}
    mismatches = []
    try:
        for entry in trace:
            result = engine.sql(
                entry["sql"], options=QueryOptions(**entry["options"])
            )
            results.append(result)
            stats = per_class.setdefault(
                entry["class"], {"queries": 0, "model_s": 0.0, "calls": 0}
            )
            stats["queries"] += 1
            stats["model_s"] += result.elapsed
            stats["calls"] += result.total_calls
            if not _rows_ok(entry["class"], result.rows, entry["reference"]):
                mismatches.append(entry["index"])
    finally:
        engine.close()
    payload = {
        "queries": len(trace),
        "total_model_s": sum(r.elapsed for r in results),
        "total_calls": sum(r.total_calls for r in results),
        "per_class": per_class,
        "rows_ok": not mismatches,
        "mismatched_queries": mismatches,
    }
    return payload, results


def measure_limit_pushdown(world: World) -> dict:
    """LIMIT k vs limit-less, same plan shape: fewer calls, same prefix."""
    spec = world.spec
    options = QueryOptions(mode="parallel", fanouts=[2] * spec.depth, retries=1)
    wsmed = world.build()
    full = wsmed.sql(world.chain_sql(0), options=options)
    limited = wsmed.sql(world.chain_sql(0, limit=LIMIT_K), options=options)
    unpushed = wsmed.sql(
        world.chain_sql(0, limit=LIMIT_K),
        options=options.replace(limit_pushdown=False),
    )
    return {
        "limit": LIMIT_K,
        "no_limit_calls": full.total_calls,
        "limit_calls": limited.total_calls,
        "pushdown_off_calls": unpushed.total_calls,
        "saved_calls": full.total_calls - limited.total_calls,
        "no_limit_model_s": full.elapsed,
        "limit_model_s": limited.elapsed,
        "rows_prefix_ok": list(limited.rows) == list(full.rows)[:LIMIT_K],
        "rows_match_unpushed": list(limited.rows) == list(unpushed.rows),
    }


# -- HTTP replay over `repro serve` -----------------------------------------


def _post_sql(port: int, body: dict) -> list[tuple]:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    connection.request("POST", "/sql", body=json.dumps(body))
    response = connection.getresponse()
    payload = response.read().decode("utf-8")
    connection.close()
    if response.status != 200:
        raise RuntimeError(f"POST /sql -> {response.status}: {payload}")
    lines = [json.loads(line) for line in payload.strip().split("\n")]
    trailer = lines[-1]
    if "error" in trailer:
        raise RuntimeError(f"query failed: {trailer['error']}")
    return [tuple(row) for row in lines[1:-1]]


def replay_serve(world: World, trace: list[dict]) -> dict:
    """The same trace, over HTTP, against a real-time engine."""
    from repro import AsyncioKernel
    from repro.serve import QueryServer

    kernel = AsyncioKernel(resident=True)
    engine = QueryEngine(world.build(), kernel=kernel)
    server = QueryServer(engine, port=0)
    ready = threading.Event()

    def run() -> None:
        async def main() -> None:
            await server.start()
            ready.set()
            await server.run()

        kernel.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    if not ready.wait(10):
        raise RuntimeError("repro serve front end did not start")
    mismatches = []
    try:
        for entry in trace:
            rows = _post_sql(
                server.port, {"sql": entry["sql"], "options": entry["options"]}
            )
            if not _rows_ok(entry["class"], rows, entry["reference"]):
                mismatches.append(entry["index"])
    finally:
        server.stop()
        thread.join(10)
        engine.close()
        kernel.shutdown()
    return {
        "queries": len(trace),
        "rows_ok": not mismatches,
        "mismatched_queries": mismatches,
    }


def run(queries: int = DEFAULT_QUERIES, serve: bool = False) -> dict:
    spec = default_spec()
    world = build_world(spec)
    trace = build_trace(world, queries)
    class_counts: dict[str, int] = {}
    for entry in trace:
        class_counts[entry["class"]] = class_counts.get(entry["class"], 0) + 1
    engine_payload, _ = replay_engine(world, trace)
    payload = {
        "workload": {
            "world": "benchmarks.worlds",
            "spec": {
                "seed": spec.seed,
                "chains": spec.chains,
                "depth": spec.depth,
                "roots": spec.roots,
                "fanout": spec.fanout,
                "skew": spec.skew,
                "flaky_ops": spec.flaky_ops,
            },
            "trace_seed": TRACE_SEED,
            "queries": queries,
            "class_counts": class_counts,
        },
        "engine": engine_payload,
        "limit_pushdown": measure_limit_pushdown(world),
    }
    if serve:
        payload["serve"] = replay_serve(world, trace)
    return payload


def _report(payload: dict) -> None:
    engine = payload["engine"]
    for kind, stats in sorted(engine["per_class"].items()):
        print(
            f"{kind:>9}: {stats['queries']:2d} queries, "
            f"{stats['model_s']:7.2f} model s, {stats['calls']:4d} calls"
        )
    print(
        f"engine replay: {engine['queries']} queries, "
        f"rows {'OK' if engine['rows_ok'] else 'MISMATCH'}"
    )
    limit = payload["limit_pushdown"]
    print(
        f"limit pushdown: LIMIT {limit['limit']} -> {limit['limit_calls']} calls "
        f"vs {limit['no_limit_calls']} without LIMIT "
        f"({limit['saved_calls']} saved)"
    )
    if "serve" in payload:
        serve = payload["serve"]
        print(
            f"serve replay: {serve['queries']} queries, "
            f"rows {'OK' if serve['rows_ok'] else 'MISMATCH'}"
        )


def _emit_json(payload: dict) -> None:
    from benchmarks.report import save_bench_json

    save_bench_json("workload", payload)


def _check(payload: dict) -> None:
    engine = payload["engine"]
    assert engine["rows_ok"], engine["mismatched_queries"]
    limit = payload["limit_pushdown"]
    assert limit["limit_calls"] < limit["no_limit_calls"], limit
    assert limit["rows_prefix_ok"], limit
    assert limit["rows_match_unpushed"], limit
    if "serve" in payload:
        assert payload["serve"]["rows_ok"], payload["serve"]


def test_workload(benchmark) -> None:
    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(payload)
    _emit_json(payload)
    _check(payload)


def main(queries: int, serve: bool) -> None:
    payload = run(queries=queries, serve=serve)
    _report(payload)
    _emit_json(payload)
    _check(payload)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--queries", type=int, default=DEFAULT_QUERIES, help="trace length"
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="also replay the trace over HTTP against `repro serve`",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="short trace (CI smoke)"
    )
    arguments = parser.parse_args()
    main(
        queries=10 if arguments.smoke else arguments.queries,
        serve=arguments.serve,
    )
