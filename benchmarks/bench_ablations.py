"""Ablations of the design choices DESIGN.md calls out.

1. **Contention creates the interior optimum.**  With the ``uncontended``
   profile (unlimited server capacity, no load degradation) the best tree
   is simply one of the largest in the grid — confirming that server-side
   contention, not the operator itself, is what makes the paper's optimum
   interior and near-balanced.
2. **First-finished vs round-robin dispatch.**  ``FF_APPLYP`` ships the
   next parameter tuple to whichever child finished first.  The
   round-robin baseline deals tuples out in fixed rotation, so a child
   stuck behind a slow call accumulates a queue; first-finished must be
   at least as fast.
3. **Streaming vs materialized levels (WSQ/DSQ).**  The paper contrasts
   WSMED's "non-blocking multi-level parallel plans ... without any
   materialization" with WSQ/DSQ's asynchronous *materialized* dependent
   joins (Sec. VI).  The level-synchronous baseline runs each dependency
   level with the same parallelism but a global barrier between levels.
"""

from repro import ProcessCosts, WSMED
from repro.algebra.interpreter import ExecutionContext
from repro.parallel.baseline import run_level_synchronous
from repro.runtime.simulated import SimKernel

from benchmarks.harness import (
    QUERY1_SQL,
    QUERY2_SQL,
    fanout_grid,
    format_grid,
    run_parallel,
    wsmed,
)


def _uncontended_grid():
    return fanout_grid(QUERY1_SQL, profile="uncontended", max_fanout=6)


def test_contention_creates_interior_optimum(benchmark) -> None:
    cells = benchmark.pedantic(_uncontended_grid, rounds=1, iterations=1)
    print()
    print(format_grid(cells, "Ablation — Query1 grid without contention"))
    best = min(cells, key=cells.get)
    best_n = best[0] + best[0] * best[1]
    # Without contention, bigger is simply better: the optimum sits in the
    # top decile of tree sizes instead of at an interior cell.
    sizes = sorted({fo1 + fo1 * fo2 for fo1, fo2 in cells})
    assert best_n >= sizes[int(0.8 * (len(sizes) - 1))]
    # And the achievable speed-up is far beyond the contended 4.3x.
    assert cells[(1, 1)] / cells[best] > 6.0


def _dispatch_times():
    ff = WSMED(profile="paper", process_costs=ProcessCosts(dispatch="first_finished"))
    ff.import_all()
    rr = WSMED(profile="paper", process_costs=ProcessCosts(dispatch="round_robin"))
    rr.import_all()
    fanouts = [5, 4]
    ff_result = ff.sql(QUERY1_SQL, mode="parallel", fanouts=fanouts)
    rr_result = rr.sql(QUERY1_SQL, mode="parallel", fanouts=fanouts)
    return ff_result, rr_result


def test_first_finished_beats_round_robin(benchmark) -> None:
    ff_result, rr_result = benchmark.pedantic(_dispatch_times, rounds=1, iterations=1)
    print()
    print(
        f"Ablation — dispatch policy at {{5,4}}: "
        f"first-finished {ff_result.elapsed:.1f} s, "
        f"round-robin {rr_result.elapsed:.1f} s"
    )
    assert ff_result.as_bag() == rr_result.as_bag()
    # Identical work, worse placement: round-robin can only be slower.
    assert rr_result.elapsed >= ff_result.elapsed * 0.999


def _ship_cost_sweep():
    times = {}
    for ship_param in (0.01, 0.2, 1.0):
        system = WSMED(
            profile="paper", process_costs=ProcessCosts(ship_param=ship_param)
        )
        system.import_all()
        times[ship_param] = system.sql(
            QUERY1_SQL, mode="parallel", fanouts=[5, 4]
        ).elapsed
    return times


def test_param_shipping_cost_matters(benchmark) -> None:
    times = benchmark.pedantic(_ship_cost_sweep, rounds=1, iterations=1)
    print()
    print("Ablation — per-parameter shipping cost at {5,4}:")
    for cost, elapsed in times.items():
        print(f"  ship_param={cost:<5} -> {elapsed:.1f} s")
    # Dispatch is serial at each parent, so shipping cost directly
    # stretches execution; 1 s per tuple adds >= ~50 s at the coordinator.
    assert times[1.0] > times[0.01] + 40


def _level_synchronous(sql: str, workers: list[int]) -> tuple[float, list[tuple]]:
    system = wsmed()
    plan = system.plan(sql)
    kernel = SimKernel()
    broker = system.registry.bind(kernel, seed=system.seed)
    ctx = ExecutionContext(kernel=kernel, broker=broker, functions=system.functions)
    rows = kernel.run(run_level_synchronous(plan, ctx, system.functions, workers))
    return kernel.now(), rows


def _streaming_vs_materialized():
    comparisons = {}
    for name, sql, workers, fanouts in (
        ("Query1", QUERY1_SQL, [5, 20], (5, 4)),
        ("Query2", QUERY2_SQL, [4, 12], (4, 3)),
    ):
        sync_time, sync_rows = _level_synchronous(sql, workers)
        streaming = run_parallel(sql, fanouts)
        comparisons[name] = {
            "materialized": sync_time,
            "streaming": streaming.elapsed,
            "rows_match": len(sync_rows) == len(streaming.rows),
        }
    return comparisons


def test_streaming_beats_materialized_levels(benchmark) -> None:
    comparisons = benchmark.pedantic(
        _streaming_vs_materialized, rounds=1, iterations=1
    )
    print()
    print("Ablation — streaming (WSMED) vs materialized levels (WSQ/DSQ style):")
    for name, row in comparisons.items():
        print(
            f"  {name}: materialized {row['materialized']:7.1f} s, "
            f"streaming {row['streaming']:7.1f} s "
            f"({row['materialized'] / row['streaming']:.2f}x)"
        )
    for row in comparisons.values():
        assert row["rows_match"]
        # Overlapping the levels in time is what the process tree buys:
        # the same per-level parallelism with barriers is clearly slower.
        assert row["materialized"] > 1.2 * row["streaming"]


def main() -> None:
    print(format_grid(_uncontended_grid(), "Query1 grid without contention"))
    ff_result, rr_result = _dispatch_times()
    print(f"first-finished: {ff_result.elapsed:.1f} s, round-robin: {rr_result.elapsed:.1f} s")
    for name, row in _streaming_vs_materialized().items():
        print(f"{name}: materialized {row['materialized']:.1f} s vs "
              f"streaming {row['streaming']:.1f} s")


if __name__ == "__main__":
    main()
