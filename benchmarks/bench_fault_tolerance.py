"""Fault tolerance: result completeness and overhead under injected faults.

The paper's protocol assumes children and their web-service calls never
fail; the pool-level fault-tolerance layer (``ProcessCosts.on_error``)
exists for when they do.  This bench quantifies what that layer costs and
what it buys on Query1 (two dependent-join levels, fanouts 5x4):

* under ``retry``, a sweep of injected per-call failure rates must still
  produce the complete, duplicate-free result set — the overhead is the
  redelivered calls' extra latency;
* under ``skip``, the query survives a 10% failure rate but reports how
  many rows it lost;
* with injected child crashes, dead children are respawned and the result
  is still complete.

Results are also written to
``benchmarks/results/BENCH_fault_tolerance.json`` via
:func:`benchmarks.report.save_bench_json`.
"""

from __future__ import annotations

from dataclasses import replace

from repro import FaultInjection, ProcessCosts, WSMED

SQL = """
Select gl.placename, gl.state
From   GetAllStates gs, GetPlacesWithin gp, GetPlaceList gl
Where  gs.State = gp.state and gp.distance = 15.0
  and  gp.placeTypeToFind = 'City' and gp.place = 'Atlanta'
  and  gl.placeName = gp.ToCity + ', ' + gp.ToState
  and  gl.MaxItems = 100 and gl.imagePresence = 'true'
"""

FANOUTS = [5, 4]
FAILURE_RATES = (0.0, 0.05, 0.1, 0.2)
CRASH_RATE = 0.02
# Deep enough that even the 20% sweep point cannot exhaust a row's budget
# (p = 0.2 ** 9 per row); the default of 2 targets low real-world rates.
MAX_REDELIVERIES = 8

COSTS = ProcessCosts().scaled(0.01)


def _system() -> WSMED:
    system = WSMED(profile="fast", process_costs=COSTS)
    system.import_all()
    return system


def _run(system: WSMED, label: str, *, on_error=None, faults=None) -> dict:
    costs = replace(COSTS, max_redeliveries=MAX_REDELIVERIES)
    result = system.sql(
        SQL,
        mode="parallel",
        fanouts=FANOUTS,
        process_costs=costs,
        on_error=on_error,
        faults=faults,
    )
    stats = result.fault_stats
    return {
        "label": label,
        "on_error": on_error or "fail",
        "call_failure_probability": (
            faults.call_failure_probability if faults else 0.0
        ),
        "crash_probability": faults.crash_probability if faults else 0.0,
        "elapsed": result.elapsed,
        "rows": len(result.rows),
        "total_calls": result.total_calls,
        "failed_calls": stats.failed_calls,
        "redeliveries": stats.redeliveries,
        "skipped_rows": stats.skipped_rows,
        "respawns": stats.respawns,
        "bag": result.as_bag(),
    }


def _sweep() -> list[dict]:
    system = _system()
    runs = [_run(system, "clean")]
    for rate in FAILURE_RATES[1:]:
        runs.append(
            _run(
                system,
                f"retry @ {rate:.0%} failures",
                on_error="retry",
                faults=FaultInjection(call_failure_probability=rate),
            )
        )
    runs.append(
        _run(
            system,
            "skip @ 10% failures",
            on_error="skip",
            faults=FaultInjection(call_failure_probability=0.1),
        )
    )
    runs.append(
        _run(
            system,
            f"retry @ {CRASH_RATE:.0%} crashes",
            on_error="retry",
            faults=FaultInjection(crash_probability=CRASH_RATE),
        )
    )
    return runs


def _report(runs: list[dict]) -> None:
    base = runs[0]
    print()
    print(f"Query1 fault tolerance, fanouts {FANOUTS} (fast profile):")
    for run in runs:
        overhead = run["elapsed"] / base["elapsed"] - 1.0
        complete = "complete" if run["bag"] == base["bag"] else (
            f"{run['rows']}/{base['rows']} rows"
        )
        print(
            f"  {run['label']:22s}: {run['elapsed']:6.2f} s "
            f"({overhead:+6.1%}), {complete}; "
            f"{run['failed_calls']:3d} failed, "
            f"{run['redeliveries']:3d} redelivered, "
            f"{run['skipped_rows']:2d} skipped, "
            f"{run['respawns']} respawns"
        )


def _emit_json(runs: list[dict]) -> None:
    from benchmarks.report import save_bench_json

    base = runs[0]
    save_bench_json(
        "fault_tolerance",
        {
            "workload": {
                "sql": "Query1 (states -> places -> place lists)",
                "fanouts": FANOUTS,
                "profile": "fast",
                "max_redeliveries": MAX_REDELIVERIES,
            },
            "runs": [
                {
                    **{k: v for k, v in run.items() if k != "bag"},
                    "complete": run["bag"] == base["bag"],
                    "overhead": run["elapsed"] / base["elapsed"] - 1.0,
                }
                for run in runs
            ],
        },
    )


def test_fault_tolerance_sweep(benchmark) -> None:
    runs = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    _report(runs)
    _emit_json(runs)

    base = runs[0]
    retry_runs = [run for run in runs if run["on_error"] == "retry"]
    skip_run = next(run for run in runs if run["on_error"] == "skip")
    crash_run = next(run for run in runs if run["crash_probability"] > 0)

    # Retry recovers the complete, duplicate-free result at every rate.
    for run in retry_runs:
        assert run["bag"] == base["bag"], run["label"]
    # Failures actually happened at the nonzero rates (the sweep is live).
    for run in retry_runs:
        if run["call_failure_probability"] >= 0.05 or run["crash_probability"]:
            assert run["failed_calls"] > 0, run["label"]
            assert run["redeliveries"] > 0, run["label"]
    # Skip trades completeness for progress, and says so.
    assert skip_run["rows"] < base["rows"]
    assert skip_run["skipped_rows"] > 0
    # Crashed children were replaced.
    assert crash_run["respawns"] >= 1


def main() -> None:
    runs = _sweep()
    _report(runs)
    _emit_json(runs)


if __name__ == "__main__":
    main()
