"""Pipelined dispatch depth (prefetch) ablation.

The paper's FF_APPLYP ships the next parameter tuple only after an
end-of-call (depth 1).  Allowing a child several outstanding tuples hides
the parent's shipping latency but commits tuples to children earlier,
losing first-finished placement quality.  With the calibrated profile the
message costs are small relative to the service times, so depth 1 is
(mildly) best — consistent with the paper's protocol choice.
"""

from repro import ProcessCosts, WSMED

from benchmarks.harness import PAPER, QUERY1_SQL

DEPTHS = (1, 2, 4, 8)


def _sweep():
    times = {}
    for depth in DEPTHS:
        system = WSMED(profile="paper", process_costs=ProcessCosts(prefetch=depth))
        system.import_all()
        result = system.sql(
            QUERY1_SQL, mode="parallel", fanouts=list(PAPER["query1_best_fanouts"])
        )
        times[depth] = (result.elapsed, len(result))
    return times


def test_prefetch_depth(benchmark) -> None:
    times = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print("Ablation — dispatch pipelining depth at {5,4} (Query1):")
    for depth, (elapsed, rows) in times.items():
        print(f"  prefetch={depth}: {elapsed:7.1f} s ({rows} rows)")

    assert all(rows == 360 for _, rows in times.values())
    base = times[1][0]
    # Depth 1 (the paper's protocol) is within a few percent of the best
    # depth, and deep pipelines never help much at these message costs.
    best = min(elapsed for elapsed, _ in times.values())
    assert base <= best * 1.05
    assert max(elapsed for elapsed, _ in times.values()) < base * 1.25


def main() -> None:
    for depth, (elapsed, rows) in _sweep().items():
        print(f"prefetch={depth}: {elapsed:.1f} s")


if __name__ == "__main__":
    main()
