"""Admission capacity: the concurrency sweep, and adaptive vs static.

Concurrency past the safe level does not fail queries — it quietly
inflates their latency: every extra in-flight query queues against the
same capacity-limited simulated services, so p50 grows with admitted
concurrency (the classic parallel-capacity sweep shape).  This bench
measures that sweep offline, then shows the online controller of
:mod:`repro.engine.admission` discovering the same knee by itself.

Two sections, both deterministic model seconds (``fast`` profile, Query1,
``parallel`` {5, 4}, no call cache so every query does real broker work):

* **sweep** — a static engine per admission level: p50 / worst latency of
  a 16-query batch at that level, inflation vs the level-1 baseline, and
  the max-safe level under the default 1.5x threshold (the table
  ``BENCH_capacity.json`` carries mirrors the querytorque sweep in
  SNIPPETS.md).

* **adaptive_vs_static** — 16 concurrent clients against (a) a static
  engine that admits all 16 and (b) an adaptive engine that must *find*
  the safe level online.  The claim the JSON asserts: the controller
  holds batch p50 inflation under the threshold while the over-admitted
  static baseline blows through it — on identical row bags.

Usage::

    python -m benchmarks.bench_capacity [--smoke]
"""

from __future__ import annotations

import argparse

from repro import QUERY1_SQL, AdmissionConfig, QueryEngine, WSMED
from repro.util.stats import quantile

QUERY_KWARGS = dict(mode="parallel", fanouts=[5, 4])
SWEEP_LEVELS = (1, 2, 4, 8, 16)
SMOKE_LEVELS = (1, 4, 16)
CLIENTS = 16
THRESHOLD = 1.5


def _engine(**kwargs) -> QueryEngine:
    wsmed = WSMED(profile="fast")
    wsmed.import_all()
    return QueryEngine(wsmed, **kwargs)


def _row_bag(results) -> list[tuple]:
    return sorted(tuple(row) for result in results for row in result.rows)


def measure_level(level: int) -> dict:
    """p50/worst latency of a 16-query batch admitted ``level`` at a time."""
    engine = _engine(max_concurrency=level)
    engine.sql_many([QUERY1_SQL] * level, **QUERY_KWARGS)  # warm trees
    results = engine.sql_many([QUERY1_SQL] * CLIENTS, **QUERY_KWARGS)
    engine.close()
    latencies = [result.elapsed for result in results]
    return {
        "level": level,
        "queries": len(latencies),
        "p50_model_s": quantile(latencies, 0.5),
        "worst_model_s": max(latencies),
        "errors": 0,
    }


def measure_sweep(levels) -> dict:
    rows = [measure_level(level) for level in levels]
    baseline = rows[0]["p50_model_s"]
    for row in rows:
        row["p50_inflation"] = row["p50_model_s"] / baseline
        row["worst_inflation"] = row["worst_model_s"] / baseline
    safe = [row["level"] for row in rows if row["p50_inflation"] <= THRESHOLD]
    return {
        "baseline_p50_model_s": baseline,
        "threshold": THRESHOLD,
        "levels": rows,
        "max_safe_level": max(safe),
    }


def measure_adaptive_vs_static() -> dict:
    """16 clients: over-admitting static engine vs the online controller."""
    static = _engine(max_concurrency=CLIENTS)
    baseline = static.sql(QUERY1_SQL, **QUERY_KWARGS).elapsed
    static_results = static.sql_many([QUERY1_SQL] * CLIENTS, **QUERY_KWARGS)
    static_rows = _row_bag(static_results)
    static.close()

    adaptive = _engine(
        max_concurrency=CLIENTS,
        admission=AdmissionConfig(threshold=THRESHOLD),
    )
    adaptive.sql(QUERY1_SQL, **QUERY_KWARGS)  # solo baseline sample
    adaptive_results = adaptive.sql_many([QUERY1_SQL] * CLIENTS, **QUERY_KWARGS)
    adaptive_rows = _row_bag(adaptive_results)
    stats = adaptive.stats()
    sweep_table = adaptive.admission.capacity.sweep_table()
    adaptive.close()

    static_latencies = [result.elapsed for result in static_results]
    adaptive_latencies = [result.elapsed for result in adaptive_results]
    return {
        "clients": CLIENTS,
        "threshold": THRESHOLD,
        "baseline_p50_model_s": baseline,
        "static_p50_model_s": quantile(static_latencies, 0.5),
        "static_p50_inflation": quantile(static_latencies, 0.5) / baseline,
        "adaptive_p50_model_s": quantile(adaptive_latencies, 0.5),
        "adaptive_p50_inflation": quantile(adaptive_latencies, 0.5) / baseline,
        "adaptive_limit": stats.admission_limit,
        "adaptive_raises": stats.admission_raises,
        "adaptive_backoffs": stats.admission_backoffs,
        "adaptive_shed": stats.admission_shed,
        "rows_identical": adaptive_rows == static_rows,
        "online_sweep": sweep_table,
    }


def run(smoke: bool = False) -> dict:
    levels = SMOKE_LEVELS if smoke else SWEEP_LEVELS
    return {
        "workload": {
            "sql": "Query1",
            "profile": "fast",
            "mode": "parallel",
            "fanouts": [5, 4],
            "cache": False,
            "batch": CLIENTS,
        },
        "sweep": measure_sweep(levels),
        "adaptive_vs_static": measure_adaptive_vs_static(),
    }


def _report(payload: dict) -> None:
    sweep = payload["sweep"]
    print(
        f"capacity sweep (baseline p50 "
        f"{sweep['baseline_p50_model_s']:.4f} model s, "
        f"threshold {sweep['threshold']:.1f}x):"
    )
    for row in sweep["levels"]:
        marker = " " if row["p50_inflation"] <= sweep["threshold"] else "!"
        print(
            f" {marker} level {row['level']:>2}: "
            f"p50 {row['p50_model_s']:8.4f} model s "
            f"({row['p50_inflation']:5.2f}x), "
            f"worst {row['worst_model_s']:8.4f} "
            f"({row['worst_inflation']:5.2f}x)"
        )
    print(f"max safe level: {sweep['max_safe_level']}")
    versus = payload["adaptive_vs_static"]
    print(
        f"{versus['clients']} clients: static p50 inflation "
        f"{versus['static_p50_inflation']:.2f}x, adaptive "
        f"{versus['adaptive_p50_inflation']:.2f}x "
        f"(controller limit {versus['adaptive_limit']}, "
        f"{versus['adaptive_raises']} raises / "
        f"{versus['adaptive_backoffs']} backoffs, rows identical: "
        f"{versus['rows_identical']})"
    )


def _emit_json(payload: dict) -> None:
    from benchmarks.report import save_bench_json

    save_bench_json("capacity", payload)


def _check(payload: dict) -> None:
    sweep = payload["sweep"]
    # The sweep must actually show the knee: the deepest level over-
    # admits past the threshold, so a static max_concurrency there is
    # the wrong default for this workload.
    assert sweep["levels"][-1]["p50_inflation"] > sweep["threshold"], sweep
    versus = payload["adaptive_vs_static"]
    assert versus["static_p50_inflation"] > versus["threshold"], versus
    assert versus["adaptive_p50_inflation"] < versus["threshold"], versus
    assert versus["rows_identical"], "admission must never change results"
    assert versus["adaptive_shed"] == 0, "no deadlines configured, no shedding"


def test_admission_capacity(benchmark) -> None:
    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(payload)
    _emit_json(payload)
    _check(payload)


def main(smoke: bool = False) -> None:
    payload = run(smoke=smoke)
    _report(payload)
    _emit_json(payload)
    _check(payload)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer sweep levels (CI: verifies the claims, minimal runtime)",
    )
    main(smoke=parser.parse_args().smoke)
