"""Multi-query sharing: broker-call growth across a clients x overlap grid.

A resident engine serving many concurrent clients sees three kinds of
workload.  *Overlapping* clients all run the same query (dashboard
refreshes); *partially overlapping* clients run variants that share a
subplan (here: Query1 at 15 km vs 20 km — level-1 ``GetPlacesWithin``
calls differ, the big level-2 ``GetPlaceList`` fan-out is identical
because every Atlanta cluster sits well inside both radii); *disjoint*
clients run unrelated queries (one town per client).

With sharing off, broker calls grow linearly with clients on every
workload.  With ``ShareConfig(enabled=True)`` the shared call cache and
cross-query single-flight collapse the overlapping workload to
(approximately) the 1-client call count no matter how many clients pile
on, halve-or-better the partial workload, and leave the disjoint
workload untouched — that last one is the no-regression guard.

All measurements are *cold*: a fresh engine per cell, no warm-up rounds,
so ``broker_calls`` measures real broker work rather than a replay from
warm per-process caches (the blind spot ``bench_throughput`` had).

Usage::

    python -m benchmarks.bench_multiquery [--smoke]
"""

from __future__ import annotations

import argparse

from repro import (
    QUERY1_SQL,
    CacheConfig,
    ProcessCosts,
    QueryEngine,
    ShareConfig,
    WSMED,
)

QUERY_KWARGS = dict(mode="parallel", fanouts=[5, 4])
COSTS = ProcessCosts(dispatch="hash_affinity", prefetch=16).scaled(0.01)
CLIENT_COUNTS = (1, 4, 8, 16)
SMOKE_CLIENT_COUNTS = (1, 8)
WORKLOADS = ("overlapping", "partial", "disjoint")
SMOKE_WORKLOADS = ("overlapping", "disjoint")

#: Allowed overshoot over the 1-client call count for fully-overlapping
#: clients under sharing.  Concurrent queries can race past the shared
#: memo before the first leader stores its result; each race costs at
#: most one duplicate round trip.
DEDUP_EPSILON = 16

# One anchor town per disjoint client.  Every stem exists as a City in
# each of the 50 simulated states, and a town is always within 0 km of
# itself, so each variant traverses all three query levels and returns
# rows — no degenerate empty queries.
TOWNS = (
    "Springfield", "Fairview", "Riverside", "Franklin", "Greenville",
    "Bristol", "Clinton", "Salem", "Georgetown", "Madison", "Arlington",
    "Ashland", "Dover", "Hudson", "Kingston", "Milton",
)


def query1_variant(place: str = "Atlanta", distance: float = 15.0) -> str:
    """Query1 with a different anchor place and/or search radius."""
    return f"""
Select gl.placename, gl.state
From   GetAllStates gs, GetPlacesWithin gp, GetPlaceList gl
Where  gs.State = gp.state and gp.distance = {distance}
  and  gp.placeTypeToFind = 'City' and gp.place = '{place}'
  and  gl.placeName = gp.ToCity + ', ' + gp.ToState
  and  gl.MaxItems = 100 and gl.imagePresence = 'true'
"""


def workload_batch(name: str, clients: int) -> list[str]:
    if name == "overlapping":
        return [QUERY1_SQL] * clients
    if name == "partial":
        return [
            query1_variant(distance=15.0 if i % 2 == 0 else 20.0)
            for i in range(clients)
        ]
    if name == "disjoint":
        return [query1_variant(place=TOWNS[i % len(TOWNS)]) for i in range(clients)]
    raise ValueError(f"unknown workload {name!r}")


def measure(workload: str, clients: int, sharing: bool) -> dict:
    """One cold cell: ``clients`` concurrent queries on a fresh engine."""
    wsmed = WSMED(
        profile="fast", process_costs=COSTS, cache=CacheConfig(enabled=True)
    )
    wsmed.import_all()
    engine = QueryEngine(
        wsmed,
        max_concurrency=max(CLIENT_COUNTS),
        share=ShareConfig(enabled=True) if sharing else None,
    )
    batch = workload_batch(workload, clients)
    started = engine.kernel.now()
    results = engine.sql_many(batch, **QUERY_KWARGS)
    makespan = engine.kernel.now() - started
    broker_calls = engine.broker.total_calls()
    stats = engine.stats()
    engine.close()

    assert len(results) == clients and all(r.rows for r in results)
    assert broker_calls == sum(r.total_calls for r in results)
    return {
        "workload": workload,
        "clients": clients,
        "sharing": sharing,
        "broker_calls": broker_calls,
        "makespan_model_s": makespan,
        "rows": sum(len(r.rows) for r in results),
        "shared_cache_hits": stats.shared_cache_hits,
        "shared_cache_waits": stats.shared_cache_waits,
        "coalesced_batches": stats.coalesced_batches,
        "batched_calls": stats.batched_calls,
        "pool_lease_waits": stats.pool_lease_waits,
        "shared_pool_leases": stats.shared_pool_leases,
    }


def run(smoke: bool = False) -> dict:
    counts = SMOKE_CLIENT_COUNTS if smoke else CLIENT_COUNTS
    workloads = SMOKE_WORKLOADS if smoke else WORKLOADS
    cells = [
        measure(workload, clients, sharing)
        for workload in workloads
        for clients in counts
        for sharing in (False, True)
    ]
    growth = {}
    for workload in workloads:
        base = _cell(cells, workload, counts[0], sharing=True)["broker_calls"]
        growth[workload] = {
            str(clients): _cell(cells, workload, clients, sharing=True)[
                "broker_calls"
            ]
            / base
            for clients in counts
        }
    return {
        "workload": {
            "sql": "Query1 (+ place/distance variants)",
            "profile": "fast",
            "mode": "parallel",
            "fanouts": [5, 4],
            "dispatch": "hash_affinity",
            "prefetch": 16,
            "cache": True,
            "cold": True,
        },
        "client_counts": list(counts),
        "cells": cells,
        "call_growth_vs_1_client_sharing_on": growth,
    }


def _cell(cells: list[dict], workload: str, clients: int, sharing: bool) -> dict:
    for cell in cells:
        if (
            cell["workload"] == workload
            and cell["clients"] == clients
            and cell["sharing"] == sharing
        ):
            return cell
    raise KeyError((workload, clients, sharing))


def _report(payload: dict) -> None:
    for cell in payload["cells"]:
        tier = (
            f"shared {cell['shared_cache_hits']} hits"
            f" + {cell['shared_cache_waits']} waits, "
            f"{cell['batched_calls']} calls in "
            f"{cell['coalesced_batches']} batches, "
            f"{cell['shared_pool_leases']} shared leases"
            if cell["sharing"]
            else "sharing off"
        )
        print(
            f"{cell['workload']:>11} x{cell['clients']:>2} clients: "
            f"{cell['broker_calls']:>5} broker calls "
            f"(makespan {cell['makespan_model_s']:.4f} model s, {tier})"
        )
    for workload, ratios in payload["call_growth_vs_1_client_sharing_on"].items():
        shape = ", ".join(f"{n} clients {r:.2f}x" for n, r in ratios.items())
        print(f"call growth ({workload}, sharing on): {shape}")


def _emit_json(payload: dict) -> None:
    from benchmarks.report import save_bench_json

    save_bench_json("multiquery", payload)


def _check(payload: dict) -> None:
    cells = payload["cells"]
    counts = payload["client_counts"]
    most = counts[-1]

    # Fully-overlapping clients dedup to (roughly) one client's calls:
    # sub-linear by a wide margin, and the paper-of-record criterion at
    # 16 clients is <= 2x the 1-client count.
    one = _cell(cells, "overlapping", 1, sharing=True)["broker_calls"]
    many = _cell(cells, "overlapping", most, sharing=True)["broker_calls"]
    assert many <= 2 * one, (one, many)
    # CI smoke guard: no more than 1 client's calls + dedup-race epsilon.
    if most <= 8:
        assert many <= one + DEDUP_EPSILON, (one, many)

    # Sharing must never add broker work on disjoint queries.
    for clients in counts:
        off = _cell(cells, "disjoint", clients, sharing=False)["broker_calls"]
        on = _cell(cells, "disjoint", clients, sharing=True)["broker_calls"]
        assert on <= off, (clients, off, on)

    if "partial" in payload["call_growth_vs_1_client_sharing_on"]:
        off = _cell(cells, "partial", most, sharing=False)["broker_calls"]
        on = _cell(cells, "partial", most, sharing=True)["broker_calls"]
        assert on < off, (off, on)


def test_multiquery_sharing(benchmark) -> None:
    payload = benchmark.pedantic(run, kwargs=dict(smoke=True), rounds=1, iterations=1)
    _report(payload)
    _emit_json(payload)
    _check(payload)


def main(smoke: bool = False) -> None:
    payload = run(smoke=smoke)
    _report(payload)
    _emit_json(payload)
    _check(payload)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer cells (CI: verifies the dedup guarantees, minimal runtime)",
    )
    main(smoke=parser.parse_args().smoke)
