"""Regenerate every figure/table of the paper in one run.

Usage::

    python -m benchmarks.report

Prints, in order: the central baselines, the Fig 16 and Fig 17 grids, the
tree-shape comparison, the Fig 21 adaptive sweep, the adaptation timeline
and the ablations.  EXPERIMENTS.md records a snapshot of this output.
"""

from __future__ import annotations

from benchmarks import (
    bench_ablations,
    bench_adaptation_trace,
    bench_central_plans,
    bench_fig16_query1_grid,
    bench_fig17_query2_grid,
    bench_fig21_adaptive,
    bench_prefetch,
    bench_scaling,
    bench_threshold_sweep,
    bench_tree_shapes,
)

SECTIONS = (
    ("Central baselines (Secs. I/II/V)", bench_central_plans.main),
    ("Fig 16", bench_fig16_query1_grid.main),
    ("Fig 17", bench_fig17_query2_grid.main),
    ("Tree shapes (Figs 14/15)", bench_tree_shapes.main),
    ("Fig 21", bench_fig21_adaptive.main),
    ("Threshold sweep (Sec. V.A)", bench_threshold_sweep.main),
    ("Adaptation timeline (Figs 18-20)", bench_adaptation_trace.main),
    ("Ablations", bench_ablations.main),
    ("Prefetch depth ablation", bench_prefetch.main),
    ("Workload scaling", bench_scaling.main),
)


def main() -> None:
    for title, run in SECTIONS:
        print("=" * 72)
        print(title)
        print("=" * 72)
        run()
        print()


if __name__ == "__main__":
    main()
