"""Regenerate every figure/table of the paper in one run.

Usage::

    python -m benchmarks.report

Prints, in order: the central baselines, the Fig 16 and Fig 17 grids, the
tree-shape comparison, the Fig 21 adaptive sweep, the adaptation timeline
and the ablations.  EXPERIMENTS.md records a snapshot of this output.

Benches that track a perf trajectory across PRs additionally write
machine-readable snapshots via :func:`save_bench_json` into
``benchmarks/results/BENCH_<name>.json`` (override the directory with the
``BENCH_RESULTS_DIR`` environment variable).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from benchmarks import (
    bench_ablations,
    bench_adaptation_trace,
    bench_batching,
    bench_call_cache,
    bench_central_plans,
    bench_fault_tolerance,
    bench_fig16_query1_grid,
    bench_fig17_query2_grid,
    bench_fig21_adaptive,
    bench_prefetch,
    bench_scaling,
    bench_threshold_sweep,
    bench_tree_shapes,
)

SECTIONS = (
    ("Central baselines (Secs. I/II/V)", bench_central_plans.main),
    ("Fig 16", bench_fig16_query1_grid.main),
    ("Fig 17", bench_fig17_query2_grid.main),
    ("Tree shapes (Figs 14/15)", bench_tree_shapes.main),
    ("Fig 21", bench_fig21_adaptive.main),
    ("Threshold sweep (Sec. V.A)", bench_threshold_sweep.main),
    ("Adaptation timeline (Figs 18-20)", bench_adaptation_trace.main),
    ("Ablations", bench_ablations.main),
    ("Prefetch depth ablation", bench_prefetch.main),
    ("Workload scaling", bench_scaling.main),
    ("Call cache (skewed keys)", bench_call_cache.main),
    ("Micro-batching (batch size x fanout)", bench_batching.main),
    ("Fault tolerance (injected failures/crashes)", bench_fault_tolerance.main),
)


def save_bench_json(name: str, payload: dict) -> Path:
    """Write one bench's machine-readable results and return the path.

    Results land in ``benchmarks/results/BENCH_<name>.json`` next to this
    module (or under ``$BENCH_RESULTS_DIR``), so the perf trajectory can
    be diffed across PRs.  Default runs additionally refresh the
    canonical ``BENCH_<name>.json`` copy at the repository root — the
    file trajectory-tracking tools diff; a ``BENCH_RESULTS_DIR``
    override (tests, scratch runs) writes only there.
    """
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    override = os.environ.get("BENCH_RESULTS_DIR")
    directory = Path(override) if override else Path(__file__).parent / "results"
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(text)
    if override is None:
        (Path(__file__).parent.parent / f"BENCH_{name}.json").write_text(text)
    return path


def main() -> None:
    for title, run in SECTIONS:
        print("=" * 72)
        print(title)
        print("=" * 72)
        run()
        print()


if __name__ == "__main__":
    main()
