"""Synthetic worlds that exercise the cost-based optimizer.

Two workloads, shared by the optimizer test suites and
``benchmarks/bench_optimizer.py``:

* **Adversarial ordering** — three extra services beside the paper's
  four.  ``ListRegions`` produces 12 regions; ``AuditRegion`` is slow and
  expands each region into 6 findings; ``CheckRegion`` is fast and
  *selective* (only every 4th region is active, so its mean fanout is
  0.25).  ``ADVERSARIAL_SQL`` lists the expensive audit *before* the
  selective probe, so the heuristic (query-order) plan calls the slow
  service once per region and the fast one once per finding.  The cost
  plan flips the order: probe first, audit only the surviving rows.

* **Binding-pattern rewrite** — a ``DirectoryService`` exposing the same
  logical relation through two inverse access paths: ``CodeOf(name) ->
  code`` and ``NameOf(code) -> name``.  ``REWRITE_SQL`` only ever binds
  the *name* side, so planning its ``NameOf`` call heuristically raises
  ``BindingError``; with the declared access path the optimizer rewrites
  it to ``CodeOf`` and the query executes.  ``REWRITE_DIRECT_SQL`` is the
  hand-rewritten equivalent used to check row bags.

``misdeclared=True`` builds the same world with a wrong fanout hint for
``CheckRegion`` (6.0 instead of the true 0.25): the cold cost plan then
audits first, and the resident engine's live-stats drift detector must
discover the mistake and re-optimize.
"""

from __future__ import annotations

from repro.services.latency import EndpointProfile
from repro.services.registry import ServiceCosts, build_registry
from repro.util.errors import ServiceFault
from repro.wsmed.system import WSMED

REGION_COUNT = 12
FINDINGS_PER_REGION = 6
ACTIVE_EVERY = 4  # every 4th region is active -> true CheckRegion fanout 0.25
ITEM_COUNT = 8

REGIONS = [f"R{i:02d}" for i in range(REGION_COUNT)]
ACTIVE_REGIONS = [r for i, r in enumerate(REGIONS) if i % ACTIVE_EVERY == 0]
ITEMS = [(f"item{i}", f"C{i:02d}") for i in range(ITEM_COUNT)]

ADVERSARIAL_SQL = """
SELECT au.finding, au.severity
FROM   ListRegions lr, AuditRegion au, CheckRegion ck
WHERE  au.region = lr.region AND ck.region = lr.region
"""

REWRITE_SQL = """
SELECT li.item, no.code
FROM   ListItems li, NameOf no
WHERE  no.name = li.item
"""

REWRITE_DIRECT_SQL = """
SELECT li.item, co.code
FROM   ListItems li, CodeOf co
WHERE  co.name = li.item
"""

_SURVEY_WSDL = """\
<definitions name="SurveyService" targetNamespace="urn:bench:survey">
  <types>
    <schema>
      <element name="ListRegions">
        <complexType><sequence/></complexType>
      </element>
      <element name="ListRegionsResponse">
        <complexType><sequence>
          <element name="ListRegionsResult">
            <complexType><sequence>
              <element name="Region" maxOccurs="unbounded">
                <complexType><sequence>
                  <element name="region" type="xsd:string"/>
                </sequence></complexType>
              </element>
            </sequence></complexType>
          </element>
        </sequence></complexType>
      </element>
      <element name="ListItems">
        <complexType><sequence/></complexType>
      </element>
      <element name="ListItemsResponse">
        <complexType><sequence>
          <element name="ListItemsResult">
            <complexType><sequence>
              <element name="Item" maxOccurs="unbounded">
                <complexType><sequence>
                  <element name="item" type="xsd:string"/>
                </sequence></complexType>
              </element>
            </sequence></complexType>
          </element>
        </sequence></complexType>
      </element>
    </schema>
  </types>
  <portType name="SurveySoap">
    <operation name="ListRegions">
      <input element="ListRegions"/>
      <output element="ListRegionsResponse"/>
    </operation>
    <operation name="ListItems">
      <input element="ListItems"/>
      <output element="ListItemsResponse"/>
    </operation>
  </portType>
  <service name="SurveyService">
    <port name="SurveySoap"/>
  </service>
</definitions>
"""

_AUDIT_WSDL = """\
<definitions name="AuditService" targetNamespace="urn:bench:audit">
  <types>
    <schema>
      <element name="AuditRegion">
        <complexType><sequence>
          <element name="region" type="xsd:string"/>
        </sequence></complexType>
      </element>
      <element name="AuditRegionResponse">
        <complexType><sequence>
          <element name="AuditRegionResult">
            <complexType><sequence>
              <element name="Finding" maxOccurs="unbounded">
                <complexType><sequence>
                  <element name="finding" type="xsd:string"/>
                  <element name="severity" type="xsd:int"/>
                </sequence></complexType>
              </element>
            </sequence></complexType>
          </element>
        </sequence></complexType>
      </element>
    </schema>
  </types>
  <portType name="AuditSoap">
    <operation name="AuditRegion">
      <input element="AuditRegion"/>
      <output element="AuditRegionResponse"/>
    </operation>
  </portType>
  <service name="AuditService">
    <port name="AuditSoap"/>
  </service>
</definitions>
"""

_PROBE_WSDL = """\
<definitions name="ProbeService" targetNamespace="urn:bench:probe">
  <types>
    <schema>
      <element name="CheckRegion">
        <complexType><sequence>
          <element name="region" type="xsd:string"/>
        </sequence></complexType>
      </element>
      <element name="CheckRegionResponse">
        <complexType><sequence>
          <element name="CheckRegionResult">
            <complexType><sequence>
              <element name="Status" maxOccurs="unbounded">
                <complexType><sequence>
                  <element name="status" type="xsd:string"/>
                </sequence></complexType>
              </element>
            </sequence></complexType>
          </element>
        </sequence></complexType>
      </element>
    </schema>
  </types>
  <portType name="ProbeSoap">
    <operation name="CheckRegion">
      <input element="CheckRegion"/>
      <output element="CheckRegionResponse"/>
    </operation>
  </portType>
  <service name="ProbeService">
    <port name="ProbeSoap"/>
  </service>
</definitions>
"""

_DIRECTORY_WSDL = """\
<definitions name="DirectoryService" targetNamespace="urn:bench:directory">
  <types>
    <schema>
      <element name="CodeOf">
        <complexType><sequence>
          <element name="name" type="xsd:string"/>
        </sequence></complexType>
      </element>
      <element name="CodeOfResponse">
        <complexType><sequence>
          <element name="CodeOfResult">
            <complexType><sequence>
              <element name="Entry" maxOccurs="unbounded">
                <complexType><sequence>
                  <element name="code" type="xsd:string"/>
                </sequence></complexType>
              </element>
            </sequence></complexType>
          </element>
        </sequence></complexType>
      </element>
      <element name="NameOf">
        <complexType><sequence>
          <element name="code" type="xsd:string"/>
        </sequence></complexType>
      </element>
      <element name="NameOfResponse">
        <complexType><sequence>
          <element name="NameOfResult">
            <complexType><sequence>
              <element name="Entry" maxOccurs="unbounded">
                <complexType><sequence>
                  <element name="name" type="xsd:string"/>
                </sequence></complexType>
              </element>
            </sequence></complexType>
          </element>
        </sequence></complexType>
      </element>
    </schema>
  </types>
  <portType name="DirectorySoap">
    <operation name="CodeOf">
      <input element="CodeOf"/>
      <output element="CodeOfResponse"/>
    </operation>
    <operation name="NameOf">
      <input element="NameOf"/>
      <output element="NameOfResponse"/>
    </operation>
  </portType>
  <service name="DirectoryService">
    <port name="DirectorySoap"/>
  </service>
</definitions>
"""


class SurveyProvider:
    uri = "http://sim.example.com/survey.wsdl"

    def __init__(self, geodata) -> None:
        self.geodata = geodata

    def wsdl_text(self) -> str:
        return _SURVEY_WSDL

    def invoke(self, operation: str, arguments: list) -> dict:
        if operation == "ListRegions":
            rows = [{"region": region} for region in REGIONS]
            return {"ListRegionsResult": {"Region": rows}}
        if operation == "ListItems":
            rows = [{"item": item} for item, _code in ITEMS]
            return {"ListItemsResult": {"Item": rows}}
        raise ServiceFault(f"operation {operation!r} not implemented")


class AuditProvider:
    uri = "http://sim.example.com/audit.wsdl"

    def __init__(self, geodata) -> None:
        self.geodata = geodata

    def wsdl_text(self) -> str:
        return _AUDIT_WSDL

    def invoke(self, operation: str, arguments: list) -> dict:
        if operation != "AuditRegion":
            raise ServiceFault(f"operation {operation!r} not implemented")
        (region,) = arguments
        if region not in REGIONS:
            raise ServiceFault(f"unknown region {region!r}")
        findings = [
            {"finding": f"{region}-F{j}", "severity": j % 3}
            for j in range(FINDINGS_PER_REGION)
        ]
        return {"AuditRegionResult": {"Finding": findings}}


class ProbeProvider:
    uri = "http://sim.example.com/probe.wsdl"

    def __init__(self, geodata) -> None:
        self.geodata = geodata

    def wsdl_text(self) -> str:
        return _PROBE_WSDL

    def invoke(self, operation: str, arguments: list) -> dict:
        if operation != "CheckRegion":
            raise ServiceFault(f"operation {operation!r} not implemented")
        (region,) = arguments
        rows = [{"status": "active"}] if region in ACTIVE_REGIONS else []
        return {"CheckRegionResult": {"Status": rows}}


class DirectoryProvider:
    uri = "http://sim.example.com/directory.wsdl"

    def __init__(self, geodata) -> None:
        self.geodata = geodata

    def wsdl_text(self) -> str:
        return _DIRECTORY_WSDL

    def invoke(self, operation: str, arguments: list) -> dict:
        (argument,) = arguments
        if operation == "CodeOf":
            rows = [
                {"code": code} for item, code in ITEMS if item == argument
            ]
            return {"CodeOfResult": {"Entry": rows}}
        if operation == "NameOf":
            rows = [
                {"name": item} for item, code in ITEMS if code == argument
            ]
            return {"NameOfResult": {"Entry": rows}}
        raise ServiceFault(f"operation {operation!r} not implemented")


def _profile(service_time: float, fanout_hint: float) -> EndpointProfile:
    return EndpointProfile(
        rtt=0.01,
        setup=0.0,
        service_time=service_time,
        jitter=0.0,
        fanout_hint=fanout_hint,
    )


def extra_costs(misdeclared: bool = False) -> dict[str, ServiceCosts]:
    """Cost entries for the synthetic services.

    ``misdeclared`` flips ``CheckRegion``'s fanout hint from its true
    0.25 to 6.0 — the advisory hint lies, the simulated service itself is
    unchanged, so only live observations can correct the plan.
    """
    check_hint = 6.0 if misdeclared else 1.0 / ACTIVE_EVERY
    return {
        "SurveyService": ServiceCosts(
            capacity=40,
            operations={
                "ListRegions": _profile(0.04, float(REGION_COUNT)),
                "ListItems": _profile(0.04, float(ITEM_COUNT)),
            },
        ),
        "AuditService": ServiceCosts(
            capacity=40,
            operations={
                "AuditRegion": _profile(2.0, float(FINDINGS_PER_REGION)),
            },
        ),
        "ProbeService": ServiceCosts(
            capacity=40,
            operations={"CheckRegion": _profile(0.04, check_hint)},
        ),
        "DirectoryService": ServiceCosts(
            capacity=40,
            operations={
                "CodeOf": _profile(0.04, 1.0),
                "NameOf": _profile(0.04, 1.0),
            },
        ),
    }


EXTRA_PROVIDERS = (SurveyProvider, AuditProvider, ProbeProvider, DirectoryProvider)

# The one-to-one column renaming that makes CodeOf/NameOf inverse access
# paths of the same logical (name, code) relation.
DIRECTORY_MAPPING = {"code": "code", "name": "name"}


def build_optimizer_world(
    misdeclared: bool = False, profile: str = "fast", **registry_kwargs
) -> WSMED:
    """A WSMED with the synthetic services imported and paths declared."""
    registry = build_registry(
        profile,
        extra_providers=EXTRA_PROVIDERS,
        extra_costs=extra_costs(misdeclared),
        **registry_kwargs,
    )
    wsmed = WSMED(registry)
    wsmed.import_all()
    wsmed.functions.declare_access_path("NameOf", "CodeOf", DIRECTORY_MAPPING)
    return wsmed


def expected_adversarial_rows() -> list[tuple]:
    """The adversarial query's answer, computed directly from the data."""
    return sorted(
        (f"{region}-F{j}", j % 3)
        for region in ACTIVE_REGIONS
        for j in range(FINDINGS_PER_REGION)
    )


def expected_rewrite_rows() -> list[tuple]:
    return sorted((item, code) for item, code in ITEMS)
