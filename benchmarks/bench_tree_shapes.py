"""Figs 14/15 and Sec. V prose — flat vs unbalanced vs balanced trees.

The paper compares, at similar process budgets, a *flat* tree (fanout
vector {fo1, 0}: both OWFs fused into one level-one plan function), an
*unbalanced* tree (fo1 != fo2) and a *balanced* tree (fo1 == fo2), and
concludes the best plan is "an almost balanced bushy tree".
"""

from benchmarks.harness import (
    QUERY1_SQL,
    QUERY2_SQL,
    run_parallel,
)

# Shape candidates at comparable process budgets (N ~= 20-30).
SHAPES = {
    "flat {24,0}": (24, 0),
    "flat {5,0}": (5, 0),
    "unbalanced {2,10}": (2, 10),
    "unbalanced {10,2}": (10, 2),
    "balanced {4,4}": (4, 4),
    "balanced {5,5}": (5, 5),
    "near-balanced {5,4}": (5, 4),
}


def _run(sql: str):
    return {name: run_parallel(sql, fanouts).elapsed for name, fanouts in SHAPES.items()}


def _format(times, title):
    lines = [title]
    for name, value in sorted(times.items(), key=lambda item: item[1]):
        lines.append(f"  {name:<20} {value:8.1f} s")
    return "\n".join(lines)


def _run_both():
    return _run(QUERY1_SQL), _run(QUERY2_SQL)


def test_tree_shapes(benchmark) -> None:
    times_q1, times_q2 = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    print()
    print(_format(times_q1, "Tree shapes — Query1"))
    print(_format(times_q2, "Tree shapes — Query2"))

    for times in (times_q1, times_q2):
        best_bushy = min(
            value for name, value in times.items() if "flat" not in name
        )
        # Flat trees lose to the best bushy tree: a flat level-one node
        # serializes its GetPlaceList calls behind GetPlacesWithin.
        assert min(times["flat {24,0}"], times["flat {5,0}"]) > best_bushy
        # The best shape is balanced or near-balanced.
        best_name = min(times, key=times.get)
        assert "balanced" in best_name
        # Strongly unbalanced trees at the same budget are worse.
        assert times["unbalanced {2,10}"] > best_bushy


def main() -> None:
    times_q1, times_q2 = _run_both()
    print(_format(times_q1, "Tree shapes — Query1"))
    print(_format(times_q2, "Tree shapes — Query2"))


if __name__ == "__main__":
    main()
