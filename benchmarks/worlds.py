"""Parameterized synthetic worlds for the workload-diversity benches.

A :class:`WorldSpec` describes a family of dependent-call chains:

* ``chains`` root operations (``Chain0Root`` …), each producing ``roots``
  rows with a ``key``, a ``tag`` drawn from a small shared vocabulary,
  and a numeric ``score``;
* below each root, ``depth`` dependent step operations
  (``Chain0Step1(parent) -> rows`` …) expanding every parent key into
  ``fanout``-ish child rows — the classic WSMED dependent-call shape;
* optional latency skew (deeper levels are slower) and flaky operations
  (the first invocation per argument raises a *retriable*
  :class:`~repro.util.errors.ServiceFault`, so ``retries >= 1`` heals
  them deterministically).

Everything is driven by one ``random.Random(seed)``, so a spec names a
world reproducibly.  The generated in-memory tables stay exposed on the
:class:`World` (``root_rows``, ``step_rows``) for the naive reference
evaluator the equivalence tests diff against.

The shared ``tag`` column makes joins across chains meaningful; ``score``
feeds the aggregate queries.  :meth:`World.build` returns a ready
:class:`~repro.wsmed.system.WSMED` with every chain imported.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.services.latency import EndpointProfile
from repro.services.registry import ServiceCosts, build_registry
from repro.util.errors import ServiceFault
from repro.wsmed.system import WSMED

TAG_POOL = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta")


@dataclass(frozen=True)
class WorldSpec:
    """Knobs for one synthetic world (all defaults deliberately small)."""

    seed: int = 7
    chains: int = 2  # independent root operations
    depth: int = 2  # dependent step levels below each root
    roots: int = 5  # rows per root call
    fanout: int = 3  # mean child rows per step call
    tags: int = 4  # size of the shared tag vocabulary (<= len(TAG_POOL))
    skew: float = 0.0  # deeper levels run (1 + skew * level) times slower
    flaky_ops: int = 0  # step operations that fail transiently
    flaky_tries: int = 1  # failed attempts per argument before success
    base_service_time: float = 0.05
    capacity: int = 40

    def __post_init__(self) -> None:
        if self.chains < 1 or self.depth < 0 or self.roots < 1:
            raise ValueError(f"degenerate world spec: {self}")
        if self.tags < 1 or self.tags > len(TAG_POOL):
            raise ValueError(f"tags must be in 1..{len(TAG_POOL)}")


def _root_op(chain: int) -> str:
    return f"Chain{chain}Root"


def _step_op(chain: int, level: int) -> str:
    return f"Chain{chain}Step{level}"


_WSDL_HEADER = """\
<definitions name="{service}" targetNamespace="urn:bench:{lower}">
  <types>
    <schema>
"""

_ROOT_TYPES = """\
      <element name="{op}">
        <complexType><sequence/></complexType>
      </element>
      <element name="{op}Response">
        <complexType><sequence>
          <element name="{op}Result">
            <complexType><sequence>
              <element name="Row" maxOccurs="unbounded">
                <complexType><sequence>
                  <element name="key" type="xsd:string"/>
                  <element name="tag" type="xsd:string"/>
                  <element name="score" type="xsd:int"/>
                </sequence></complexType>
              </element>
            </sequence></complexType>
          </element>
        </sequence></complexType>
      </element>
"""

_STEP_TYPES = """\
      <element name="{op}">
        <complexType><sequence>
          <element name="parent" type="xsd:string"/>
        </sequence></complexType>
      </element>
      <element name="{op}Response">
        <complexType><sequence>
          <element name="{op}Result">
            <complexType><sequence>
              <element name="Row" maxOccurs="unbounded">
                <complexType><sequence>
                  <element name="key" type="xsd:string"/>
                  <element name="tag" type="xsd:string"/>
                  <element name="score" type="xsd:int"/>
                </sequence></complexType>
              </element>
            </sequence></complexType>
          </element>
        </sequence></complexType>
      </element>
"""

_OPERATION = """\
    <operation name="{op}">
      <input element="{op}"/>
      <output element="{op}Response"/>
    </operation>
"""


def _chain_wsdl(service: str, chain: int, depth: int) -> str:
    ops = [_root_op(chain)] + [_step_op(chain, level) for level in range(1, depth + 1)]
    parts = [_WSDL_HEADER.format(service=service, lower=service.lower())]
    parts.append(_ROOT_TYPES.format(op=ops[0]))
    for op in ops[1:]:
        parts.append(_STEP_TYPES.format(op=op))
    parts.append("    </schema>\n  </types>\n")
    parts.append(f'  <portType name="{service}Soap">\n')
    for op in ops:
        parts.append(_OPERATION.format(op=op))
    parts.append("  </portType>\n")
    parts.append(f'  <service name="{service}">\n')
    parts.append(f'    <port name="{service}Soap"/>\n')
    parts.append("  </service>\n</definitions>\n")
    return "".join(parts)


class ChainProvider:
    """One chain's simulated service, answering from the world's tables."""

    def __init__(self, world: "World", chain: int) -> None:
        self.world = world
        self.chain = chain
        self.uri = f"http://sim.example.com/chain{chain}.wsdl"
        self._wsdl = _chain_wsdl(
            f"Chain{chain}Service", chain, world.spec.depth
        )
        self._attempts: dict[tuple[str, str], int] = {}

    def wsdl_text(self) -> str:
        return self._wsdl

    def invoke(self, operation: str, arguments: list) -> dict:
        if operation == _root_op(self.chain):
            rows = self.world.root_rows[self.chain]
        else:
            level = self._level_of(operation)
            (parent,) = arguments
            if operation in self.world.flaky:
                count = self._attempts.get((operation, parent), 0)
                self._attempts[(operation, parent)] = count + 1
                if count < self.world.spec.flaky_tries:
                    raise ServiceFault(
                        f"{operation}({parent!r}) transient failure "
                        f"{count + 1}/{self.world.spec.flaky_tries}",
                        retriable=True,
                    )
            rows = self.world.step_rows[self.chain][level].get(parent, [])
        return {f"{operation}Result": {"Row": list(rows)}}

    def _level_of(self, operation: str) -> int:
        prefix = f"Chain{self.chain}Step"
        if not operation.startswith(prefix):
            raise ServiceFault(f"operation {operation!r} not implemented")
        return int(operation[len(prefix):])


@dataclass
class World:
    """The generated data plus everything needed to run queries on it."""

    spec: WorldSpec
    # root_rows[chain] -> list of {key, tag, score}
    root_rows: list = field(default_factory=list)
    # step_rows[chain][level][parent_key] -> list of {key, tag, score}
    step_rows: list = field(default_factory=list)
    flaky: frozenset = frozenset()

    def __post_init__(self) -> None:
        rng = random.Random(self.spec.seed)
        tags = TAG_POOL[: self.spec.tags]
        for chain in range(self.spec.chains):
            roots = [
                {
                    "key": f"c{chain}r{index}",
                    "tag": rng.choice(tags),
                    "score": rng.randint(0, 99),
                }
                for index in range(self.spec.roots)
            ]
            self.root_rows.append(roots)
            levels: dict[int, dict[str, list]] = {}
            parents = [row["key"] for row in roots]
            for level in range(1, self.spec.depth + 1):
                table: dict[str, list] = {}
                children: list[str] = []
                for parent in parents:
                    count = max(0, self.spec.fanout + rng.randint(-1, 1))
                    rows = [
                        {
                            "key": f"{parent}.{level}n{index}",
                            "tag": rng.choice(tags),
                            "score": rng.randint(0, 99),
                        }
                        for index in range(count)
                    ]
                    table[parent] = rows
                    children.extend(row["key"] for row in rows)
                levels[level] = table
                parents = children
            self.step_rows.append(levels)
        step_ops = [
            _step_op(chain, level)
            for chain in range(self.spec.chains)
            for level in range(1, self.spec.depth + 1)
        ]
        rng.shuffle(step_ops)
        self.flaky = frozenset(step_ops[: self.spec.flaky_ops])

    # -- wiring into WSMED -------------------------------------------------

    def providers(self) -> tuple:
        return tuple(
            (lambda chain: lambda geodata: ChainProvider(self, chain))(c)
            for c in range(self.spec.chains)
        )

    def costs(self) -> dict[str, ServiceCosts]:
        spec = self.spec
        result = {}
        for chain in range(spec.chains):
            operations = {
                _root_op(chain): self._profile(0, float(spec.roots)),
            }
            for level in range(1, spec.depth + 1):
                operations[_step_op(chain, level)] = self._profile(
                    level, float(spec.fanout)
                )
            result[f"Chain{chain}Service"] = ServiceCosts(
                capacity=spec.capacity, operations=operations
            )
        return result

    def _profile(self, level: int, fanout_hint: float) -> EndpointProfile:
        service_time = self.spec.base_service_time * (
            1.0 + self.spec.skew * level
        )
        return EndpointProfile(
            rtt=0.01,
            setup=0.0,
            service_time=service_time,
            jitter=0.0,
            fanout_hint=fanout_hint,
        )

    def build(self, profile: str = "fast", **registry_kwargs) -> WSMED:
        """A WSMED with every chain service imported."""
        registry = build_registry(
            profile,
            extra_providers=self.providers(),
            extra_costs=self.costs(),
            **registry_kwargs,
        )
        wsmed = WSMED(registry)
        for provider_uri in [
            f"http://sim.example.com/chain{c}.wsdl"
            for c in range(self.spec.chains)
        ]:
            wsmed.import_wsdl(provider_uri)
        return wsmed

    # -- canonical query shapes -------------------------------------------

    def chain_sql(self, chain: int = 0, *, limit: int | None = None) -> str:
        """Expand one full chain; optionally LIMIT the result."""
        froms, conds, last = self._chain_fragment(chain, "a")
        sql = (
            f"SELECT {last}.key, {last}.score\n"
            f"FROM   {', '.join(froms)}\n"
            + (f"WHERE  {' AND '.join(conds)}\n" if conds else "")
        )
        if limit is not None:
            sql += f"LIMIT {limit}\n"
        return sql

    def join_sql(self, left: int = 0, right: int = 1) -> str:
        """Join two chains' leaf levels on the shared tag column."""
        lf, lc, ll = self._chain_fragment(left, "a")
        rf, rc, rl = self._chain_fragment(right, "b")
        conds = lc + rc + [f"{ll}.tag = {rl}.tag"]
        return (
            f"SELECT {ll}.key AS left_key, {rl}.key AS right_key\n"
            f"FROM   {', '.join(lf + rf)}\n"
            f"WHERE  {' AND '.join(conds)}\n"
        )

    def aggregate_sql(self, chain: int = 0) -> str:
        """Group the chain's leaves by tag; count and sum scores."""
        froms, conds, last = self._chain_fragment(chain, "a")
        return (
            f"SELECT {last}.tag, COUNT(*), SUM({last}.score), MAX({last}.score)\n"
            f"FROM   {', '.join(froms)}\n"
            + (f"WHERE  {' AND '.join(conds)}\n" if conds else "")
            + f"GROUP BY {last}.tag\n"
        )

    def or_sql(self, chain: int = 0) -> str:
        """Disjunctive tag filter over the chain's leaves."""
        froms, conds, last = self._chain_fragment(chain, "a")
        tags = TAG_POOL[: self.spec.tags]
        branch = f"({last}.tag = '{tags[0]}' OR {last}.tag = '{tags[-1]}')"
        where = " AND ".join(conds + [branch])
        return (
            f"SELECT {last}.key, {last}.tag\n"
            f"FROM   {', '.join(froms)}\n"
            f"WHERE  {where}\n"
        )

    def _chain_fragment(
        self, chain: int, prefix: str
    ) -> tuple[list[str], list[str], str]:
        """FROM items, join conditions, and the leaf alias for one chain."""
        froms = [f"{_root_op(chain)} {prefix}0"]
        conds = []
        for level in range(1, self.spec.depth + 1):
            froms.append(f"{_step_op(chain, level)} {prefix}{level}")
            conds.append(f"{prefix}{level}.parent = {prefix}{level - 1}.key")
        return froms, conds, f"{prefix}{self.spec.depth}"

    # -- the naive reference answer ---------------------------------------

    def expand_chain(self, chain: int) -> list[dict]:
        """Leaf rows of one chain, computed directly from the tables."""
        rows = list(self.root_rows[chain])
        for level in range(1, self.spec.depth + 1):
            table = self.step_rows[chain][level]
            rows = [
                child
                for parent in rows
                for child in table.get(parent["key"], [])
            ]
        return rows

    def reference_chain(self, chain: int = 0) -> list[tuple]:
        """The row bag :meth:`chain_sql` must produce."""
        return sorted(
            (row["key"], row["score"]) for row in self.expand_chain(chain)
        )

    def reference_join(self, left: int = 0, right: int = 1) -> list[tuple]:
        """The row bag :meth:`join_sql` must produce (hash join on tag)."""
        by_tag: dict[str, list] = {}
        for row in self.expand_chain(right):
            by_tag.setdefault(row["tag"], []).append(row["key"])
        return sorted(
            (row["key"], other)
            for row in self.expand_chain(left)
            for other in by_tag.get(row["tag"], [])
        )

    def reference_aggregate(self, chain: int = 0) -> list[tuple]:
        """The row bag :meth:`aggregate_sql` must produce."""
        groups: dict[str, list] = {}
        for row in self.expand_chain(chain):
            groups.setdefault(row["tag"], []).append(row["score"])
        return sorted(
            (tag, len(scores), sum(scores), max(scores))
            for tag, scores in groups.items()
        )

    def reference_or(self, chain: int = 0) -> list[tuple]:
        """The row bag :meth:`or_sql` must produce (distinct union)."""
        tags = TAG_POOL[: self.spec.tags]
        wanted = {tags[0], tags[-1]}
        return sorted(
            {
                (row["key"], row["tag"])
                for row in self.expand_chain(chain)
                if row["tag"] in wanted
            }
        )


def build_world(spec: WorldSpec | None = None, **spec_kwargs) -> World:
    """Convenience: ``build_world(depth=3, flaky_ops=1)``."""
    return World(spec or WorldSpec(**spec_kwargs))
