"""Figs 18-20 — the adaptation dynamics of one AFF_APPLYP run.

The paper illustrates the operator's life cycle: the init stage builds a
binary tree (Fig 18), after the first monitoring cycle each non-leaf
process adds p children (Fig 19), and with the drop stage enabled a
process that observes a slowdown drops a child and its subtree (Fig 20).
This bench replays a drop-enabled run and prints the decision timeline
reconstructed from the execution trace.
"""

from repro import AdaptationParams

from benchmarks.harness import QUERY1_SQL, wsmed

TRACE_KINDS = ("init_stage", "add_stage", "drop_stage", "adapt_stop")


def _run():
    result = wsmed().sql(
        QUERY1_SQL,
        mode="adaptive",
        adaptation=AdaptationParams(p=1, drop_stage=True, max_fanout=10),
    )
    events = [e for e in result.trace if e.kind in TRACE_KINDS]
    return result, events


def _format(events):
    lines = ["Adaptation timeline (Figs 18-20)"]
    for event in events:
        details = ", ".join(
            f"{key}={value}" for key, value in sorted(event.data.items())
        )
        lines.append(f"  t={event.time:8.2f}  {event.kind:<11} {details}")
    return "\n".join(lines)


def test_adaptation_trace(benchmark) -> None:
    result, events = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(_format(events))

    kinds = [event.kind for event in events]
    # Fig 18: every pool starts with an init stage building a binary tree.
    assert kinds[0] == "init_stage"
    init_events = [e for e in events if e.kind == "init_stage"]
    assert all(e.data["children"] == 2 for e in init_events)
    # Fig 19: add stages follow (p=1 -> one child per stage).
    add_events = [e for e in events if e.kind == "add_stage"]
    assert add_events
    assert all(e.data["added"] == 1 for e in add_events)
    # The coordinator's first add stage comes after its init stage.
    q0_init = next(e for e in init_events if e.data["process"] == "q0")
    q0_adds = [e for e in add_events if e.data["process"] == "q0"]
    assert not q0_adds or q0_adds[0].time >= q0_init.time
    # Fig 20 / stop: every adapting pool eventually drops or stops.
    assert any(e.kind in ("drop_stage", "adapt_stop") for e in events)
    # The query still returns the right answer while adapting.
    assert len(result) == 360


def main() -> None:
    _, events = _run()
    print(_format(events))


if __name__ == "__main__":
    main()
