"""Fig 17 — Query2 execution time over fanout vectors {fo1, fo2}.

Paper: best execution time 1243.89 s for fanout vector {4,3}, a speed-up
of nearly 2 over the central plan's 2412.95 s; the low region is
1200-1400 s.  The modest ceiling comes from the USZip / Zipcodes services
degrading under concurrent load.
"""

from benchmarks.harness import (
    PAPER,
    QUERY2_SQL,
    Comparison,
    fanout_grid,
    format_grid,
    near_balanced,
    report,
    run_central,
)


def _grid():
    return fanout_grid(QUERY2_SQL)


def test_fig17_query2_grid(benchmark) -> None:
    cells = benchmark.pedantic(_grid, rounds=1, iterations=1)
    central = run_central(QUERY2_SQL).elapsed
    best = min(cells, key=cells.get)
    best_time = cells[best]
    print()
    print(format_grid(cells, "Fig 17 — Query2 execution time (model s)"))
    print(report([
        Comparison("fig17", "central time (s)", PAPER["query2_central"],
                   round(central, 1)),
        Comparison("fig17", "best time (s)", PAPER["query2_best"],
                   round(best_time, 1)),
        Comparison("fig17", "best fanout vector",
                   str(PAPER["query2_best_fanouts"]), str(best)),
        Comparison("fig17", "speed-up over central", PAPER["query2_speedup"],
                   round(central / best_time, 2)),
    ]))

    assert 1100.0 < best_time < 1400.0  # paper's low region 1200-1400 s
    assert near_balanced(best, slack=1)  # {4,3}
    assert 1.7 < central / best_time < 2.3  # "speed up of nearly 2"
    assert cells[(1, 1)] > 1.6 * best_time
    largest = max(cells, key=lambda c: c[0] + c[0] * c[1])
    assert cells[largest] > 1.02 * best_time


def main() -> None:
    cells = _grid()
    print(format_grid(cells, "Fig 17 — Query2 execution time (model s)"))
    print(f"central: {run_central(QUERY2_SQL).elapsed:.1f} s")


if __name__ == "__main__":
    main()
