"""Multi-process kernel scaling: sharding blocking provider work.

The single-process kernels model web-service latency as *async* sleeps,
which is why asyncio tasks are a faithful stand-in for the paper's query
processes.  But a real mediator's call path is often *synchronous*: a
SOAP client library (or server-side marshalling work) holds the calling
thread for the duration of the call.  Under ``AsyncioKernel`` such a
call blocks the whole event loop — every other query process stalls —
so total wall time degenerates to the serial sum.  The
:class:`~repro.runtime.multiprocess.ProcessKernel` shards the child
pools across OS worker processes (``local_services=True`` ships the
service registry so workers execute calls in-process), so blocking calls
in different workers genuinely overlap.

The workload is a dependent join GetAllStates -> HashState where the
HashState provider is deliberately synchronous: each call burns a PBKDF2
digest and holds its thread for a fixed work interval.  Measured rows:

* ``AsyncioKernel`` (everything on one loop) — the serial baseline;
* ``ProcessKernel`` at 1/2/4/8 workers, same query, same fanout;
* the HTTP front end (``repro.serve``): cold/warm request latency and
  sequential request throughput over a resident engine.

Checked claim (full mode): at 4 workers the wall-clock speedup over the
asyncio baseline is >= 2x, and every kernel returns the identical bag of
rows.

Usage::

    python -m benchmarks.bench_mp_scaling [--smoke]
"""

from __future__ import annotations

import argparse
import hashlib
import http.client
import json
import threading
import time

from repro import QUERY1_SQL, AsyncioKernel, QueryEngine, WSMED, build_registry
from repro.runtime.multiprocess import ProcessKernel
from repro.services.latency import EndpointProfile
from repro.services.registry import ServiceCosts

WORKER_COUNTS = (1, 2, 4, 8)
FANOUT = [8]
TIME_SCALE = 0.0005  # model seconds are negligible; blocking work dominates
WORK_SECONDS = 0.02  # per-call synchronous hold (client library + server)
PBKDF2_ITERATIONS = 20_000

HASH_SQL = """
Select gs.Name, hs.digest
From   GetAllStates gs, HashState hs
Where  hs.state = gs.State
"""

HASH_WSDL = """\
<definitions name="HashService" targetNamespace="urn:bench:hash">
  <types>
    <schema>
      <element name="HashState">
        <complexType><sequence>
          <element name="state" type="xsd:string"/>
        </sequence></complexType>
      </element>
      <element name="HashStateResponse">
        <complexType><sequence>
          <element name="HashStateResult">
            <complexType><sequence>
              <element name="Digests" maxOccurs="unbounded">
                <complexType><sequence>
                  <element name="digest" type="xsd:string"/>
                </sequence></complexType>
              </element>
            </sequence></complexType>
          </element>
        </sequence></complexType>
      </element>
    </schema>
  </types>
  <portType name="HashSoap">
    <operation name="HashState">
      <input element="HashState"/>
      <output element="HashStateResponse"/>
    </operation>
  </portType>
  <service name="HashService">
    <port name="HashSoap"/>
  </service>
</definitions>
"""


class HashProvider:
    """A synchronous provider: every call holds the calling thread.

    Module-level class so the instance pickles into the workers
    (``local_services=True``).  The deterministic PBKDF2 digest makes
    row-identity across kernels checkable.
    """

    uri = "http://sim.example.com/hash.wsdl"
    work_seconds = WORK_SECONDS
    iterations = PBKDF2_ITERATIONS

    def __init__(self, geodata) -> None:
        self.work_seconds = type(self).work_seconds
        self.iterations = type(self).iterations

    def wsdl_text(self) -> str:
        return HASH_WSDL

    def invoke(self, operation: str, arguments: list) -> dict:
        (state_name,) = arguments
        digest = hashlib.pbkdf2_hmac(
            "sha256", state_name.encode(), b"mp-scaling", self.iterations
        ).hex()
        time.sleep(self.work_seconds)  # the synchronous client library hold
        return {"HashStateResult": {"Digests": [{"digest": digest}]}}


def build_wsmed() -> WSMED:
    registry = build_registry(
        "fast",
        extra_providers=(HashProvider,),
        extra_costs={
            "HashService": ServiceCosts(
                capacity=64,
                operations={
                    "HashState": EndpointProfile(
                        rtt=0.01,
                        setup=0.0,
                        service_time=0.01,
                        jitter=0.0,
                        overload_penalty=0.0,
                        overload_quadratic=0.0,
                    )
                },
            )
        },
    )
    wsmed = WSMED(registry, profile="fast")
    wsmed.import_all()
    return wsmed


def _timed_query(wsmed: WSMED, kernel) -> tuple[float, object]:
    started = time.perf_counter()
    result = wsmed.sql(HASH_SQL, mode="parallel", fanouts=FANOUT, kernel=kernel)
    return time.perf_counter() - started, result


def measure_asyncio(wsmed: WSMED) -> dict:
    """The serial baseline: blocking calls stall the single event loop."""
    walls = []
    for _ in range(2):  # first round doubles as warm-up; keep the best
        wall, result = _timed_query(wsmed, AsyncioKernel(time_scale=TIME_SCALE))
        walls.append(wall)
    return {
        "kernel": "asyncio",
        "workers": 0,
        "wall_s": min(walls),
        "rows": len(result.rows),
        "calls": result.total_calls,
        "bag": sorted(result.rows),
    }


def measure_process(wsmed: WSMED, workers: int) -> dict:
    with ProcessKernel(
        workers=workers, time_scale=TIME_SCALE, local_services=True
    ) as kernel:
        # Warm-up run pays fleet spawn + code shipping; the measured run
        # is the steady state a resident deployment serves.
        _timed_query(wsmed, kernel)
        wall, result = _timed_query(wsmed, kernel)
    return {
        "kernel": "process",
        "workers": workers,
        "wall_s": wall,
        "rows": len(result.rows),
        "calls": result.total_calls,
        "bag": sorted(result.rows),
    }


def measure_http() -> dict:
    """Front-end overhead: Query1 over the HTTP server on a warm engine."""
    from repro.serve import QueryServer

    kernel = AsyncioKernel(resident=True, time_scale=TIME_SCALE)
    wsmed = WSMED(profile="fast")
    wsmed.import_all()
    engine = QueryEngine(wsmed, kernel=kernel)
    server = QueryServer(engine, port=0)
    ready = threading.Event()

    def run() -> None:
        async def main() -> None:
            await server.start()
            ready.set()
            await server.run()

        kernel.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "server did not start"

    def one_request() -> tuple[float, int]:
        body = json.dumps(
            {"sql": QUERY1_SQL, "mode": "parallel", "fanouts": [5, 4]}
        )
        started = time.perf_counter()
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=120
        )
        connection.request("POST", "/sql", body=body)
        payload = connection.getresponse().read().decode()
        connection.close()
        wall = time.perf_counter() - started
        lines = payload.strip().split("\n")
        trailer = json.loads(lines[-1])
        assert trailer["rows"] == len(lines) - 2
        return wall, trailer["rows"]

    try:
        cold_wall, rows = one_request()
        warm_walls = [one_request()[0] for _ in range(4)]
        batch_start = time.perf_counter()
        for _ in range(4):
            one_request()
        batch_wall = time.perf_counter() - batch_start
    finally:
        server.stop()
        thread.join(10)
        engine.close()
        kernel.shutdown()
    return {
        "cold_request_s": cold_wall,
        "warm_request_s": min(warm_walls),
        "rows_per_request": rows,
        "sequential_requests_per_s": 4 / batch_wall,
    }


def run(smoke: bool = False) -> dict:
    if smoke:
        HashProvider.work_seconds = 0.005
        HashProvider.iterations = 2_000
    counts = (1, 2) if smoke else WORKER_COUNTS
    wsmed = build_wsmed()
    rows = [measure_asyncio(wsmed)]
    rows.extend(measure_process(wsmed, workers) for workers in counts)

    baseline = rows[0]
    for row in rows[1:]:
        assert row["bag"] == baseline["bag"], (
            f"{row['kernel']} x{row['workers']} rows differ from baseline"
        )
    bags_match = True
    for row in rows:
        row.pop("bag")
        row["speedup_vs_asyncio"] = baseline["wall_s"] / row["wall_s"]

    return {
        "workload": {
            "sql": "GetAllStates -> HashState (50 synchronous calls)",
            "work_seconds_per_call": HashProvider.work_seconds,
            "pbkdf2_iterations": HashProvider.iterations,
            "fanout": FANOUT,
            "time_scale": TIME_SCALE,
            "local_services": True,
            "calls_note": "with local_services=True workers execute "
            "HashState in-process, so the coordinator's call recorder "
            "only sees the central GetAllStates call",
        },
        "rows_identical_across_kernels": bags_match,
        "kernels": rows,
        "http_front_end": measure_http(),
    }


def _report(payload: dict) -> None:
    for row in payload["kernels"]:
        label = (
            f"{row['kernel']} x{row['workers']} workers"
            if row["workers"]
            else f"{row['kernel']} (single process)"
        )
        print(
            f"{label:>28}: {row['wall_s']:6.2f} s wall "
            f"({row['rows']} rows, {row['calls']} calls, "
            f"{row['speedup_vs_asyncio']:.2f}x)"
        )
    http_row = payload["http_front_end"]
    print(
        f"http front end: cold {http_row['cold_request_s']:.2f} s, "
        f"warm {http_row['warm_request_s']:.2f} s, "
        f"{http_row['sequential_requests_per_s']:.1f} requests/s "
        f"({http_row['rows_per_request']} rows each)"
    )


def _emit_json(payload: dict) -> None:
    from benchmarks.report import save_bench_json

    save_bench_json("mp_scaling", payload)


def _check(payload: dict, smoke: bool) -> None:
    assert payload["rows_identical_across_kernels"]
    assert payload["http_front_end"]["rows_per_request"] == 360
    if smoke:
        return
    at_four = next(
        row for row in payload["kernels"] if row["workers"] == 4
    )
    assert at_four["speedup_vs_asyncio"] >= 2.0, at_four


def test_mp_scaling_smoke(benchmark) -> None:
    payload = benchmark.pedantic(run, kwargs={"smoke": True}, rounds=1, iterations=1)
    _report(payload)
    _emit_json(payload)
    _check(payload, smoke=True)


def main(smoke: bool = False) -> None:
    payload = run(smoke=smoke)
    _report(payload)
    _emit_json(payload)
    _check(payload, smoke=smoke)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller work units and fewer worker counts (CI)",
    )
    main(smoke=parser.parse_args().smoke)
