"""Shared helpers for parallel-engine tests."""

from __future__ import annotations

from repro.algebra.interpreter import ExecutionContext
from repro.algebra.plan import AdaptationParams
from repro.parallel.costs import ProcessCosts
from repro.parallel.executor import ParallelExecutor
from repro.parallel.parallelizer import parallelize
from repro.runtime.simulated import SimKernel

from tests.helpers import World

FAST_COSTS = ProcessCosts().scaled(0.01)


def run_parallel(
    world: World,
    sql: str,
    *,
    fanouts: list[int] | None = None,
    adaptation: AdaptationParams | None = None,
    costs: ProcessCosts = FAST_COSTS,
    fault_rate: float = 0.0,
    name: str = "Query",
):
    """Parallelize and execute; returns (rows, kernel, broker, ctx)."""
    central = world.central_plan(sql, name)
    plan = parallelize(
        central, world.functions, fanouts=fanouts, adaptation=adaptation
    )
    kernel = SimKernel()
    broker = world.registry.bind(kernel, fault_rate=fault_rate)
    ctx = ExecutionContext(kernel=kernel, broker=broker, functions=world.functions)
    executor = ParallelExecutor(ctx, costs)
    rows = kernel.run(executor.execute(plan))
    return rows, kernel, broker, ctx
