"""Tests of AFF_APPLYP adaptation dynamics (paper Sec. V.A, Figs 18-20)."""

import pytest

from repro.algebra.plan import AdaptationParams
from repro.fdb.values import Bag
from repro.parallel.tree import tree_stats_from_trace

from tests.helpers import QUERY1_SQL, QUERY2_SQL, make_world
from tests.parallel.helpers_parallel import run_parallel


@pytest.fixture(scope="module")
def world():
    return make_world()


@pytest.fixture(scope="module")
def adaptive_run(world):
    return run_parallel(
        world, QUERY1_SQL, adaptation=AdaptationParams(p=2, drop_stage=False)
    )


def test_adaptive_answer_is_correct(world, adaptive_run) -> None:
    rows, _, broker, _ = adaptive_run
    central_rows, _, _ = world.run_central(QUERY1_SQL)
    assert Bag(rows) == Bag(central_rows)
    assert broker.total_calls() == 311


def test_init_stage_builds_binary_tree(adaptive_run) -> None:
    _, _, _, ctx = adaptive_run
    init_events = ctx.trace.events("init_stage")
    assert init_events
    assert all(event.data["children"] == 2 for event in init_events)
    # The coordinator's init stage happens before any add stage.
    first_add = ctx.trace.events("add_stage")[0]
    assert init_events[0].time <= first_add.time


def test_add_stage_follows_first_monitoring_cycle(adaptive_run) -> None:
    _, _, _, ctx = adaptive_run
    coordinator_cycles = [
        event for event in ctx.trace.events("cycle")
        if event.data["process"] == "q0"
    ]
    coordinator_adds = [
        event for event in ctx.trace.events("add_stage")
        if event.data["process"] == "q0"
    ]
    assert coordinator_cycles and coordinator_adds
    assert coordinator_adds[0].time >= coordinator_cycles[0].time
    # Add stage adds exactly p children.
    assert coordinator_adds[0].data["added"] == 2


def test_monitoring_cycle_definition(adaptive_run) -> None:
    # A cycle completes when end-of-call messages equal the child count, so
    # each recorded cycle processed at least that many calls.
    _, _, _, ctx = adaptive_run
    for event in ctx.trace.events("cycle"):
        assert event.data["children"] >= 2
        assert event.data["time_per_tuple"] > 0


def test_nested_aff_pools_adapt_locally(adaptive_run) -> None:
    _, _, _, ctx = adaptive_run
    cycle_processes = {e.data["process"] for e in ctx.trace.events("cycle")}
    # Level-one processes run their own monitoring, not just q0.
    assert len(cycle_processes) > 1
    assert "q0" in cycle_processes


def test_adaptation_stops(adaptive_run) -> None:
    _, _, _, ctx = adaptive_run
    stops = ctx.trace.events("adapt_stop")
    assert stops  # at least the coordinator reached a stable tree


def test_adaptive_close_to_best_manual(world, adaptive_run) -> None:
    # Paper Fig 21: AFF_APPLYP reaches 80-96% of the best manual tree; we
    # assert the weaker shape-property that it beats the naive binary tree
    # and is within 2x of a good manual tree.
    _, adaptive_kernel, _, _ = adaptive_run
    _, manual_kernel, _, _ = run_parallel(world, QUERY1_SQL, fanouts=[5, 4])
    assert adaptive_kernel.now() < 2.0 * manual_kernel.now()


def test_drop_stage_drops_children(world) -> None:
    rows, _, _, ctx = run_parallel(
        world,
        QUERY2_SQL,
        adaptation=AdaptationParams(p=4, drop_stage=True, max_fanout=12),
    )
    assert rows == [("CO", "80840")]
    stats = tree_stats_from_trace(ctx.trace)
    # With aggressive adds, at least one pool should observe a slowdown
    # and drop; if none did, the trace must show adaptation stopped.
    assert stats.drop_stages > 0 or ctx.trace.count("adapt_stop") > 0


def test_dropped_children_exit(world) -> None:
    _, _, _, ctx = run_parallel(
        world,
        QUERY1_SQL,
        adaptation=AdaptationParams(p=4, drop_stage=True, max_fanout=10),
    )
    assert ctx.trace.count("process_exit") == ctx.trace.count("spawn")


def test_max_fanout_bounds_tree(world) -> None:
    _, _, _, ctx = run_parallel(
        world,
        QUERY1_SQL,
        adaptation=AdaptationParams(p=8, threshold=0.01, max_fanout=6),
    )
    for event in ctx.trace.events("add_stage"):
        assert event.data["children"] <= 6


def test_average_fanouts_reported(world, adaptive_run) -> None:
    _, _, _, ctx = adaptive_run
    stats = tree_stats_from_trace(ctx.trace)
    assert set(stats.fanout_by_level) == {"PF1", "PF2"}
    assert stats.fanout_by_level["PF1"] >= 2.0
    assert stats.pools_by_level["PF2"] >= 2


def test_adaptation_deterministic(world) -> None:
    params = AdaptationParams(p=2)
    first = run_parallel(world, QUERY2_SQL, adaptation=params)
    second = run_parallel(world, QUERY2_SQL, adaptation=params)
    assert first[1].now() == second[1].now()
    assert tree_stats_from_trace(first[3].trace).processes_spawned == (
        tree_stats_from_trace(second[3].trace).processes_spawned
    )
