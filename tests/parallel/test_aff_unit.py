"""Fine-grained unit tests of the AFF_APPLYP pool mechanics.

These drive an :class:`AFFPool` directly with a synthetic plan function (a
helping function with a controllable virtual cost), so monitoring-cycle
accounting and stage decisions can be asserted precisely, independent of
the full query stack.
"""

import pytest

from repro.algebra.interpreter import ExecutionContext
from repro.algebra.plan import AdaptationParams, ApplyNode, ParamNode, PlanFunction
from repro.fdb.functions import FunctionDef, FunctionKind
from repro.fdb.types import INTEGER, TupleType
from repro.parallel.aff_applyp import AFFPool
from repro.parallel.costs import ProcessCosts
from repro.parallel.ff_applyp import FFPool
from repro.runtime.simulated import SimKernel

COSTS = ProcessCosts().scaled(0.001)


def make_pool(kernel, pool_class, *, pool_args=(), params=None, out_width=1):
    """An operator pool over a trivial plan function echoing its input."""
    functions_registry = _registry()
    ctx = ExecutionContext(kernel=kernel, broker=None, functions=functions_registry)
    body = ApplyNode(
        child=ParamNode(schema=("x",)),
        function="echo",
        arguments=(),
        out_columns=("y",),
    )
    # `echo` ignores arguments and returns one row; see _registry.
    plan_function = PlanFunction("PFX", ("x",), body)
    if params is not None:
        return pool_class(ctx, plan_function, COSTS, params), ctx
    return pool_class(ctx, plan_function, COSTS, *pool_args), ctx


def _registry():
    from repro.fdb.functions import FunctionRegistry

    registry = FunctionRegistry()
    registry.register(
        FunctionDef(
            name="echo",
            kind=FunctionKind.HELPING,
            parameters=(),
            result=TupleType((("y", INTEGER),)),
            implementation=lambda: [(1,)],
        )
    )
    return registry


async def feed(pool, rows):
    async def source():
        for row in rows:
            yield row

    collected = []
    async for row in pool.run(source()):
        collected.append(row)
    return collected


def test_ff_pool_processes_all_rows() -> None:
    kernel = SimKernel()
    pool, _ = make_pool(kernel, FFPool, pool_args=(3,))

    async def main():
        result = await collect(pool, [(i,) for i in range(10)])
        await pool.close()
        return result

    async def collect(pool, rows):
        return await feed(pool, rows)

    rows = kernel.run(main())
    assert len(rows) == 10
    assert len(pool.children) == 0  # closed


def test_ff_pool_reuse_across_invocations() -> None:
    kernel = SimKernel()
    pool, _ = make_pool(kernel, FFPool, pool_args=(2,))

    async def main():
        first = await feed(pool, [(1,), (2,)])
        second = await feed(pool, [(3,)])
        spawned = pool.total_spawned
        await pool.close()
        return first, second, spawned

    first, second, spawned = kernel.run(main())
    assert len(first) == 2 and len(second) == 1
    # Children persist across invocations: spawned only once.
    assert spawned == 2


def test_aff_pool_init_stage_is_binary() -> None:
    kernel = SimKernel()
    pool, ctx = make_pool(kernel, AFFPool, params=AdaptationParams(p=3))

    async def main():
        await feed(pool, [(i,) for i in range(2)])
        children = len(pool.children)
        await pool.close()
        return children

    # Two rows = exactly one monitoring cycle; the add stage fires after
    # it, so by completion the pool grew from 2 to 2+p.
    children = kernel.run(main())
    assert children == 5
    init = ctx.trace.events("init_stage")
    assert init and init[0].data["children"] == 2


def test_aff_monitoring_cycle_counts_end_of_calls() -> None:
    kernel = SimKernel()
    pool, ctx = make_pool(kernel, AFFPool, params=AdaptationParams(p=1))

    async def main():
        await feed(pool, [(i,) for i in range(12)])
        await pool.close()

    kernel.run(main())
    cycles = ctx.trace.events("cycle")
    assert cycles
    # Each cycle records the child count at its boundary and a positive
    # per-tuple time.
    for cycle in cycles:
        assert cycle.data["children"] >= 2
        assert cycle.data["time_per_tuple"] > 0
    # Cumulative end-of-calls (12) bound the number of cycles.
    assert len(cycles) <= 6


def test_aff_max_fanout_stops_add_stages() -> None:
    kernel = SimKernel()
    pool, ctx = make_pool(
        kernel, AFFPool, params=AdaptationParams(p=4, threshold=0.01, max_fanout=4)
    )

    async def main():
        await feed(pool, [(i,) for i in range(30)])
        children = len(pool.children)
        await pool.close()
        return children

    children = kernel.run(main())
    assert children <= 4
    stops = ctx.trace.events("adapt_stop")
    assert any("maximum fanout" in event.data["reason"] for event in stops)


def test_aff_drop_stage_respects_init_floor() -> None:
    kernel = SimKernel()
    pool, ctx = make_pool(
        kernel,
        AFFPool,
        params=AdaptationParams(p=1, threshold=0.9, drop_stage=True),
    )

    async def main():
        # Threshold 0.9 means improvements never re-trigger adds, while any
        # increase drops; the pool shrinks but never below two children.
        await feed(pool, [(i,) for i in range(40)])
        children = len(pool.children)
        await pool.close()
        return children

    children = kernel.run(main())
    assert children >= 2


def test_pool_rejects_use_after_close() -> None:
    kernel = SimKernel()
    pool, _ = make_pool(kernel, FFPool, pool_args=(2,))

    async def main():
        await feed(pool, [(1,)])
        await pool.close()
        with pytest.raises(Exception, match="shutdown"):
            await feed(pool, [(2,)])

    kernel.run(main())
