"""Tests for section splitting and the plan rewriter."""

import pytest

from repro.algebra.plan import (
    AdaptationParams,
    AFFApplyNode,
    ApplyNode,
    FFApplyNode,
    FilterNode,
    MapNode,
    ParamNode,
    ProjectNode,
    walk,
)
from repro.parallel.parallelizer import parallelize, split_sections
from repro.util.errors import PlanError

from tests.helpers import QUERY1_SQL, QUERY2_SQL, make_world


@pytest.fixture(scope="module")
def world():
    return make_world()


def test_query1_sections(world) -> None:
    central = world.central_plan(QUERY1_SQL, "Query1")
    coordinator, sections, _post = split_sections(central, world.functions)
    # GetAllStates has no inputs -> stays in the coordinator (Sec. IV).
    assert any(
        isinstance(n, ApplyNode) and n.function == "GetAllStates"
        for n in coordinator
    )
    assert [s.name for s in sections] == ["PF1", "PF2"]
    assert sections[0].input_schema == ("gs_State",)
    # PF2 takes only the concatenated place specification (paper Fig 8).
    assert sections[1].input_schema == ("expr1",)


def test_query1_section1_contains_concat(world) -> None:
    central = world.central_plan(QUERY1_SQL, "Query1")
    _, sections, _post = split_sections(central, world.functions)
    kinds = [type(n).__name__ for n in sections[0].nodes]
    assert "MapNode" in kinds  # the concat of Fig 7
    functions = [n.function for n in sections[0].nodes if isinstance(n, ApplyNode)]
    assert functions == ["GetPlacesWithin"]


def test_query2_sections(world) -> None:
    central = world.central_plan(QUERY2_SQL, "Query2")
    _, sections, _post = split_sections(central, world.functions)
    assert len(sections) == 2
    # PF3 wraps GetInfoByState + getzipcode (Fig 11).
    section1_functions = [
        n.function for n in sections[0].nodes if isinstance(n, ApplyNode)
    ]
    assert section1_functions == ["GetInfoByState", "getzipcode"]
    # PF4 wraps GetPlacesInside + the equal filter (Fig 12).
    assert any(isinstance(n, FilterNode) for n in sections[1].nodes)


def test_parallel_plan_is_nested(world) -> None:
    central = world.central_plan(QUERY1_SQL, "Query1")
    plan = parallelize(central, world.functions, fanouts=[5, 4])
    assert isinstance(plan, FFApplyNode)
    assert plan.fanout == 5
    inner = plan.plan_function.body
    assert isinstance(inner, FFApplyNode)
    assert inner.fanout == 4
    # The innermost plan function has no further parallel operators.
    assert not any(
        isinstance(n, FFApplyNode) for n in walk(inner.plan_function.body)
    )


def test_parallel_plan_schema_matches_central(world) -> None:
    central = world.central_plan(QUERY1_SQL, "Query1")
    plan = parallelize(central, world.functions, fanouts=[3, 3])
    assert plan.schema == central.schema


def test_flat_tree_fuses_sections(world) -> None:
    central = world.central_plan(QUERY1_SQL, "Query1")
    plan = parallelize(central, world.functions, fanouts=[6, 0])
    assert isinstance(plan, FFApplyNode)
    assert plan.fanout == 6
    body = plan.plan_function.body
    # Both OWFs now execute in the same (single-level) plan function.
    functions = [n.function for n in walk(body) if isinstance(n, ApplyNode)]
    assert set(functions) == {"GetPlacesWithin", "GetPlaceList"}
    assert not any(isinstance(n, FFApplyNode) for n in walk(body))


def test_adaptive_rewrite_uses_aff_nodes(world) -> None:
    central = world.central_plan(QUERY2_SQL, "Query2")
    plan = parallelize(
        central, world.functions, adaptation=AdaptationParams(p=2)
    )
    assert isinstance(plan, AFFApplyNode)
    assert isinstance(plan.plan_function.body, AFFApplyNode)


def test_plan_functions_are_rooted_on_param_nodes(world) -> None:
    central = world.central_plan(QUERY2_SQL, "Query2")
    plan = parallelize(central, world.functions, fanouts=[2, 2])
    pf1 = plan.plan_function
    leaves = [n for n in walk(pf1.body) if not n.children()]
    assert all(isinstance(n, ParamNode) for n in leaves)


def test_no_parallelizable_section_returns_plan_unchanged(world) -> None:
    central = world.central_plan("SELECT gs.Name FROM GetAllStates gs")
    plan = parallelize(central, world.functions, fanouts=[])
    assert plan is central


def test_fanout_vector_length_mismatch_rejected(world) -> None:
    central = world.central_plan(QUERY1_SQL)
    with pytest.raises(PlanError, match="fanout vector"):
        parallelize(central, world.functions, fanouts=[5])


def test_first_fanout_zero_rejected(world) -> None:
    central = world.central_plan(QUERY1_SQL)
    with pytest.raises(PlanError, match="first fanout"):
        parallelize(central, world.functions, fanouts=[0, 4])


def test_both_modes_rejected(world) -> None:
    central = world.central_plan(QUERY1_SQL)
    with pytest.raises(PlanError, match="exactly one"):
        parallelize(
            central,
            world.functions,
            fanouts=[2, 2],
            adaptation=AdaptationParams(),
        )


def test_neither_mode_rejected(world) -> None:
    central = world.central_plan(QUERY1_SQL)
    with pytest.raises(PlanError, match="exactly one"):
        parallelize(central, world.functions)


def test_constant_bound_owf_is_not_parallelizable(world) -> None:
    # All inputs constant -> a single call, no parameter stream to
    # partition (Sec. IV considers only OWFs fed from streams).
    sql = (
        "SELECT gi.GetInfoByStateResult FROM GetInfoByState gi "
        "WHERE gi.USState = 'Ohio'"
    )
    central = world.central_plan(sql)
    _, sections, _post = split_sections(central, world.functions)
    assert sections == []
    assert parallelize(central, world.functions, fanouts=[]) is central


def test_two_view_single_level_parallel_query(world) -> None:
    sql = (
        "SELECT gi.GetInfoByStateResult FROM GetAllStates gs, GetInfoByState gi "
        "WHERE gi.USState = gs.State"
    )
    central = world.central_plan(sql)
    plan = parallelize(central, world.functions, fanouts=[2])
    assert isinstance(plan, FFApplyNode)
    assert plan.child.schema == ("gs_State",)
