"""Tests for the text gantt renderer."""

from repro.util.trace import TraceLog
from repro.parallel.visualize import render_gantt

from tests.helpers import QUERY1_SQL, make_world
from tests.parallel.helpers_parallel import run_parallel


def trace_with_calls():
    trace = TraceLog()
    # q1 busy [0, 4], q2 busy [2, 6] of a 8-second horizon.
    trace.record(4.0, "service_call", process="q1", operation="Op", duration=4.0)
    trace.record(6.0, "service_call", process="q2", operation="Op", duration=4.0)
    trace.record(8.0, "service_call", process="q2", operation="Other", duration=2.0)
    return trace


def test_gantt_marks_busy_intervals() -> None:
    text = render_gantt(trace_with_calls(), width=40)
    lines = text.splitlines()
    assert lines[0].startswith("0 ")
    assert lines[0].endswith("8.0s")
    q1 = next(line for line in lines if line.strip().startswith("q1"))
    bar = q1.split("|")[1]
    # Busy in the first half, idle in the second.
    assert "#" in bar[:20]
    assert "#" not in bar[30:]


def test_gantt_operation_filter() -> None:
    text = render_gantt(trace_with_calls(), width=40, operation="Other")
    assert "q1" not in text
    assert "q2" in text


def test_gantt_empty_trace() -> None:
    assert render_gantt(TraceLog()) == "(no service calls recorded)"


def test_gantt_process_cap() -> None:
    trace = TraceLog()
    for index in range(30):
        trace.record(
            1.0, "service_call", process=f"q{index}", operation="Op", duration=1.0
        )
    text = render_gantt(trace, max_processes=5)
    assert "(25 more processes)" in text


def test_gantt_on_real_run() -> None:
    world = make_world()
    _, _, _, ctx = run_parallel(world, QUERY1_SQL, fanouts=[3, 2])
    text = render_gantt(ctx.trace, width=60)
    # Coordinator + 3 + 6 processes each made at least one call.
    assert len([l for l in text.splitlines() if "|" in l]) == 10
    assert "#" in text
