"""Tests for dispatch-protocol variants: prefetch, barrier, level-sync."""

import pytest

from repro.algebra.interpreter import ExecutionContext
from repro.parallel.baseline import run_level_synchronous
from repro.parallel.costs import ProcessCosts
from repro.runtime.simulated import SimKernel
from repro.util.errors import PlanError

from tests.helpers import QUERY1_SQL, make_world
from tests.parallel.helpers_parallel import run_parallel


@pytest.fixture(scope="module")
def world():
    return make_world()


@pytest.fixture(scope="module")
def central_bag(world):
    rows, _, _ = world.run_central(QUERY1_SQL)
    from repro.fdb.values import Bag

    return Bag(rows)


def fast_costs(**kwargs):
    return ProcessCosts(**kwargs).scaled(0.01)


def test_prefetch_preserves_results(world, central_bag) -> None:
    from repro.fdb.values import Bag

    for prefetch in (2, 4):
        rows, _, _, _ = run_parallel(
            world, QUERY1_SQL, fanouts=[4, 3], costs=fast_costs(prefetch=prefetch)
        )
        assert Bag(rows) == central_bag


def test_prefetch_keeps_children_loaded(world) -> None:
    # With prefetch, a child can hold several outstanding tuples, so the
    # parent never waits for end-of-call before shipping the next one.
    # Observable effect: identical totals, no lost or duplicated calls.
    _, _, broker, ctx = run_parallel(
        world, QUERY1_SQL, fanouts=[4, 3], costs=fast_costs(prefetch=3)
    )
    assert broker.total_calls() == 311
    assert ctx.trace.count("process_exit") == ctx.trace.count("spawn")


def test_prefetch_validation() -> None:
    with pytest.raises(PlanError, match="prefetch"):
        ProcessCosts(prefetch=0)


def test_barrier_mode_preserves_results(world, central_bag) -> None:
    from repro.fdb.values import Bag

    rows, _, _, _ = run_parallel(
        world, QUERY1_SQL, fanouts=[5, 4], costs=fast_costs(barrier=True)
    )
    assert Bag(rows) == central_bag


def run_level_sync(world, sql, workers):
    plan = world.central_plan(sql)
    kernel = SimKernel()
    broker = world.registry.bind(kernel)
    ctx = ExecutionContext(kernel=kernel, broker=broker, functions=world.functions)
    rows = kernel.run(run_level_synchronous(plan, ctx, world.functions, workers))
    return rows, kernel, broker


def test_level_synchronous_matches_central(world, central_bag) -> None:
    from repro.fdb.values import Bag

    rows, _, broker = run_level_sync(world, QUERY1_SQL, [5, 10])
    assert Bag(rows) == central_bag
    assert broker.total_calls() == 311


def test_level_synchronous_worker_limit_respected(world) -> None:
    # One worker per level = sequential levels: as slow as central within
    # the level, so clearly slower than a 5-worker pool.
    _, slow_kernel, _ = run_level_sync(world, QUERY1_SQL, [1, 1])
    _, fast_kernel, _ = run_level_sync(world, QUERY1_SQL, [5, 10])
    assert fast_kernel.now() < slow_kernel.now()


def test_level_synchronous_slower_than_streaming(world) -> None:
    # The materialized barrier between levels costs wall time against the
    # streaming process tree at comparable parallelism.
    _, sync_kernel, _ = run_level_sync(world, QUERY1_SQL, [5, 20])
    _, streaming_kernel, _, _ = run_parallel(world, QUERY1_SQL, fanouts=[5, 4])
    assert sync_kernel.now() > streaming_kernel.now()


def test_level_synchronous_validations(world) -> None:
    plan = world.central_plan(QUERY1_SQL)
    kernel = SimKernel()
    broker = world.registry.bind(kernel)
    ctx = ExecutionContext(kernel=kernel, broker=broker, functions=world.functions)
    with pytest.raises(PlanError, match="worker counts"):
        kernel.run(run_level_synchronous(plan, ctx, world.functions, [5]))
    plan_with_post = world.central_plan(
        "SELECT gs.Name FROM GetAllStates gs ORDER BY gs.Name"
    )
    with pytest.raises(PlanError, match="post-ops"):
        kernel2 = SimKernel()
        ctx2 = ExecutionContext(
            kernel=kernel2,
            broker=world.registry.bind(kernel2),
            functions=world.functions,
        )
        kernel2.run(
            run_level_synchronous(plan_with_post, ctx2, world.functions, [])
        )
